"""The `Telemetry` object: one handle over metrics + tracing.

Instrumented components (:class:`~repro.sim.engine.Simulator`,
:class:`~repro.core.powersystem.CapybaraPowerSystem`, the kernel
executors, the experiment runner) each hold a ``Telemetry`` resolved at
construction time:

* pass one explicitly (``Simulator(telemetry=t)``), or
* construct inside a :func:`telemetry_scope` and the ambient telemetry
  is picked up, or
* do neither and you get :data:`NULL_TELEMETRY` — a no-op sink whose
  ``enabled`` flag is ``False``.

The contract instrumented code follows is::

    self.telemetry = resolve_telemetry(telemetry)
    ...
    if self.telemetry.enabled:            # one attribute load + branch
        self.telemetry.inc("kernel.reboots")

so the disabled path costs a single predictable branch and never touches
the registry.  The context-scoped default is what lets deep call stacks
(experiment modules building apps building power systems) opt a whole
run into instrumentation without threading a parameter through every
layer — exactly how the experiment pool wraps each worker job.

Snapshots are plain dicts (JSON-serialisable, picklable), so telemetry
collected in a worker process merges losslessly into the parent's
suite-level telemetry.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Union

from repro.observability.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    Number,
    iter_metric_records,
)
from repro.observability.tracing import (
    FieldValue,
    Tracer,
    events_from_dicts,
)


class Telemetry:
    """A metrics registry plus a trace sink behind one convenience API.

    Attributes:
        enabled: whether instrumentation points should do work.  Checked
            by instrumented components before composing record payloads,
            so a disabled telemetry costs one branch per site.
        metrics: the :class:`MetricsRegistry`.
        tracer: the :class:`Tracer`.
    """

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    # ------------------------------------------------------------------
    # Metric shortcuts
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        """Increment counter *name* by *amount*."""
        self.metrics.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        """Set gauge *name* to *value*."""
        self.metrics.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: Number,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        """Record *value* into histogram *name* (created with *buckets*)."""
        self.metrics.histogram(name, buckets=buckets).observe(value)

    # ------------------------------------------------------------------
    # Trace shortcuts
    # ------------------------------------------------------------------

    def event(self, time: float, kind: str, name: str, **fields: FieldValue) -> None:
        """Record an instantaneous trace event at simulation *time*."""
        self.tracer.event(time, kind, name, **fields)

    def span(
        self, start: float, end: float, kind: str, name: str, **fields: FieldValue
    ) -> None:
        """Record a trace span over simulation time [start, end]."""
        self.tracer.span(start, end, kind, name, **fields)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Picklable/JSON-able state: metrics + trace records."""
        return {
            "metrics": self.metrics.snapshot(),
            "events": self.tracer.as_dicts(),
            "dropped": self.tracer.dropped,
        }

    def merge_snapshot(
        self, snapshot: Mapping[str, object], prefix: str = ""
    ) -> None:
        """Fold a worker :meth:`snapshot` into this telemetry.

        Metrics merge through the registry (counters/histograms add,
        gauges last-write-win) under *prefix*; trace records append in
        order, untouched — their times are simulation times and need no
        rebasing.
        """
        self.metrics.merge_snapshot(
            snapshot.get("metrics") or {}, prefix=prefix  # type: ignore[arg-type]
        )
        for record in events_from_dicts(snapshot.get("events") or ()):  # type: ignore[arg-type]
            if len(self.tracer.records) >= self.tracer.max_records:
                self.tracer.dropped += 1
            else:
                self.tracer.records.append(record)
        self.tracer.dropped += int(snapshot.get("dropped") or 0)  # type: ignore[arg-type]

    def metric_records(self, scope: str = "run") -> List[Dict[str, object]]:
        """JSONL-ready metric record dicts for ``--metrics-out``."""
        return list(iter_metric_records(self.metrics.snapshot(), scope))

    def trace_records(self) -> List[Dict[str, object]]:
        """JSONL-ready trace record dicts for ``--trace-out``."""
        return self.tracer.as_dicts()


class NullTelemetry(Telemetry):
    """The default no-op sink: ``enabled`` is False, methods do nothing.

    Components that forget the ``enabled`` guard still behave correctly
    (every recording method is a no-op); the guard only buys speed.
    """

    enabled = False

    def __init__(self) -> None:
        # No registry/tracer allocation: the null sink is a shared
        # singleton and must stay stateless.
        pass

    def inc(self, name: str, amount: Number = 1) -> None:
        pass

    def set_gauge(self, name: str, value: Number) -> None:
        pass

    def observe(
        self,
        name: str,
        value: Number,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        pass

    def event(self, time: float, kind: str, name: str, **fields: FieldValue) -> None:
        pass

    def span(
        self, start: float, end: float, kind: str, name: str, **fields: FieldValue
    ) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {"metrics": {}, "events": [], "dropped": 0}

    def merge_snapshot(
        self, snapshot: Mapping[str, object], prefix: str = ""
    ) -> None:
        raise TypeError("cannot merge into the null telemetry sink")


#: The process-wide no-op sink.  Identity comparisons are allowed
#: (``telemetry is NULL_TELEMETRY``) but the ``enabled`` flag is the
#: supported way to test for instrumentation.
NULL_TELEMETRY = NullTelemetry()

_CURRENT: contextvars.ContextVar[Telemetry] = contextvars.ContextVar(
    "repro_telemetry", default=NULL_TELEMETRY
)


def current_telemetry() -> Telemetry:
    """The ambient telemetry (:data:`NULL_TELEMETRY` outside any scope)."""
    return _CURRENT.get()


def resolve_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """The telemetry a component should use: the explicit argument if
    given, else the ambient context's."""
    return telemetry if telemetry is not None else _CURRENT.get()


@contextlib.contextmanager
def telemetry_scope(
    telemetry: Optional[Telemetry] = None,
) -> Iterator[Telemetry]:
    """Make *telemetry* (a fresh one if omitted) ambient for the block.

    Components constructed inside the block without an explicit
    telemetry argument report into it::

        with telemetry_scope() as tel:
            app = build_temp_alarm(SystemKind.CAPY_P, seed=1)
            app.run(600.0)
        print(tel.metrics.counter("kernel.reboots").value)
    """
    scoped = telemetry if telemetry is not None else Telemetry()
    token = _CURRENT.set(scoped)
    try:
        yield scoped
    finally:
        _CURRENT.reset(token)
