"""Zero-dependency metrics primitives.

The paper's evaluation is a measurement exercise: charge/discharge
timelines on scopes, reboot counts from UART logs, event latencies from
sniffer captures.  This module is the simulation-side equivalent — a
small, explicit metrics plane with three instrument kinds:

* :class:`Counter` — a monotonically increasing total (reboots, events
  dispatched, joules delivered);
* :class:`Gauge` — a point-in-time value (queue depth, bank voltage);
* :class:`Histogram` — a distribution over **explicit** buckets (charge
  times, per-experiment wall clock).  Buckets are cumulative, Prometheus
  style: ``counts[i]`` tallies observations ``<= buckets[i]``, with an
  implicit ``+Inf`` bucket at the end.

Instruments live in a :class:`MetricsRegistry`, are identified by dotted
names (``kernel.reboots``, ``sim.events_dispatched``), and serialise to
plain dicts so snapshots can cross process boundaries (the experiment
pool) and be written as JSONL.

Everything here is deliberately dependency-free and allocation-light;
the disabled path never reaches these objects at all (see
:mod:`repro.observability.telemetry`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError

Number = Union[int, float]

#: Default histogram buckets, in seconds — spans sensor ops (ms) to
#: charge cycles (minutes).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
)


class Counter:
    """A monotonically non-decreasing total."""

    __slots__ = ("name", "help", "_value")

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value: float = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: Number = 1) -> None:
        """Add *amount* (must be non-negative) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self._value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self._value}


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("name", "help", "_value")

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value: float = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: Number) -> None:
        self._value = float(value)

    def inc(self, amount: Number = 1) -> None:
        self._value += amount

    def dec(self, amount: Number = 1) -> None:
        self._value -= amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "name": self.name, "value": self._value}


class Histogram:
    """A distribution over explicit, cumulative buckets.

    ``buckets`` are the upper bounds, strictly increasing; an implicit
    ``+Inf`` bucket catches everything above the last bound.  ``sum`` and
    ``count`` make means recoverable without retaining observations.
    """

    __slots__ = ("name", "help", "buckets", "counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} buckets must be strictly increasing: {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +Inf at the end
        self._sum = 0.0
        self._count = 0

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def observe(self, value: Number) -> None:
        value = float(value)
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative view (last entry == count)."""
        total = 0
        out: List[int] = []
        for tally in self.counts:
            total += tally
            out.append(total)
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "sum": self._sum,
            "count": self._count,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, created on first use.

    ``registry.counter("kernel.reboots").inc()`` is the whole API; asking
    for an existing name returns the same instrument, asking for it with
    a different kind is an error (names are a schema, not a suggestion).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def _lookup(self, name: str, kind: type) -> Optional[Instrument]:
        existing = self._instruments.get(name)
        if existing is None:
            return None
        if not isinstance(existing, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as {existing.kind}, "
                f"requested {kind.__name__.lower()}"
            )
        return existing

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._lookup(name, Counter)
        if instrument is None:
            instrument = Counter(name, help)
            self._instruments[name] = instrument
        return instrument  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._lookup(name, Gauge)
        if instrument is None:
            instrument = Gauge(name, help)
            self._instruments[name] = instrument
        return instrument  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        help: str = "",
    ) -> Histogram:
        instrument = self._lookup(name, Histogram)
        if instrument is None:
            instrument = Histogram(name, buckets, help)
            self._instruments[name] = instrument
        return instrument  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Serialisation / merging
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serialisable state of every instrument, keyed by name."""
        return {
            name: instrument.as_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def merge_snapshot(
        self, snapshot: Mapping[str, Mapping[str, object]], prefix: str = ""
    ) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the incoming value
        (last write wins).  *prefix* namespaces the incoming metrics
        (``exp.fig08.``), which is how per-experiment worker snapshots
        land in the suite-level registry without colliding.
        """
        for name, data in snapshot.items():
            full = prefix + name
            kind = data.get("kind")
            if kind == "counter":
                self.counter(full).inc(float(data["value"]))  # type: ignore[arg-type]
            elif kind == "gauge":
                self.gauge(full).set(float(data["value"]))  # type: ignore[arg-type]
            elif kind == "histogram":
                incoming_buckets = tuple(data["buckets"])  # type: ignore[arg-type]
                hist = self.histogram(full, buckets=incoming_buckets)
                if hist.buckets != incoming_buckets:
                    raise ConfigurationError(
                        f"histogram {full!r} bucket mismatch on merge"
                    )
                hist._sum += float(data["sum"])  # type: ignore[arg-type]
                hist._count += int(data["count"])  # type: ignore[arg-type]
                for index, tally in enumerate(data["counts"]):  # type: ignore[arg-type]
                    hist.counts[index] += int(tally)
            else:
                raise ConfigurationError(
                    f"snapshot entry {name!r} has unknown kind {kind!r}"
                )

    def rows(self) -> List[List[str]]:
        """Display rows (name, kind, value) for a summary table."""
        out: List[List[str]] = []
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                value = (
                    f"count={instrument.count} sum={instrument.sum:.4g} "
                    f"mean={instrument.mean:.4g}"
                )
            else:
                raw = instrument.value
                value = f"{raw:.6g}" if isinstance(raw, float) else str(raw)
            out.append([name, instrument.kind, value])
        return out


def iter_metric_records(
    snapshot: Mapping[str, Mapping[str, object]], scope: str
) -> Iterable[Dict[str, object]]:
    """Yield JSONL-ready records for a registry snapshot."""
    for name in sorted(snapshot):
        record = dict(snapshot[name])
        record["record"] = "metric"
        record["scope"] = scope
        yield record
