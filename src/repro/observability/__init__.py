"""Observability: structured tracing + a zero-dependency metrics plane.

The simulation-side equivalent of the paper's bench instrumentation
(scope captures, UART reboot logs, sniffer timelines):

* :mod:`repro.observability.metrics` — counters, gauges, histograms
  with explicit buckets, in a :class:`MetricsRegistry`;
* :mod:`repro.observability.tracing` — typed span/event records with
  canonical JSONL export;
* :mod:`repro.observability.telemetry` — the :class:`Telemetry` handle
  threaded through component construction, context-scoped via
  :func:`telemetry_scope`, defaulting to the no-op
  :data:`NULL_TELEMETRY`.

See ``docs/observability.md`` for the metric name schema, the trace
record schema, and how to add instrumentation points.
"""

from repro.observability.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.tracing import (
    SpanRecord,
    TraceEvent,
    Tracer,
    read_jsonl,
    to_jsonl,
    write_jsonl,
)
from repro.observability.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    resolve_telemetry,
    telemetry_scope,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "TraceEvent",
    "SpanRecord",
    "Tracer",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "current_telemetry",
    "resolve_telemetry",
    "telemetry_scope",
]
