"""Structured trace plane: typed span/event records with JSONL export.

Where the metrics registry answers "how many / how much", the trace
plane answers "what happened, when, in what order" — the simulation-side
analogue of the paper's scope captures.  Records are deliberately tiny
and deterministic: every field derives from *simulation* state (sim
time, counts, names), never from wall clock, so two runs with the same
seed produce byte-identical JSONL regardless of host load or process
count.

Two record shapes:

* :class:`TraceEvent` — an instantaneous occurrence (``brownout``,
  ``reconfigure``, ``reboot``) at one simulation time;
* :class:`SpanRecord` — an interval (``charge``, ``experiment``) with a
  start, an end, and a duration.

Both carry a small ``fields`` mapping for record-specific payload
(config name, energy stored, ...).  The :class:`Tracer` appends records
in emission order; :func:`to_jsonl` serialises with sorted keys and
fixed separators so the output is canonical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

FieldValue = Union[str, int, float, bool, None]


@dataclass(frozen=True)
class TraceEvent:
    """An instantaneous occurrence at one simulation time."""

    time: float
    kind: str
    name: str
    fields: Dict[str, FieldValue] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "record": "event",
            "time": self.time,
            "kind": self.kind,
            "name": self.name,
            "fields": dict(self.fields),
        }


@dataclass(frozen=True)
class SpanRecord:
    """A closed interval of simulation time."""

    start: float
    end: float
    kind: str
    name: str
    fields: Dict[str, FieldValue] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        return {
            "record": "span",
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "kind": self.kind,
            "name": self.name,
            "fields": dict(self.fields),
        }


TraceRecord = Union[TraceEvent, SpanRecord]


class Tracer:
    """Append-only sink of trace records.

    ``max_records`` bounds memory on pathological runs; when the cap is
    hit further records are counted (``dropped``) rather than stored, so
    the JSONL stays honest about truncation.
    """

    def __init__(self, max_records: int = 1_000_000) -> None:
        self.records: List[TraceRecord] = []
        self.max_records = max_records
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def event(
        self, time: float, kind: str, name: str, **fields: FieldValue
    ) -> None:
        """Record an instantaneous event."""
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceEvent(time, kind, name, fields))

    def span(
        self, start: float, end: float, kind: str, name: str, **fields: FieldValue
    ) -> None:
        """Record a closed interval."""
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(SpanRecord(start, end, kind, name, fields))

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        return [
            r for r in self.records if isinstance(r, TraceEvent) and r.kind == kind
        ]

    def spans_of_kind(self, kind: str) -> List[SpanRecord]:
        return [
            r for r in self.records if isinstance(r, SpanRecord) and r.kind == kind
        ]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [record.as_dict() for record in self.records]


def record_to_json(record: Dict[str, object]) -> str:
    """Canonical one-line JSON for a trace/metric record dict."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def to_jsonl(records: Iterable[Dict[str, object]]) -> str:
    """Serialise record dicts as canonical JSONL (one object per line)."""
    lines = [record_to_json(record) for record in records]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(
    records: Iterable[Dict[str, object]], path: Union[str, Path]
) -> Path:
    """Write records as JSONL to *path*; returns the resolved path."""
    target = Path(path)
    target.write_text(to_jsonl(records), encoding="utf-8")
    return target


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL file back into record dicts (test/analysis helper)."""
    out: List[Dict[str, object]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def events_from_dicts(records: Iterable[Dict[str, object]]) -> List[TraceRecord]:
    """Rehydrate record dicts (e.g. from a worker snapshot) into records."""
    out: List[TraceRecord] = []
    for data in records:
        if data.get("record") == "span":
            out.append(
                SpanRecord(
                    start=float(data["start"]),  # type: ignore[arg-type]
                    end=float(data["end"]),  # type: ignore[arg-type]
                    kind=str(data["kind"]),
                    name=str(data["name"]),
                    fields=dict(data.get("fields") or {}),  # type: ignore[arg-type]
                )
            )
        else:
            out.append(
                TraceEvent(
                    time=float(data["time"]),  # type: ignore[arg-type]
                    kind=str(data["kind"]),
                    name=str(data["name"]),
                    fields=dict(data.get("fields") or {}),  # type: ignore[arg-type]
                )
            )
    return out
