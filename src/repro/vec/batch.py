"""Build fleet state from canonical scenario specs, with capability checks.

The spec layer (:mod:`repro.spec`) is the wire format; this module is
the bridge from a *batch* of :class:`~repro.spec.ScenarioSpec`
documents to one :class:`~repro.vec.state.FleetState`.  Because the
vectorized kernel advances every device on one clock with no per-device
Python dispatch, it supports a deliberately static subset of the
scenario language:

* **harvesters** must resolve to a *piecewise-constant* operating
  point: ``regulated``, ``rf``, ``solar`` over a ``constant``,
  ``dimmed_lamp``, ``piecewise``, or hold-interpolated ``replay``
  irradiance trace, and ``scaled`` wrappers over any of those.
  Time-varying-but-stepwise traces compile into per-segment operating
  points (:func:`compile_operating_segments`) advanced by
  :meth:`~repro.vec.kernel.FleetKernel.run_segments`; continuously
  varying sources — ``orbit``, linear-interpolated replays — are still
  rejected (record them to a trace at your chosen ``dt`` to batch
  them).
* **reconfiguration** is static per device: each device simulates one
  active bank set (the fixed bank for Pwr/Fixed systems, a named energy
  mode — or the union of all banks — for CB systems).  Dynamic
  mode switching mid-run is the scalar engine's job.
* **faults** are not supported: any simulation fault kind in an armed
  schedule is rejected.
* **workloads** are abstracted to a constant regulated-rail load; the
  task graphs, radios, and schedules of the scalar apps do not run.

:func:`check_scenario` returns the list of violations for a scenario
(empty means supported) and :func:`ensure_supported` raises
:class:`~repro.errors.VecCapabilityError` listing every reason — the
backend never silently falls back to the scalar engine.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.device.mcu import MCU_MSP430FR5969
from repro.energy.bank import BankSpec
from repro.energy.booster import InputBooster, OutputBooster
from repro.energy.environment import ConstantTrace, DimmedLampTrace, PiecewiseTrace
from repro.energy.harvester import (
    FaultyHarvester,
    Harvester,
    RegulatedSupply,
    RFHarvester,
    ScaledHarvester,
    SolarPanel,
)
from repro.energy.limiter import InputVoltageLimiter
from repro.errors import ConfigurationError, VecCapabilityError
from repro.spec.build import bank_from_spec, booster_from_spec, harvester_from_spec
from repro.spec.model import PlatformSpecV1, ScenarioSpec
from repro.vec.state import FleetState

__all__ = [
    "DEFAULT_LOAD_POWER",
    "FIXED_BANK_MODE",
    "ALL_BANKS_MODE",
    "vec_capabilities",
    "check_scenario",
    "check_platform",
    "ensure_supported",
    "active_bank_spec",
    "build_fleet",
    "fleet_from_banks",
    "harvester_change_times",
    "compile_operating_segments",
]

#: Default regulated-rail demand per device: the paper's measurement
#: MCU computing at full clock.
DEFAULT_LOAD_POWER = MCU_MSP430FR5969.active_power

#: Mode sentinel: simulate the hardwired fixed bank.
FIXED_BANK_MODE = "__fixed__"
#: Mode sentinel: simulate every declared bank in parallel.
ALL_BANKS_MODE = "__all__"

#: Trace kinds whose level is constant in time.
_STATIC_TRACES = (ConstantTrace, DimmedLampTrace)


def _is_piecewise_constant(trace) -> bool:
    """True for traces the segment compiler can batch (stepwise levels)."""
    if isinstance(trace, _STATIC_TRACES) or isinstance(trace, PiecewiseTrace):
        return True
    from repro.traces import ReplayTrace

    return isinstance(trace, ReplayTrace) and trace.interpolation == "hold"


def vec_capabilities() -> dict:
    """The feature matrix `repro vec-info` prints, as plain data."""
    return {
        "backend": "vec",
        "harvesters": {
            "regulated": "supported",
            "rf": "supported",
            "solar": "supported with constant, dimmed_lamp, piecewise, or "
            "hold-interpolated replay irradiance traces (compiled into "
            "per-segment operating points); orbit and linear-interpolated "
            "replay traces vary continuously and are rejected — record "
            "them to a trace file (`repro trace record`) to batch them",
            "scaled": "supported over any supported inner harvester",
        },
        "systems": {
            "Pwr": "fixed bank, always-on load",
            "Fixed": "fixed bank",
            "CB-R": "one static energy mode (or all banks in parallel)",
            "CB-P": "one static energy mode (or all banks in parallel)",
        },
        "boosters": "full input/output converter models (cold start, "
        "bypass diode, efficiency ramp, ESR droop, regulation floor)",
        "limiter": "folded into each segment's harvester operating point",
        "traces": "piecewise-constant traces (piecewise, replay with hold "
        "interpolation) batch via FleetKernel.run_segments with segment "
        "boundaries aligned to the step contract",
        "reconfiguration": "static per device; dynamic mode switching "
        "requires the scalar engine",
        "faults": "unsupported — any simulation fault kind is rejected",
        "workloads": "abstracted to a constant regulated-rail load; task "
        "graphs and radios require the scalar engine",
    }


# ---------------------------------------------------------------------------
# Capability checks
# ---------------------------------------------------------------------------


def _harvester_reasons(harvester: Harvester) -> List[str]:
    if isinstance(harvester, ScaledHarvester):
        return _harvester_reasons(harvester.inner)
    if isinstance(harvester, FaultyHarvester):
        return [
            "fault-injected harvester: the vec backend does not support "
            "fault schedules"
        ]
    if isinstance(harvester, (RegulatedSupply, RFHarvester)):
        return []
    if isinstance(harvester, SolarPanel):
        trace = harvester.irradiance
        if _is_piecewise_constant(trace):
            return []
        from repro.traces import ReplayTrace

        if isinstance(trace, ReplayTrace):
            return [
                f"replay trace with {trace.interpolation!r} interpolation: "
                f"the vec backend batches hold-interpolated (piecewise-"
                f"constant) replays only"
            ]
        return [
            f"continuously time-varying irradiance trace "
            f"{type(trace).__name__}: the vec backend batches piecewise-"
            f"constant traces only — record it to a trace file "
            f"(`repro trace record`) and replay with hold interpolation"
        ]
    return [
        f"harvester {type(harvester).__name__} has no vectorized model"
    ]


def check_platform(platform: PlatformSpecV1) -> List[str]:
    """Reasons the vec backend cannot simulate *platform* (empty = ok)."""
    try:
        harvester = harvester_from_spec(platform.harvester)
    except Exception as error:  # invalid spec: report, don't crash
        return [f"harvester spec does not build: {error}"]
    return _harvester_reasons(harvester)


def check_scenario(scenario: ScenarioSpec, fault_schedule=None) -> List[str]:
    """Reasons the vec backend cannot simulate *scenario* (empty = ok).

    *fault_schedule* is an optional :mod:`repro.faults` schedule the
    caller intends to arm; every simulation fault in it is a reason.
    """
    reasons = check_platform(scenario.platform)
    if fault_schedule is not None:
        kinds = sorted({fault.kind for fault in fault_schedule.sim_faults()})
        if kinds:
            reasons.append(
                f"fault schedule {fault_schedule.name!r} arms simulation "
                f"fault kind(s) {kinds}: the vec backend supports none"
            )
    return reasons


def ensure_supported(scenario: ScenarioSpec, fault_schedule=None) -> None:
    """Raise :class:`VecCapabilityError` unless *scenario* is supported."""
    reasons = check_scenario(scenario, fault_schedule)
    if reasons:
        listing = "; ".join(reasons)
        raise VecCapabilityError(
            f"scenario {scenario.name!r} is not supported by the vec "
            f"backend: {listing}. Use the scalar engine, or see `repro "
            f"vec-info` for the supported feature set."
        )


# ---------------------------------------------------------------------------
# Fleet construction
# ---------------------------------------------------------------------------


def operating_point(
    harvester: Harvester, v_clamp: Optional[float] = None, time: float = 0.0
):
    """The ``(voltage, power)`` a supported harvester provides at *time*.

    Applies the input voltage limiter exactly as the scalar power system
    does (``v_clamp=None`` uses the default limiter).  Static harvesters
    ignore *time*; piecewise-constant traces make this the per-segment
    operating point.
    """
    voltage, power = harvester.output(time)
    limiter = (
        InputVoltageLimiter() if v_clamp is None else InputVoltageLimiter(v_clamp)
    )
    return limiter.limit(voltage, power)


def harvester_change_times(
    harvester: Harvester, horizon: float
) -> List[float]:
    """Times in ``(0, horizon)`` where the operating point steps.

    Static harvesters return ``[]``; piecewise and hold-replay solar
    traces return their level-change times; scaled wrappers delegate to
    their inner harvester.  Callers must have passed the capability
    check — continuously varying harvesters have no meaningful answer.
    """
    if isinstance(harvester, ScaledHarvester):
        return harvester_change_times(harvester.inner, horizon)
    if not isinstance(harvester, SolarPanel):
        return []
    trace = harvester.irradiance
    if isinstance(trace, _STATIC_TRACES):
        return []
    if isinstance(trace, PiecewiseTrace):
        changes = trace.change_times()
    else:
        from repro.traces import ReplayTrace

        if not isinstance(trace, ReplayTrace):
            raise VecCapabilityError(
                f"trace {type(trace).__name__} has no segment compilation"
            )
        changes = trace.change_times(until=horizon)
    return [time for time in changes if 0.0 < time < horizon]


def compile_operating_segments(
    scenarios: Sequence[ScenarioSpec],
    horizon: float,
    dt: float,
    power_scales: Union[float, Sequence[float]] = 1.0,
) -> List:
    """Compile a batch's traces into kernel segments.

    Returns ``[(steps, harvest_voltage, harvest_power), ...]`` covering
    ``int(round(horizon / dt))`` steps — the exact step count
    :meth:`FleetKernel.run` would take.  Each device's level-change
    times map to the first step whose *start* is at or past the change
    (``ceil(t/dt)``), the union of all devices' boundaries splits the
    run, and every segment's operating point is evaluated at its start
    time through the folded limiter.

    Because the kernel evaluates harvester power at step-start times,
    a compiled run is **bit-identical** to hypothetically re-evaluating
    every trace at every step: within a segment the trace is constant
    at exactly the evaluated level, and spurious (union) boundaries
    merely re-assign identical values.  Static batches compile to a
    single segment equal to :func:`build_fleet`'s columns.
    """
    if not scenarios:
        raise ConfigurationError(
            "compile_operating_segments needs at least one scenario"
        )
    if dt <= 0.0:
        raise ConfigurationError(f"dt must be positive, got {dt}")
    if horizon < 0.0:
        raise ConfigurationError(f"horizon must be non-negative, got {horizon}")
    n = len(scenarios)
    scales = _broadcast(power_scales, n)
    total_steps = int(round(horizon / dt))

    harvesters = []
    clamps = []
    boundary_steps = {0, total_steps}
    for scenario in scenarios:
        harvester = harvester_from_spec(scenario.platform.harvester)
        harvesters.append(harvester)
        clamps.append(scenario.platform.limiter_v_clamp)
        for change in harvester_change_times(harvester, horizon):
            step = int(math.ceil(change / dt - 1e-9))
            if 0 < step < total_steps:
                boundary_steps.add(step)
    boundaries = sorted(boundary_steps)

    segments = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        t_start = start * dt
        hv = np.zeros(n)
        hp = np.zeros(n)
        for i, (harvester, clamp) in enumerate(zip(harvesters, clamps)):
            voltage, power = operating_point(harvester, clamp, time=t_start)
            hv[i] = voltage
            hp[i] = power * float(scales[i])
        segments.append((stop - start, hv, hp))
    if not segments:  # zero-duration horizon still needs one segment
        hv = np.zeros(n)
        hp = np.zeros(n)
        for i, (harvester, clamp) in enumerate(zip(harvesters, clamps)):
            voltage, power = operating_point(harvester, clamp, time=0.0)
            hv[i] = voltage
            hp[i] = power * float(scales[i])
        segments.append((0, hv, hp))
    return segments


def active_bank_spec(
    platform: PlatformSpecV1, system: str, mode: Optional[str] = None
) -> BankSpec:
    """The aggregate bank set one vec device simulates.

    ``Pwr``/``Fixed`` systems (and the :data:`FIXED_BANK_MODE`
    sentinel) use the hardwired fixed bank; CB systems use the named
    energy mode, or every declared bank in parallel when *mode* is
    ``None``/:data:`ALL_BANKS_MODE`.  Aggregation reuses the scalar
    :class:`~repro.energy.bank.BankSpec` parallel rules, so capacitance,
    ESR, leakage, and rated voltage match the scalar reservoir exactly.
    """
    if mode == FIXED_BANK_MODE or (mode is None and system in ("Pwr", "Fixed")):
        return bank_from_spec(platform.fixed_bank)
    banks = {bank.name: bank_from_spec(bank) for bank in platform.banks}
    if mode is None or mode == ALL_BANKS_MODE:
        names = list(banks)
    else:
        modes = dict(platform.modes)
        if mode not in modes:
            raise ConfigurationError(
                f"unknown energy mode {mode!r}; declared: {sorted(modes)}"
            )
        names = list(modes[mode])
    groups = []
    for name in names:
        if name not in banks:
            raise ConfigurationError(
                f"mode {mode!r} references unknown bank {name!r}"
            )
        groups.extend(banks[name].groups)
    return BankSpec(name=f"vec[{'+'.join(names)}]", groups=tuple(groups))


def _broadcast(option, n: int):
    if option is None or isinstance(option, (str, float, int)):
        return [option] * n
    option = list(option)
    if len(option) != n:
        raise ConfigurationError(
            f"per-device option needs {n} entries, got {len(option)}"
        )
    return option


def build_fleet(
    scenarios: Sequence[ScenarioSpec],
    modes: Union[None, str, Sequence[Optional[str]]] = None,
    load_power: Union[float, Sequence[float]] = DEFAULT_LOAD_POWER,
    power_scales: Union[float, Sequence[float]] = 1.0,
    initial_voltage: Union[float, Sequence[float]] = 0.0,
    check: bool = True,
) -> FleetState:
    """One :class:`FleetState` from a batch of canonical scenarios.

    Args:
        scenarios: one :class:`ScenarioSpec` per device (repeat an entry
            to replicate a platform across grid points).
        modes: active bank set per device (see :func:`active_bank_spec`).
        load_power: regulated-rail demand per device while on, watts.
        power_scales: harvest-power multiplier per device — the grid
            axis of the power sweep.
        initial_voltage: starting terminal voltage per device.
        check: run :func:`ensure_supported` on each scenario first
            (disable only for pre-validated batches).

    Raises:
        VecCapabilityError: when *check* finds an unsupported scenario.
    """
    if not scenarios:
        raise ConfigurationError("build_fleet needs at least one scenario")
    n = len(scenarios)
    modes = _broadcast(modes, n)
    loads = _broadcast(load_power, n)
    scales = _broadcast(power_scales, n)
    volts = _broadcast(initial_voltage, n)

    banks: List[BankSpec] = []
    input_boosters: List[InputBooster] = []
    output_boosters: List[OutputBooster] = []
    hv = np.zeros(n)
    hp = np.zeros(n)
    quiescent = np.zeros(n)
    for i, scenario in enumerate(scenarios):
        if check:
            ensure_supported(scenario)
        platform = scenario.platform
        banks.append(active_bank_spec(platform, scenario.system, modes[i]))
        input_boosters.append(
            InputBooster()
            if platform.input_booster is None
            else booster_from_spec(platform.input_booster)
        )
        output_boosters.append(
            OutputBooster()
            if platform.output_booster is None
            else booster_from_spec(platform.output_booster)
        )
        voltage, power = operating_point(
            harvester_from_spec(platform.harvester), platform.limiter_v_clamp
        )
        hv[i] = voltage
        hp[i] = power * float(scales[i])
        quiescent[i] = platform.quiescent_power

    return _assemble(
        banks, input_boosters, output_boosters, hv, hp,
        np.asarray([float(load) for load in loads]),
        quiescent,
        np.asarray([float(v) for v in volts]),
    )


def fleet_from_banks(
    banks: Sequence[BankSpec],
    input_booster: Union[InputBooster, Sequence[InputBooster]] = InputBooster(),
    output_booster: Union[OutputBooster, Sequence[OutputBooster]] = OutputBooster(),
    harvester_voltage: Union[float, Sequence[float]] = 3.0,
    harvest_power: Union[float, Sequence[float]] = 1.0e-3,
    load_power: Union[float, Sequence[float]] = DEFAULT_LOAD_POWER,
    quiescent_power: Union[float, Sequence[float]] = 0.0,
    initial_voltage: Union[float, Sequence[float], str] = 0.0,
) -> FleetState:
    """A fleet directly from runtime bank specs (design-space sweeps).

    The Figure 3/4 grids and the ablations sweep synthetic banks that
    never pass through the scenario layer; this builder takes the
    runtime objects directly.  ``initial_voltage="target"`` starts each
    device at its charge target (the fully-charged sweeps).
    """
    if not banks:
        raise ConfigurationError("fleet_from_banks needs at least one bank")
    n = len(banks)
    if isinstance(input_booster, InputBooster):
        input_boosters = [input_booster] * n
    else:
        input_boosters = list(input_booster)
    if isinstance(output_booster, OutputBooster):
        output_boosters = [output_booster] * n
    else:
        output_boosters = list(output_booster)
    if len(input_boosters) != n or len(output_boosters) != n:
        raise ConfigurationError(
            "booster lists must match the number of banks"
        )
    hv = np.broadcast_to(np.asarray(harvester_voltage, dtype=float), (n,)).copy()
    hp = np.broadcast_to(np.asarray(harvest_power, dtype=float), (n,)).copy()
    loads = np.broadcast_to(np.asarray(load_power, dtype=float), (n,)).copy()
    quiescent = np.broadcast_to(
        np.asarray(quiescent_power, dtype=float), (n,)
    ).copy()
    if isinstance(initial_voltage, str):
        if initial_voltage != "target":
            raise ConfigurationError(
                f"initial_voltage: expected a number or 'target', "
                f"got {initial_voltage!r}"
            )
        volts = np.asarray(
            [
                min(booster.v_charge_target, bank.rated_voltage)
                for booster, bank in zip(input_boosters, banks)
            ]
        )
    else:
        volts = np.broadcast_to(
            np.asarray(initial_voltage, dtype=float), (n,)
        ).copy()
    return _assemble(
        list(banks), input_boosters, output_boosters, hv, hp, loads,
        quiescent, volts,
    )


def _assemble(
    banks: List[BankSpec],
    input_boosters: List[InputBooster],
    output_boosters: List[OutputBooster],
    hv: np.ndarray,
    hp: np.ndarray,
    loads: np.ndarray,
    quiescent: np.ndarray,
    volts: np.ndarray,
) -> FleetState:
    def column(objects, attribute):
        return np.asarray([getattr(obj, attribute) for obj in objects])

    capacitance = np.asarray([bank.capacitance for bank in banks])
    return FleetState(
        voltage=volts,
        capacitance=capacitance,
        esr=np.asarray([bank.esr for bank in banks]),
        leak_tau=np.asarray(
            [bank.leak_resistance * bank.capacitance for bank in banks]
        ),
        rated_voltage=np.asarray([bank.rated_voltage for bank in banks]),
        harvest_voltage=hv,
        harvest_power=hp,
        load_power=loads,
        quiescent_power=quiescent,
        in_efficiency=column(input_boosters, "efficiency"),
        in_v_cold_start=column(input_boosters, "v_cold_start"),
        in_cold_start_efficiency=column(input_boosters, "cold_start_efficiency"),
        in_bypass=np.asarray([bool(b.bypass) for b in input_boosters]),
        in_v_diode_drop=column(input_boosters, "v_diode_drop"),
        in_v_charge_target=column(input_boosters, "v_charge_target"),
        in_min_input_voltage=column(input_boosters, "min_input_voltage"),
        in_low_voltage_efficiency=column(
            input_boosters, "low_voltage_efficiency"
        ),
        in_v_full_efficiency=column(input_boosters, "v_full_efficiency"),
        out_efficiency=column(output_boosters, "efficiency"),
        out_quiescent=column(output_boosters, "quiescent_power"),
        out_v_in_min=column(output_boosters, "v_in_min"),
    )
