"""Scalar-compat adapter: the reference the vec kernel is tested against.

:class:`ScalarFleet` advances the *same* :class:`~repro.vec.state.FleetState`
through the *same* five-phase step contract as
:class:`~repro.vec.kernel.FleetKernel`, but computes every electrical
quantity with the real scalar model objects
(:class:`~repro.energy.booster.InputBooster`,
:class:`~repro.energy.booster.OutputBooster`) one device at a time in
pure Python.  That makes it two things at once:

* the **differential reference** — any divergence between
  ``FleetKernel.step`` and ``ScalarFleet.step`` beyond float rounding is
  a vectorization bug, because both sides share the discretization and
  only the arithmetic differs;
* the **scalar side of the throughput benchmark** — it is an honest
  per-device object-dispatch implementation of the same workload, so
  the vec-vs-scalar speedup ratio measures exactly the cost the
  struct-of-arrays kernel removes.

The per-step agreement tolerance is documented in
``docs/performance.md`` (``~1e-12`` relative; see also
``tests/golden/vec/``).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List

import numpy as np

from repro.energy.booster import InputBooster, OutputBooster
from repro.errors import ConfigurationError
from repro.vec.state import FleetState

__all__ = ["ScalarFleet"]

_FLOOR_EPS = 1e-9
_TARGET_EPS = 1e-9


def _input_boosters(state: FleetState) -> List[InputBooster]:
    return [
        InputBooster(
            efficiency=float(state.in_efficiency[i]),
            v_cold_start=float(state.in_v_cold_start[i]),
            cold_start_efficiency=float(state.in_cold_start_efficiency[i]),
            bypass=bool(state.in_bypass[i]),
            v_diode_drop=float(state.in_v_diode_drop[i]),
            v_charge_target=float(state.in_v_charge_target[i]),
            min_input_voltage=float(state.in_min_input_voltage[i]),
            low_voltage_efficiency=float(state.in_low_voltage_efficiency[i]),
            v_full_efficiency=float(state.in_v_full_efficiency[i]),
        )
        for i in range(state.n)
    ]


def _output_boosters(state: FleetState) -> List[OutputBooster]:
    return [
        OutputBooster(
            v_in_min=float(state.out_v_in_min[i]),
            efficiency=float(state.out_efficiency[i]),
            quiescent_power=float(state.out_quiescent[i]),
        )
        for i in range(state.n)
    ]


class ScalarFleet:
    """Per-device scalar stepping over a :class:`FleetState`.

    Mutates *state* in place, exactly like
    :class:`~repro.vec.kernel.FleetKernel`; run either engine over a
    copy of the same initial state and compare columns.
    """

    def __init__(self, state: FleetState) -> None:
        self.state = state
        self.inputs = _input_boosters(state)
        self.outputs = _output_boosters(state)
        self.steps = 0
        self.now = 0.0
        # The scalar floor must reproduce the vectorized one bit for bit,
        # so take it from the scalar model rather than trusting state.
        self.floors = [
            booster.min_bank_voltage(float(state.esr[i]), float(state.load_power[i]))
            for i, booster in enumerate(self.outputs)
        ]

    def step(self, dt: float) -> None:
        """One fixed timestep, phase for phase the kernel's contract."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        s = self.state
        # One vectorized exp, indexed per device: np.exp and math.exp can
        # disagree by an ULP, and the differential tests compare the two
        # engines bit for bit — leakage must round identically.
        decays = np.exp(-dt / s.leak_tau)
        for i in range(s.n):
            v = float(s.voltage[i])
            floor = self.floors[i]
            on = bool(s.on[i])

            # 1. Brownout check.
            if on and v <= floor + _FLOOR_EPS:
                on = False
                s.brownouts[i] += 1

            # 2. Operating-point powers at the step-start voltage.
            charge = self.inputs[i].charge_power(
                v, float(s.harvest_voltage[i]), float(s.harvest_power[i])
            )
            net_in = charge - float(s.quiescent_power[i]) if charge > 0.0 else 0.0
            drain = 0.0
            if on:
                drain = self.outputs[i].drain_power(
                    v, float(s.esr[i]), float(s.load_power[i])
                )

            # 3. Clipped energy update.
            half_c = 0.5 * float(s.capacitance[i])
            target = float(s.charge_target[i])
            energy = half_c * v * v
            target_energy = max(half_c * target * target, energy)
            new_energy = energy + (net_in - drain) * dt
            new_energy = min(max(new_energy, 0.0), target_energy)
            v = math.sqrt(new_energy / half_c)

            # 4. Wake at the charge target (pre-leak voltage).
            if not on and s.load_power[i] > 0.0 and v >= target - _TARGET_EPS:
                on = True

            # 5. RC leakage.
            decay = float(decays[i])
            leaked_from = half_c * v * v
            v *= decay
            s.energy_leaked[i] += leaked_from - half_c * v * v

            s.voltage[i] = v
            s.on[i] = on
            s.energy_in[i] += charge * dt
            s.energy_out[i] += drain * dt
            if drain > 0.0:
                s.on_seconds[i] += dt
        self.steps += 1
        self.now += dt

    def run(self, duration: float, dt: float = 0.05) -> Dict[str, float]:
        """Step through *duration* seconds; returns the same summary
        shape as :meth:`FleetKernel.run` for benchmark symmetry."""
        if duration < 0.0:
            raise ConfigurationError(
                f"duration must be non-negative, got {duration}"
            )
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        steps = int(round(duration / dt))
        started = time.perf_counter()
        for _ in range(steps):
            self.step(dt)
        wall = time.perf_counter() - started
        return {
            "steps": float(steps),
            "devices": float(self.state.n),
            "wall_seconds": wall,
        }

    def run_segments(self, segments, dt: float) -> Dict[str, float]:
        """Per-device reference for :meth:`FleetKernel.run_segments`.

        Reassigns the harvest columns before each segment and steps with
        the unchanged scalar contract — the differential baseline for
        trace-driven batches.
        """
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        segments = list(segments)
        if not segments:
            raise ConfigurationError("run_segments needs at least one segment")
        shape = self.state.voltage.shape
        total_steps = 0
        started = time.perf_counter()
        for steps, hv, hp in segments:
            hv = np.asarray(hv, dtype=np.float64)
            hp = np.asarray(hp, dtype=np.float64)
            if hv.shape != shape or hp.shape != shape:
                raise ConfigurationError(
                    f"segment operating points: expected shape {shape}, "
                    f"got {hv.shape} / {hp.shape}"
                )
            self.state.harvest_voltage = hv
            self.state.harvest_power = hp
            for _ in range(int(steps)):
                self.step(dt)
            total_steps += int(steps)
        wall = time.perf_counter() - started
        return {
            "steps": float(total_steps),
            "segments": float(len(segments)),
            "devices": float(self.state.n),
            "wall_seconds": wall,
        }

    def voltages(self) -> np.ndarray:
        """Snapshot of the terminal voltages (copy)."""
        return self.state.voltage.copy()
