"""Struct-of-arrays fleet state for the vectorized backend.

The scalar engine simulates one device through Python objects; the
vectorized backend (:mod:`repro.vec`) advances *N* devices in lockstep,
holding every electrical quantity as a NumPy array indexed by device.
:class:`FleetState` is that state: reservoir voltages, aggregate
active-set parameters, harvester operating points, and the full
input/output booster parameter sets, plus the energy-accounting
columns the property tests and experiments read back.

No per-device Python objects exist on the hot path — the kernel
(:mod:`repro.vec.kernel`) reads and writes these arrays wholesale.
Construction validates shapes and the same physical invariants the
scalar dataclasses enforce in ``__post_init__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["FleetState"]


def _as_array(value, n: int, name: str) -> np.ndarray:
    """Broadcast *value* (scalar or sequence) to a float64 array of n."""
    array = np.asarray(value, dtype=np.float64)
    if array.ndim == 0:
        array = np.full(n, float(array))
    if array.shape != (n,):
        raise ConfigurationError(
            f"{name}: expected shape ({n},), got {array.shape}"
        )
    return array.copy()


@dataclass
class FleetState:
    """Electrical state of N devices, one array column per quantity.

    Attributes (all shape ``(n,)`` float64 unless noted):
        voltage: active-set terminal voltage, volts.
        capacitance: aggregate active-set capacitance, farads.
        esr: aggregate active-set ESR, ohms.
        leak_tau: RC self-discharge time constant, seconds
            (``leak_resistance * capacitance``).
        rated_voltage: minimum rated voltage over the active parts.
        harvest_voltage / harvest_power: the harvester operating point
            (the vec backend supports time-invariant harvesters only;
            see :func:`repro.vec.batch.check_scenario`).
        load_power: regulated-rail demand while a device is on, watts.
        quiescent_power: platform standing draw, watts.
        in_*: the :class:`~repro.energy.booster.InputBooster` parameter
            columns (efficiency, cold-start knee, bypass diode, charge
            target, efficiency ramp).
        out_*: the :class:`~repro.energy.booster.OutputBooster`
            parameter columns (efficiency, quiescent draw, minimum
            input voltage).
        on: bool column — device currently discharging into its load.
        charge_target: ``min(in_v_charge_target, rated_voltage)``.
        p_in: booster input power needed for ``load_power``
            (``load / out_efficiency + out_quiescent``).
        floor: discharge floor — the larger of the droop-equation and
            regulation constraints, exactly the scalar
            ``OutputBooster.min_bank_voltage``.
        energy_in / energy_out / energy_leaked: cumulative joules moved
            into the reservoir, drained from it, and lost to leakage.
        on_seconds: cumulative seconds each device spent discharging.
        brownouts: int64 column — discharge-floor hits.
    """

    voltage: np.ndarray
    capacitance: np.ndarray
    esr: np.ndarray
    leak_tau: np.ndarray
    rated_voltage: np.ndarray
    harvest_voltage: np.ndarray
    harvest_power: np.ndarray
    load_power: np.ndarray
    quiescent_power: np.ndarray

    in_efficiency: np.ndarray
    in_v_cold_start: np.ndarray
    in_cold_start_efficiency: np.ndarray
    in_bypass: np.ndarray
    in_v_diode_drop: np.ndarray
    in_v_charge_target: np.ndarray
    in_min_input_voltage: np.ndarray
    in_low_voltage_efficiency: np.ndarray
    in_v_full_efficiency: np.ndarray

    out_efficiency: np.ndarray
    out_quiescent: np.ndarray
    out_v_in_min: np.ndarray

    on: np.ndarray = field(default=None)  # type: ignore[assignment]

    # Derived (filled by __post_init__)
    charge_target: np.ndarray = field(default=None)  # type: ignore[assignment]
    p_in: np.ndarray = field(default=None)  # type: ignore[assignment]
    floor: np.ndarray = field(default=None)  # type: ignore[assignment]

    # Accounting
    energy_in: np.ndarray = field(default=None)  # type: ignore[assignment]
    energy_out: np.ndarray = field(default=None)  # type: ignore[assignment]
    energy_leaked: np.ndarray = field(default=None)  # type: ignore[assignment]
    on_seconds: np.ndarray = field(default=None)  # type: ignore[assignment]
    brownouts: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = len(np.atleast_1d(np.asarray(self.capacitance)))
        for name in (
            "voltage", "capacitance", "esr", "leak_tau", "rated_voltage",
            "harvest_voltage", "harvest_power", "load_power",
            "quiescent_power", "in_efficiency", "in_v_cold_start",
            "in_cold_start_efficiency", "in_v_diode_drop",
            "in_v_charge_target", "in_min_input_voltage",
            "in_low_voltage_efficiency", "in_v_full_efficiency",
            "out_efficiency", "out_quiescent", "out_v_in_min",
        ):
            setattr(self, name, _as_array(getattr(self, name), n, name))
        bypass = np.asarray(self.in_bypass)
        if bypass.ndim == 0:
            bypass = np.full(n, bool(bypass))
        self.in_bypass = bypass.astype(bool).copy()

        self._validate(n)

        if self.on is None:
            self.on = np.zeros(n, dtype=bool)
        else:
            self.on = np.asarray(self.on).astype(bool).copy()
            if self.on.shape != (n,):
                raise ConfigurationError(
                    f"on: expected shape ({n},), got {self.on.shape}"
                )

        self.charge_target = np.minimum(
            self.in_v_charge_target, self.rated_voltage
        )
        self.p_in = self.load_power / self.out_efficiency + self.out_quiescent
        droop_floor = 2.0 * np.sqrt(self.esr * self.p_in)
        regulation_floor = (
            self.out_v_in_min + self.esr * self.p_in / self.out_v_in_min
        )
        self.floor = np.maximum(droop_floor, regulation_floor)

        zeros = lambda: np.zeros(n, dtype=np.float64)  # noqa: E731
        self.energy_in = zeros()
        self.energy_out = zeros()
        self.energy_leaked = zeros()
        self.on_seconds = zeros()
        self.brownouts = np.zeros(n, dtype=np.int64)

    def _validate(self, n: int) -> None:
        def _require(condition: np.ndarray, message: str) -> None:
            if not bool(np.all(condition)):
                bad = int(np.argmin(condition))
                raise ConfigurationError(f"device {bad}: {message}")

        _require(self.capacitance > 0.0, "capacitance must be positive")
        _require(self.esr >= 0.0, "esr must be non-negative")
        _require(self.leak_tau > 0.0, "leak_tau must be positive")
        _require(self.rated_voltage > 0.0, "rated_voltage must be positive")
        _require(
            (self.voltage >= 0.0) & (self.voltage <= self.rated_voltage),
            "voltage outside [0, rated_voltage]",
        )
        _require(self.harvest_power >= 0.0, "harvest_power must be non-negative")
        _require(self.load_power >= 0.0, "load_power must be non-negative")
        _require(
            self.quiescent_power >= 0.0, "quiescent_power must be non-negative"
        )
        _require(
            (self.in_efficiency > 0.0) & (self.in_efficiency <= 1.0),
            "input efficiency must be in (0, 1]",
        )
        _require(
            (self.in_cold_start_efficiency > 0.0)
            & (self.in_cold_start_efficiency <= self.in_efficiency),
            "cold_start_efficiency must be in (0, efficiency]",
        )
        _require(
            self.in_v_charge_target > self.in_v_cold_start,
            "v_charge_target must exceed v_cold_start",
        )
        _require(
            self.in_v_full_efficiency > self.in_v_cold_start,
            "v_full_efficiency must exceed v_cold_start",
        )
        _require(
            (self.in_low_voltage_efficiency > 0.0)
            & (self.in_low_voltage_efficiency <= 1.0),
            "low_voltage_efficiency must be in (0, 1]",
        )
        _require(
            (self.out_efficiency > 0.0) & (self.out_efficiency <= 1.0),
            "output efficiency must be in (0, 1]",
        )
        _require(self.out_v_in_min > 0.0, "v_in_min must be positive")
        _require(self.out_quiescent >= 0.0, "quiescent_power must be >= 0")

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of devices in the fleet."""
        return self.voltage.shape[0]

    def energy(self) -> np.ndarray:
        """Stored energy per device, joules (``1/2 C V^2``)."""
        return 0.5 * self.capacitance * self.voltage * self.voltage

    def total_energy(self) -> float:
        """Stored energy summed over the fleet, joules."""
        return float(np.sum(self.energy()))

    def select(self, indices: Sequence[int]) -> "FleetState":
        """A new state holding only *indices* (accounting reset)."""
        idx = np.asarray(indices, dtype=np.intp)
        return FleetState(
            voltage=self.voltage[idx],
            capacitance=self.capacitance[idx],
            esr=self.esr[idx],
            leak_tau=self.leak_tau[idx],
            rated_voltage=self.rated_voltage[idx],
            harvest_voltage=self.harvest_voltage[idx],
            harvest_power=self.harvest_power[idx],
            load_power=self.load_power[idx],
            quiescent_power=self.quiescent_power[idx],
            in_efficiency=self.in_efficiency[idx],
            in_v_cold_start=self.in_v_cold_start[idx],
            in_cold_start_efficiency=self.in_cold_start_efficiency[idx],
            in_bypass=self.in_bypass[idx],
            in_v_diode_drop=self.in_v_diode_drop[idx],
            in_v_charge_target=self.in_v_charge_target[idx],
            in_min_input_voltage=self.in_min_input_voltage[idx],
            in_low_voltage_efficiency=self.in_low_voltage_efficiency[idx],
            in_v_full_efficiency=self.in_v_full_efficiency[idx],
            out_efficiency=self.out_efficiency[idx],
            out_quiescent=self.out_quiescent[idx],
            out_v_in_min=self.out_v_in_min[idx],
            on=self.on[idx],
        )
