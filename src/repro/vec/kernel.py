"""The vectorized fixed-timestep kernel.

Two tiers of vectorized computation, both mirroring the scalar
electrical models term for term:

* :class:`FleetKernel` — a fixed-timestep duty-cycle engine.  Each
  ``step(dt)`` evaluates the input-booster charge paths (cold start,
  keeper-diode bypass, efficiency ramp), the output-booster droop
  drain, platform quiescent draw, RC leakage, and the
  charge-to-target / discharge-to-floor state machine for every device
  at once.  This is the discretized "VirtCap" form: any DC/DC
  converter + capacitor stack advanced on a shared clock, with NumPy
  arrays instead of per-device objects.

* Analytic sweep helpers — :func:`charge_times` and
  :func:`times_to_brownout` replicate the scalar integrators used by
  the Figure 3/4 design-space sweeps (``charge_time_for_bank``,
  ``OutputBooster.time_to_brownout``) step for step, so the vec
  backend's design-space numbers agree with the scalar backend to
  floating-point tolerance (see ``docs/performance.md``).

Per-step discretization order (the documented contract the
scalar-compat adapter in :mod:`repro.vec.compat` reproduces exactly):

1. devices that are on but at/below their discharge floor brown out;
2. charge and drain powers are evaluated at the step-start voltage;
3. the net energy delta ``(charge - quiescent - drain) * dt`` is
   applied, clipped to ``[0, energy(charge_target)]``;
4. off devices whose post-update voltage reached the charge target
   turn on (the comparator fires as charging tops out, *before* the
   same step's leakage nudges the voltage back below the target);
5. RC leakage decays the post-update voltage.

Tolerance semantics: against the scalar models the kernel agrees to
float rounding (~1e-12 relative) per step on identical operating
points; over a trace, first-order Euler discretization error is bounded
by the chosen ``dt`` and documented in ``docs/performance.md``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigurationError, PowerSystemError
from repro.observability.telemetry import Telemetry, resolve_telemetry
from repro.vec.state import FleetState

__all__ = [
    "FleetKernel",
    "charge_power_vec",
    "drain_power_vec",
    "charge_times",
    "leak_decay",
    "times_to_brownout",
    "atomicity_ops",
]

#: Epsilon matching the scalar discharge loop's floor guard.
_FLOOR_EPS = 1e-9
#: Epsilon matching the scalar charge loop's target guard.
_TARGET_EPS = 1e-9


def leak_decay(leak_tau: np.ndarray, dt: float) -> np.ndarray:
    """Per-device RC decay factors, computed element by element.

    Every other kernel operation is elementwise IEEE arithmetic, so a
    batch of N devices and N batches of one produce identical bits — as
    long as ``exp`` does too.  ``np.exp`` over an array may take a SIMD
    path whose rounding can differ from the size-1 evaluation on some
    builds, which would make batching observable.  This helper pins the
    size-1 evaluation for every element, so any batch composition of
    the same devices shares exactly these factors.  Pass the result to
    :meth:`FleetKernel.run` via ``decay=`` when batch composition must
    not influence results (the campaign planner does).
    """
    taus = np.atleast_1d(np.asarray(leak_tau, dtype=np.float64))
    if dt <= 0.0:
        raise ConfigurationError(f"dt must be positive, got {dt}")
    return np.asarray(
        [np.exp(np.float64(-dt) / tau) for tau in taus], dtype=np.float64
    )


def charge_power_vec(voltage: np.ndarray, state: FleetState) -> np.ndarray:
    """Power into each capacitor, watts — ``InputBooster.charge_power``.

    Evaluates every path of the scalar model on arrays: the warm path
    with its linear efficiency ramp, the cold-start path, and the
    keeper-diode bypass, then zeroes devices whose harvester is too
    weak or whose capacitor is at/above the charge target.
    """
    hv = state.harvest_voltage
    hp = state.harvest_power

    span = state.in_v_full_efficiency - state.in_v_cold_start
    fraction = np.clip((voltage - state.in_v_cold_start) / span, 0.0, 1.0)
    # Above v_full_efficiency the scalar model returns exactly 1.0.
    ramp = np.where(
        voltage >= state.in_v_full_efficiency,
        1.0,
        state.in_low_voltage_efficiency
        + (1.0 - state.in_low_voltage_efficiency) * fraction,
    )
    warm = hp * state.in_efficiency * ramp

    cold = hp * state.in_cold_start_efficiency
    with np.errstate(divide="ignore", invalid="ignore"):
        diode_efficiency = np.where(
            hv > 0.0, np.maximum(0.0, 1.0 - state.in_v_diode_drop / hv), 0.0
        )
    bypass = np.where(
        state.in_bypass & (voltage < hv - state.in_v_diode_drop),
        hp * diode_efficiency,
        0.0,
    )
    cold_path = np.maximum(cold, bypass)

    power = np.where(voltage >= state.in_v_cold_start, warm, cold_path)
    blocked = (
        (hp <= 0.0)
        | (hv < state.in_min_input_voltage)
        | (voltage >= state.in_v_charge_target)
    )
    return np.where(blocked, 0.0, power)


def drain_power_vec(
    voltage: np.ndarray, state: FleetState, active: Optional[np.ndarray] = None
) -> np.ndarray:
    """Power leaving each bank to feed its load, watts.

    The scalar ``OutputBooster.drain_power``: solve the ESR droop
    quadratic ``I (V - I ESR) = P_in`` for the stable root and return
    ``I * V``.  Only meaningful above the discharge floor; *active*
    masks devices for which the drain applies (others get 0).
    """
    p_in = state.p_in
    if active is None:
        active = np.ones_like(voltage, dtype=bool)
    with np.errstate(invalid="ignore", divide="ignore"):
        discriminant = voltage * voltage - 4.0 * state.esr * p_in
        sqrt_disc = np.sqrt(np.maximum(discriminant, 0.0))
        current_esr = (voltage - sqrt_disc) / (2.0 * state.esr)
        current_zero_esr = p_in / np.maximum(voltage, 1e-300)
        current = np.where(state.esr > 0.0, current_esr, current_zero_esr)
    valid = active & (discriminant >= 0.0) & (voltage > 0.0)
    return np.where(valid, current * voltage, 0.0)


class FleetKernel:
    """Advance a :class:`FleetState` through fixed timesteps.

    Args:
        state: the fleet to advance (mutated in place).
        telemetry: optional :class:`~repro.observability.Telemetry`;
            falls back to the ambient scope.  :meth:`run` records
            ``vec.steps``, ``vec.devices``, and ``vec.batch_seconds``.
    """

    def __init__(
        self, state: FleetState, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.state = state
        self.telemetry = resolve_telemetry(telemetry)
        self.steps = 0
        self.now = 0.0

    def step(self, dt: float, _decay: Optional[np.ndarray] = None) -> None:
        """Advance every device by *dt* seconds (see module docstring
        for the discretization order)."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        s = self.state
        v = s.voltage

        # 1. Brown out devices that can no longer hold their load.
        browned = s.on & (v <= s.floor + _FLOOR_EPS)
        if browned.any():
            s.on = s.on & ~browned
            s.brownouts += browned

        # 2. Operating-point powers at the step-start voltage.
        charge = charge_power_vec(v, s)
        net_in = np.where(charge > 0.0, charge - s.quiescent_power, 0.0)
        drain = drain_power_vec(v, s, active=s.on)

        # 3. Energy update, clipped to [0, energy at charge target]
        #    (an over-target initial voltage is preserved, not clipped).
        half_c = 0.5 * s.capacitance
        energy = half_c * v * v
        target_energy = np.maximum(half_c * s.charge_target * s.charge_target, energy)
        new_energy = np.clip(energy + (net_in - drain) * dt, 0.0, target_energy)
        v = np.sqrt(new_energy / half_c)

        # 4. Wake devices whose post-update voltage reached the target.
        wake = (~s.on) & (s.load_power > 0.0) & (v >= s.charge_target - _TARGET_EPS)
        s.on = s.on | wake

        # 5. RC leakage on the post-update voltage.
        decay = _decay if _decay is not None else np.exp(-dt / s.leak_tau)
        leaked_from = half_c * v * v
        v = v * decay
        s.voltage = v
        s.energy_leaked += leaked_from - half_c * v * v

        # Accounting: gross flows at the step operating points (clipping
        # at target/empty and leakage close the balance separately).
        s.energy_in += charge * dt
        s.energy_out += drain * dt
        s.on_seconds += np.where(drain > 0.0, dt, 0.0)
        self.steps += 1
        self.now += dt

    def run(
        self,
        duration: float,
        dt: float = 0.05,
        decay: Optional[np.ndarray] = None,
    ) -> Dict[str, float]:
        """Step the fleet through *duration* seconds at resolution *dt*.

        Returns a summary dict (steps, devices, wall seconds) and, when
        telemetry is enabled, records the ``vec.*`` counters.  *decay*
        optionally overrides the per-step RC leakage factors; pass
        :func:`leak_decay` when results must not depend on batch
        composition (see that helper's docstring).
        """
        if duration < 0.0:
            raise ConfigurationError(
                f"duration must be non-negative, got {duration}"
            )
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        steps = int(round(duration / dt))
        started = time.perf_counter()
        if decay is None:
            decay = np.exp(-dt / self.state.leak_tau)
        elif np.shape(decay) != self.state.voltage.shape:
            raise ConfigurationError(
                f"decay: expected shape {self.state.voltage.shape}, "
                f"got {np.shape(decay)}"
            )
        for _ in range(steps):
            self.step(dt, _decay=decay)
        wall = time.perf_counter() - started
        if self.telemetry.enabled:
            self.telemetry.inc("vec.steps", steps)
            self.telemetry.inc("vec.devices", self.state.n)
            self.telemetry.observe("vec.batch_seconds", wall)
        return {
            "steps": float(steps),
            "devices": float(self.state.n),
            "wall_seconds": wall,
        }

    def run_segments(
        self,
        segments,
        dt: float,
        decay: Optional[np.ndarray] = None,
    ) -> Dict[str, float]:
        """Step through piecewise-constant harvester operating points.

        *segments* is a sequence of ``(steps, harvest_voltage,
        harvest_power)`` tuples — the output of
        :func:`repro.vec.batch.compile_operating_segments`.  Before each
        segment the fleet's harvest columns are reassigned, then the
        segment's steps run under the unchanged five-phase contract.  A
        single segment is therefore bit-identical to :meth:`run` over
        the same operating point: nothing else about the stepping
        changes, and every operation stays elementwise (batch-of-N ==
        N batches-of-1 still holds, per :func:`leak_decay`).

        Returns the same summary dict as :meth:`run` plus the segment
        count; telemetry additionally records ``vec.segments``.
        """
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        segments = list(segments)
        if not segments:
            raise ConfigurationError("run_segments needs at least one segment")
        shape = self.state.voltage.shape
        if decay is None:
            decay = np.exp(-dt / self.state.leak_tau)
        elif np.shape(decay) != shape:
            raise ConfigurationError(
                f"decay: expected shape {shape}, got {np.shape(decay)}"
            )
        total_steps = 0
        started = time.perf_counter()
        for steps, hv, hp in segments:
            steps = int(steps)
            if steps < 0:
                raise ConfigurationError(
                    f"segment step counts must be non-negative, got {steps}"
                )
            hv = np.asarray(hv, dtype=np.float64)
            hp = np.asarray(hp, dtype=np.float64)
            if hv.shape != shape or hp.shape != shape:
                raise ConfigurationError(
                    f"segment operating points: expected shape {shape}, "
                    f"got {hv.shape} / {hp.shape}"
                )
            self.state.harvest_voltage = hv
            self.state.harvest_power = hp
            for _ in range(steps):
                self.step(dt, _decay=decay)
            total_steps += steps
        wall = time.perf_counter() - started
        if self.telemetry.enabled:
            self.telemetry.inc("vec.steps", total_steps)
            self.telemetry.inc("vec.devices", self.state.n)
            self.telemetry.inc("vec.segments", len(segments))
            self.telemetry.observe("vec.batch_seconds", wall)
        return {
            "steps": float(total_steps),
            "segments": float(len(segments)),
            "devices": float(self.state.n),
            "wall_seconds": wall,
        }


# ---------------------------------------------------------------------------
# Analytic design-space sweeps (Figures 3/4, ablations)
# ---------------------------------------------------------------------------


def charge_times(
    state: FleetState,
    target: Optional[np.ndarray] = None,
    steps: int = 200,
) -> np.ndarray:
    """Seconds to charge each device from empty to *target*, vectorized.

    Replicates ``fig03_design_space.charge_time_for_bank`` exactly: the
    voltage range splits into *steps* fixed increments and each segment
    integrates at the charge power evaluated at its lower edge.  Devices
    whose harvester cannot charge at some voltage get ``inf`` (the
    scalar integrator's sentinel).
    """
    if steps < 1:
        raise ConfigurationError(f"steps must be >= 1, got {steps}")
    s = state
    goal = s.charge_target if target is None else np.asarray(target, dtype=np.float64)
    if goal.shape != s.voltage.shape:
        raise ConfigurationError(
            f"target: expected shape {s.voltage.shape}, got {goal.shape}"
        )
    step = goal / float(steps)
    half_c = 0.5 * s.capacitance
    elapsed = np.zeros(s.n)
    voltage = np.zeros(s.n)
    with np.errstate(divide="ignore", invalid="ignore"):
        for _ in range(steps):
            v_next = np.minimum(goal, voltage + step)
            power = charge_power_vec(voltage, s)
            energy = half_c * (v_next * v_next - voltage * voltage)
            elapsed = elapsed + np.where(power > 0.0, energy / power, np.inf)
            voltage = v_next
    return elapsed


def times_to_brownout(
    state: FleetState,
    voltage_step_fraction: float = 0.01,
    max_iterations: int = 100_000,
) -> np.ndarray:
    """Seconds each device sustains its load from its current voltage.

    Replicates ``OutputBooster.discharge`` with infinite duration: the
    voltage falls in per-device steps of ``max(v * fraction, 1e-6)``
    toward the discharge floor, each segment billed at the drain power
    of its upper edge.  Devices already at/below their floor (or unable
    to deliver the load at all) return 0 — the scalar sweeps' infeasible
    region.
    """
    if voltage_step_fraction <= 0.0:
        raise ConfigurationError("voltage_step_fraction must be positive")
    s = state
    half_c = 0.5 * s.capacitance
    voltage = s.voltage.copy()
    elapsed = np.zeros(s.n)
    done = voltage <= s.floor + _FLOOR_EPS
    for _ in range(max_iterations):
        if done.all():
            return elapsed
        power = drain_power_vec(voltage, s, active=~done)
        # Devices whose droop quadratic has no real root cannot deliver
        # the load: they are infeasible, not slowly discharging.
        stuck = (~done) & (power <= 0.0)
        done = done | stuck
        dv = np.maximum(voltage * voltage_step_fraction, 1e-6)
        v_next = np.maximum(s.floor, voltage - dv)
        step_energy = half_c * (voltage * voltage - v_next * v_next)
        with np.errstate(divide="ignore", invalid="ignore"):
            step_time = np.where(power > 0.0, step_energy / power, 0.0)
        elapsed = elapsed + np.where(done, 0.0, step_time)
        voltage = np.where(done, voltage, v_next)
        done = done | (voltage <= s.floor + _FLOOR_EPS)
    raise PowerSystemError(
        f"brownout integration did not converge in {max_iterations} steps"
    )


def atomicity_ops(state: FleetState, op_rate: float) -> np.ndarray:
    """Operations each device sustains before brownout (Figures 3/4).

    ``times_to_brownout * op_rate`` — the vectorized form of the scalar
    ``atomicity_for_bank`` / ``atomicity_by_parts`` metric.
    """
    if op_rate <= 0.0:
        raise ConfigurationError(f"op_rate must be positive, got {op_rate}")
    return times_to_brownout(state) * op_rate
