"""Vectorized fleet backend: N devices as struct-of-arrays NumPy state.

The scalar engine (:mod:`repro.sim`, :mod:`repro.core`) models one
device faithfully through Python objects; this package advances a whole
fleet in lockstep for grid-shaped experiments.  See
``docs/performance.md`` for when to use which, the supported feature
subset, and the differential-testing tolerance.

Public names:

* :class:`~repro.vec.state.FleetState` — struct-of-arrays device state.
* :class:`~repro.vec.kernel.FleetKernel` — fixed-timestep kernel.
* :func:`~repro.vec.kernel.charge_times`,
  :func:`~repro.vec.kernel.times_to_brownout`,
  :func:`~repro.vec.kernel.atomicity_ops` — vectorized design-space
  sweeps (Figures 3/4, ablations).
* :func:`~repro.vec.batch.build_fleet`,
  :func:`~repro.vec.batch.fleet_from_banks` — batch builders.
* :func:`~repro.vec.batch.check_scenario`,
  :func:`~repro.vec.batch.ensure_supported`,
  :func:`~repro.vec.batch.vec_capabilities` — capability layer
  (`repro vec-info`, `repro spec check --backend vec`).
* :func:`~repro.vec.batch.compile_operating_segments`,
  :func:`~repro.vec.batch.harvester_change_times` — piecewise-constant
  trace compilation for segment-driven batches
  (:meth:`FleetKernel.run_segments`).
* :class:`~repro.vec.compat.ScalarFleet` — the scalar-compat reference.
"""

from repro.vec.batch import (
    ALL_BANKS_MODE,
    DEFAULT_LOAD_POWER,
    FIXED_BANK_MODE,
    active_bank_spec,
    build_fleet,
    check_platform,
    check_scenario,
    compile_operating_segments,
    ensure_supported,
    fleet_from_banks,
    harvester_change_times,
    vec_capabilities,
)
from repro.vec.compat import ScalarFleet
from repro.vec.kernel import (
    FleetKernel,
    atomicity_ops,
    charge_power_vec,
    charge_times,
    drain_power_vec,
    leak_decay,
    times_to_brownout,
)
from repro.vec.state import FleetState

__all__ = [
    "ALL_BANKS_MODE",
    "DEFAULT_LOAD_POWER",
    "FIXED_BANK_MODE",
    "FleetKernel",
    "FleetState",
    "ScalarFleet",
    "active_bank_spec",
    "atomicity_ops",
    "build_fleet",
    "charge_power_vec",
    "charge_times",
    "check_platform",
    "check_scenario",
    "compile_operating_segments",
    "drain_power_vec",
    "harvester_change_times",
    "ensure_supported",
    "fleet_from_banks",
    "leak_decay",
    "times_to_brownout",
    "vec_capabilities",
]
