"""Automatic task-energy estimation (the paper's future work).

Section 8: "Future work should automate energy capacity estimation for
application tasks".  Because tasks in this reproduction are executable
generators, their energy demand can be *measured* instead of hand-
estimated: :func:`measure_task` dry-runs a task body against a sensor
binding on unconstrained power, records every operation as a
:class:`~repro.device.board.LoadPoint`, and totals the energy drawn
from storage through the board's output booster.

:func:`estimate_modes` lifts this to a whole task graph: each energy
mode's requirement is the worst storage energy over the tasks annotated
with it (burst modes take the burst task's demand; preburst annotations
contribute their exec-mode demand).  The result feeds straight into
:func:`repro.core.allocation.allocate_banks`, closing the loop from
*code* to *capacitor bank recipe* with no hand measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.allocation import ModeRequirement
from repro.device.board import Board, LoadPoint
from repro.errors import ProvisioningError, TaskGraphError
from repro.kernel.annotations import (
    BurstAnnotation,
    ConfigAnnotation,
    PreburstAnnotation,
)
from repro.kernel.executor import SensorBinding
from repro.kernel.memory import NonVolatileStore
from repro.kernel.tasks import (
    Compute,
    Sample,
    Sleep,
    Task,
    TaskContext,
    TaskGraph,
    Transmit,
)


@dataclass
class TaskMeasurement:
    """Measured energy demand of one task execution path.

    Attributes:
        task: task name.
        loads: the operation sequence as load points.
        rail_energy: energy delivered at the regulated rail, joules.
        storage_energy: energy drawn from storage (booster losses and
            quiescent overheads included), joules.
        duration: active time of the path, seconds.
        next_task: where the measured path transferred control.
    """

    task: str
    loads: List[LoadPoint] = field(default_factory=list)
    rail_energy: float = 0.0
    storage_energy: float = 0.0
    duration: float = 0.0
    next_task: Optional[str] = None


def measure_task(
    board: Board,
    task: Task,
    binding: SensorBinding,
    channels: Optional[Dict[str, Any]] = None,
    max_operations: int = 10_000,
) -> TaskMeasurement:
    """Dry-run *task* once and measure its energy demand.

    The task body executes against *binding* with channel state seeded
    from *channels* — control flow follows whatever path those inputs
    select, exactly as the paper's "measure task energy consumption on
    continuous power" procedure would.

    Args:
        board: supplies the electrical cost of each operation.
        task: the task to measure.
        binding: sensor readings for ``Sample`` operations (time 0-based).
        channels: initial committed channel values (e.g. a trigger flag
            that steers the task down its expensive branch).
        max_operations: guard against non-terminating bodies.

    Raises:
        ProvisioningError: if the body exceeds *max_operations*.
    """
    nv = NonVolatileStore()
    for key, value in (channels or {}).items():
        nv.put(key, value)
    measurement = TaskMeasurement(task=task.name)
    clock = {"now": 0.0}
    context = TaskContext(nv, now=lambda: clock["now"])
    generator = task.body(context)
    to_send: Any = None
    for _ in range(max_operations):
        try:
            operation = generator.send(to_send)
        except StopIteration as stop:
            measurement.next_task = stop.value
            break
        if isinstance(operation, Compute):
            load = board.compute_load(operation.ops)
            to_send = None
        elif isinstance(operation, Sample):
            load = board.sense_load(operation.sensor, operation.samples)
            to_send = binding(operation.sensor, clock["now"] + load.duration)
        elif isinstance(operation, Transmit):
            load = board.transmit_load(operation.size_bytes)
            to_send = True
        elif isinstance(operation, Sleep):
            load = board.sleep_load(operation.duration)
            to_send = None
        else:
            raise TaskGraphError(
                f"task {task.name!r} yielded unknown operation {operation!r}"
            )
        measurement.loads.append(load)
        clock["now"] += load.duration
    else:
        raise ProvisioningError(
            f"task {task.name!r} did not finish within {max_operations} "
            "operations; seed its channels to select a terminating path"
        )
    measurement.duration = clock["now"]
    measurement.rail_energy = board.load_energy(measurement.loads)
    measurement.storage_energy = board.storage_energy_estimate(measurement.loads)
    return measurement


def estimate_modes(
    board: Board,
    graph: TaskGraph,
    binding: SensorBinding,
    channel_presets: Optional[Dict[str, Dict[str, Any]]] = None,
    boot_overhead: bool = True,
) -> List[ModeRequirement]:
    """Measure every task and aggregate per energy mode.

    Args:
        board: the hardware platform.
        graph: the application.
        binding: sensor readings for the dry runs.
        channel_presets: per-task channel seeds (``{task: {chan: val}}``)
            to steer each task down its *worst-case* (most expensive)
            path; tasks without presets run on empty channels.
        boot_overhead: include one cold boot per task (a mode must fund
            the boot that precedes its task).

    Returns:
        One :class:`ModeRequirement` per mode named by any annotation,
        sized at the maximum storage energy over its tasks.  Modes used
        by ``config`` annotations on loop-like tasks are marked
        ``frequent`` so the allocator keeps fragile parts out of them.
    """
    presets = channel_presets or {}
    demand: Dict[str, float] = {}
    frequent: Dict[str, bool] = {}
    boot_energy = (
        board.storage_energy_estimate([board.boot_load()]) if boot_overhead else 0.0
    )
    for name in graph.task_names:
        task = graph.task(name)
        annotation = task.annotation
        if isinstance(annotation, ConfigAnnotation):
            mode_names = [annotation.mode]
            is_frequent = True
        elif isinstance(annotation, BurstAnnotation):
            mode_names = [annotation.mode]
            is_frequent = False
        elif isinstance(annotation, PreburstAnnotation):
            # The preburst task itself runs in its exec mode.
            mode_names = [annotation.exec_mode]
            is_frequent = True
        else:
            continue
        measurement = measure_task(board, task, binding, presets.get(name))
        energy = measurement.storage_energy + boot_energy
        for mode_name in mode_names:
            demand[mode_name] = max(demand.get(mode_name, 0.0), energy)
            frequent[mode_name] = frequent.get(mode_name, False) or is_frequent
    if not demand:
        raise ProvisioningError("graph has no annotated tasks to estimate")
    return [
        ModeRequirement(name, energy, frequent=frequent[name])
        for name, energy in sorted(demand.items(), key=lambda item: item[1])
    ]
