"""A complete Vtop-threshold power system (the DEBS-style alternative).

Section 5.2 describes — and rejects for Capybara — reconfiguring energy
capacity by changing the voltage ``V_top`` to which one fixed capacitor
array charges, via a non-volatile EEPROM potentiometer and a voltage
supervisor (the mechanism DEBS uses).  This module makes that
alternative *runnable* end to end, so the two mechanisms can be compared
on real applications (:mod:`repro.experiments.debs_comparison`):

* :class:`ThresholdRuntime` duck-types the Capybara runtime: a
  ``config(mode)`` annotation programs the potentiometer to the mode's
  threshold (one EEPROM write, counted against the part's endurance)
  and charges to it.  ``burst``/``preburst`` degrade exactly as in
  Capy-R — a single capacitor bank has nothing to pre-charge apart, so
  on-demand energy is charged on the critical path.
* :func:`build_threshold_system` assembles the single full-size bank,
  the reconfigurator, and a power system whose charge target follows
  the potentiometer.

The paper's verdict shows up measurably: cold start is slowest of all
mechanisms (the full capacitance must pass the output booster minimum
before any energy is usable), every mode change burns an EEPROM write,
and reactive bursts pay their charge latency on-demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.builder import PlatformSpec
from repro.core.powersystem import CapybaraPowerSystem
from repro.energy.bank import BankSpec
from repro.energy.booster import InputBooster
from repro.energy.reservoir import ReconfigurableReservoir
from repro.energy.threshold import ThresholdReconfigurator
from repro.errors import ConfigurationError, EnergyModeError
from repro.kernel.annotations import (
    BurstAnnotation,
    ConfigAnnotation,
    NoAnnotation,
    PreburstAnnotation,
)
from repro.kernel.capybara import Charge, PlanStep
from repro.kernel.memory import NonVolatileStore
from repro.kernel.tasks import Task


class ThresholdRuntime:
    """DEBS-style runtime: energy modes are charge thresholds.

    Duck-types :class:`~repro.kernel.capybara.CapybaraRuntime` for the
    intermittent executor: plans contain only
    :class:`~repro.kernel.capybara.Charge` steps (there are no switches
    to toggle); the EEPROM potentiometer write happens inside planning,
    while the device is powered.
    """

    def __init__(
        self,
        reconfigurator: ThresholdReconfigurator,
        mode_thresholds: Dict[str, float],
        nv: NonVolatileStore,
    ) -> None:
        if not mode_thresholds:
            raise ConfigurationError("mode_thresholds must not be empty")
        for mode, v_top in mode_thresholds.items():
            if not (
                reconfigurator.v_top_min
                <= v_top
                <= reconfigurator.bank_spec.rated_voltage
            ):
                raise ConfigurationError(
                    f"mode {mode!r} threshold {v_top} outside the "
                    "potentiometer's settable range"
                )
        self.reconfigurator = reconfigurator
        self.mode_thresholds = dict(mode_thresholds)
        self.nv = nv

    # ------------------------------------------------------------------
    # CapybaraRuntime interface
    # ------------------------------------------------------------------

    def plan_for_task(self, task: Task, time: float) -> List[PlanStep]:
        annotation = task.annotation
        if isinstance(annotation, NoAnnotation):
            return []
        if isinstance(annotation, ConfigAnnotation):
            mode = annotation.mode
        elif isinstance(annotation, BurstAnnotation):
            # No second bank exists to pre-charge: on-demand, like Capy-R.
            mode = annotation.mode
        elif isinstance(annotation, PreburstAnnotation):
            mode = annotation.exec_mode
        else:
            raise EnergyModeError(
                f"task {task.name!r} has unknown annotation {annotation!r}"
            )
        if mode not in self.mode_thresholds:
            raise EnergyModeError(f"unknown threshold mode {mode!r}")
        target = self.mode_thresholds[mode]
        if abs(self.reconfigurator.v_top - target) < 1e-9:
            return []
        # Program the potentiometer now (one EEPROM write; may raise
        # WearLimitExceeded once the part is exhausted — the lifetime
        # bound the paper holds against this design).
        self.reconfigurator.set_v_top(target)
        return [Charge(reason=f"threshold:{mode}")]

    def note_task_complete(self, task: Task) -> None:
        """No burst bookkeeping: a single bank has no pre-charge."""

    def note_reconfigured(self, config) -> None:  # pragma: no cover - unused
        """No switches exist; nothing to believe about."""

    def note_power_failure(self) -> None:
        """The potentiometer is EEPROM: nothing reverts, nothing to
        suspect."""

    @property
    def eeprom_writes(self) -> int:
        """EEPROM writes consumed so far (lifetime accounting)."""
        return self.reconfigurator.writes


@dataclass
class ThresholdAssembly:
    """An assembled threshold-controlled system."""

    power_system: CapybaraPowerSystem
    runtime: ThresholdRuntime
    reconfigurator: ThresholdReconfigurator
    nv: NonVolatileStore


def build_threshold_system(
    spec: PlatformSpec,
    mode_thresholds: Optional[Dict[str, float]] = None,
    v_floor: float = 0.8,
) -> ThresholdAssembly:
    """Assemble the DEBS-style system for a platform spec.

    The single capacitor array is the platform's ``fixed_bank`` (the
    worst-case-provisioned array).  Each mode's threshold defaults to
    the voltage at which the array stores the same energy the mode's
    Capybara bank set would hold between the charge target and
    *v_floor* — i.e. energy-equivalent modes, different mechanism.
    """
    array: BankSpec = spec.fixed_bank
    reconfigurator = ThresholdReconfigurator(bank_spec=array)
    # The charger cannot regulate above its own output target, so no
    # threshold may exceed it — charging toward a higher supervisor
    # setpoint would never terminate.
    charger = spec.input_booster if spec.input_booster is not None else InputBooster()
    v_ceiling = min(charger.v_charge_target, array.rated_voltage)

    if mode_thresholds is None:
        mode_thresholds = {}
        by_name = {bank.name: bank for bank in spec.banks}
        for mode, bank_names in spec.modes.items():
            hardwired = spec.banks[0].name
            names = set(bank_names) | {hardwired}
            mode_c = sum(by_name[name].capacitance for name in names)
            energy = 0.5 * mode_c * (v_ceiling**2 - v_floor**2)
            v_top = (2.0 * energy / array.capacitance + v_floor**2) ** 0.5
            v_top = min(max(v_top, reconfigurator.v_top_min), v_ceiling)
            mode_thresholds[mode] = v_top
    else:
        excessive = {
            mode: v_top
            for mode, v_top in mode_thresholds.items()
            if v_top > v_ceiling + 1e-9
        }
        if excessive:
            raise ConfigurationError(
                f"thresholds above the charger ceiling {v_ceiling} V would "
                f"never terminate charging: {excessive}"
            )

    reservoir = ReconfigurableReservoir()
    reservoir.add_bank(array)
    power_system = CapybaraPowerSystem(
        harvester=spec.harvester,
        reservoir=reservoir,
        limiter=spec.limiter,
        input_booster=spec.input_booster,
        output_booster=spec.output_booster,
        quiescent_power=spec.quiescent_power,
    )
    nv = NonVolatileStore()
    runtime = ThresholdRuntime(reconfigurator, mode_thresholds, nv)
    # The supervisor terminates charging at the programmed threshold.
    power_system.charge_target_source = lambda: reconfigurator.v_top
    # Start at the smallest mode's threshold so cold start is as kind to
    # this design as possible.
    reconfigurator.set_v_top(min(mode_thresholds.values()))
    return ThresholdAssembly(
        power_system=power_system,
        runtime=runtime,
        reconfigurator=reconfigurator,
        nv=nv,
    )
