"""Wear accounting and the cache-inspired bank dedication policy.

Section 5.2: "Taking inspiration from the concept of caching, dense but
fragile capacitors can be dedicated to a bank and used only when
another bank with less dense but more robust capacitors is
insufficient" — and a side benefit of the C-control mechanism is its
"natural wear leveling for capacitors with limited charge-discharge
cycles (e.g. EDLC supercapacitors)".

This module provides the observability half of that story: per-bank,
per-part-group wear reports against rated cycle endurance, lifetime
projections from observed cycling rates, and a policy check that flags
allocations where fragile parts sit in frequently-cycled banks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.energy.reservoir import ReconfigurableReservoir
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GroupWear:
    """Wear state of one part group inside one bank.

    Attributes:
        bank: bank name.
        part: part name.
        technology: capacitor technology.
        cycles: equivalent full cycles accumulated.
        endurance: rated cycle endurance (``inf`` for ceramics).
        remaining_fraction: share of rated life left, in [0, 1]
            (1.0 for unlimited-endurance parts).
    """

    bank: str
    part: str
    technology: str
    cycles: float
    endurance: float
    remaining_fraction: float


def wear_report(reservoir: ReconfigurableReservoir) -> List[GroupWear]:
    """Per-group wear across all banks of a reservoir."""
    report: List[GroupWear] = []
    for bank_name in reservoir.bank_names:
        bank = reservoir.bank(bank_name)
        for spec, _count in bank.spec.groups:
            cycles = bank.group_cycles(spec.name)
            if math.isfinite(spec.cycle_endurance):
                remaining = max(0.0, 1.0 - cycles / spec.cycle_endurance)
            else:
                remaining = 1.0
            report.append(
                GroupWear(
                    bank=bank_name,
                    part=spec.name,
                    technology=spec.technology,
                    cycles=cycles,
                    endurance=spec.cycle_endurance,
                    remaining_fraction=remaining,
                )
            )
    return report


def most_worn(reservoir: ReconfigurableReservoir) -> Optional[GroupWear]:
    """The part group closest to wear-out, or ``None`` if every part has
    unlimited endurance."""
    finite = [
        entry
        for entry in wear_report(reservoir)
        if math.isfinite(entry.endurance)
    ]
    if not finite:
        return None
    return min(finite, key=lambda entry: entry.remaining_fraction)


def projected_lifetime(
    reservoir: ReconfigurableReservoir, observed_duration: float
) -> float:
    """Seconds until the most-worn part exhausts its endurance, assuming
    the cycling rate observed over *observed_duration* continues.

    Returns ``inf`` when nothing wears (ceramic/tantalum-only designs,
    or no cycling observed yet).
    """
    if observed_duration <= 0.0:
        raise ConfigurationError("observed_duration must be positive")
    worst = most_worn(reservoir)
    if worst is None or worst.cycles <= 0.0:
        return math.inf
    rate = worst.cycles / observed_duration  # cycles per second
    remaining_cycles = worst.endurance - worst.cycles
    if remaining_cycles <= 0.0:
        return 0.0
    return remaining_cycles / rate


def fragile_banks(reservoir: ReconfigurableReservoir) -> List[str]:
    """Banks containing finite-endurance (fragile) parts."""
    names: List[str] = []
    for bank_name in reservoir.bank_names:
        bank = reservoir.bank(bank_name)
        if any(
            math.isfinite(spec.cycle_endurance) for spec, _ in bank.spec.groups
        ):
            names.append(bank_name)
    return names


def check_dedication_policy(
    reservoir: ReconfigurableReservoir,
    cycle_counts: Dict[str, int],
) -> List[str]:
    """Validate the Section 5.2 dedication policy against usage.

    Args:
        reservoir: the bank array.
        cycle_counts: observed activation counts per bank (e.g. how many
            charge cycles each bank participated in).

    Returns:
        Warnings for fragile banks that cycle more often than some
        robust bank — the anti-pattern the policy exists to avoid.
        Empty when the dedication policy holds.
    """
    fragile = set(fragile_banks(reservoir))
    robust = [name for name in reservoir.bank_names if name not in fragile]
    if not fragile or not robust:
        return []
    max_robust = max((cycle_counts.get(name, 0) for name in robust), default=0)
    warnings: List[str] = []
    for name in sorted(fragile):
        count = cycle_counts.get(name, 0)
        if count > max_robust:
            warnings.append(
                f"fragile bank {name!r} cycled {count} times, more than any "
                f"robust bank (max {max_robust}); dedicate it to rarer "
                "high-energy modes"
            )
    return warnings
