"""Capacitor-to-bank allocation (the paper's stated future work).

Section 8: "Future work should ... find an allocation of capacitors to
banks for a set of task energy requirements."  This module implements
that allocation.

The key structural insight is that Capybara modes activate *sets* of
banks, so banks can telescope: if modes are ordered by energy
requirement, each bank only needs to cover the *increment* over the
previous mode, and mode *k* activates banks ``1..k``.  The allocator:

1. sorts modes by required storage energy;
2. sizes each bank's incremental capacitance analytically;
3. fills each increment from a parts menu, preferring low-ESR parts for
   small (frequently cycled) banks and dense EDLC parts for large,
   rarely cycled banks — the wear-leveling "caching" idea of
   Section 5.2;
4. verifies the resulting cumulative banks against their modes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ProvisioningError
from repro.core.provisioning import analytic_capacitance
from repro.energy.bank import BankSpec
from repro.energy.capacitor import CapacitorSpec


@dataclass(frozen=True)
class ModeRequirement:
    """A mode's energy demand, as measured at provisioning time.

    Attributes:
        name: the energy mode name.
        storage_energy: energy drawn from storage by the mode's worst
            task, joules.
        frequent: whether the mode cycles often (sense loops) — steers
            fragile EDLC parts away from it.
    """

    name: str
    storage_energy: float
    frequent: bool = False

    def __post_init__(self) -> None:
        if self.storage_energy <= 0.0:
            raise ProvisioningError(
                f"mode {self.name!r}: storage_energy must be positive"
            )


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of :func:`allocate_banks`.

    Attributes:
        banks: bank specs, ordered small to large; ``banks[0]`` is the
            default (hardwired) bank.
        mode_banks: mode name -> bank names the mode activates.
        total_volume: capacitor volume of the allocation, m^3.
    """

    banks: List[BankSpec]
    mode_banks: Dict[str, List[str]]
    total_volume: float


def _fill_capacitance(
    target: float,
    menu: Sequence[CapacitorSpec],
    prefer_dense: bool,
) -> List[Tuple[CapacitorSpec, int]]:
    """Pick parts totalling at least *target* farads from *menu*.

    Greedy by descending unit capacitance (dense first) or ascending ESR
    (robust first), topping off with the smallest part.
    """
    if target <= 0.0:
        raise ProvisioningError("target capacitance must be positive")
    if prefer_dense:
        ordered = sorted(
            menu, key=lambda part: part.effective_capacitance, reverse=True
        )
    else:
        ordered = sorted(menu, key=lambda part: (part.esr, -part.effective_capacitance))
    picks: dict = {}
    remaining = target
    for part in ordered:
        unit = part.effective_capacitance
        count = int(remaining // unit)
        if count > 0:
            picks[part] = picks.get(part, 0) + count
            remaining -= count * unit
        if remaining <= 0.0:
            break
    if remaining > 0.0:
        # Top off with the smallest part so a few-uF remainder never
        # drags in a millifarad-class EDLC.
        smallest = min(menu, key=lambda part: part.effective_capacitance)
        picks[smallest] = picks.get(smallest, 0) + max(
            1, math.ceil(remaining / smallest.effective_capacitance)
        )
    return list(picks.items())


def allocate_banks(
    requirements: Sequence[ModeRequirement],
    menu: Sequence[CapacitorSpec],
    v_top: float = 2.4,
    v_floor: float = 0.8,
    derating_margin: float = 1.25,
    min_default_capacitance: float = 100e-6,
) -> AllocationResult:
    """Allocate a capacitor inventory into telescoping banks.

    Args:
        requirements: per-mode energy demands.
        menu: capacitor part types available to the designer.
        v_top: charge target voltage.
        v_floor: assumed discharge floor for sizing.
        derating_margin: over-provisioning factor.
        min_default_capacitance: floor on the default bank so the output
            booster can start (Section 6.4: "the small bank is
            over-provisioned ... since the power system requires the
            bank to be no smaller than that needed by the output booster
            to start up").

    Returns:
        :class:`AllocationResult` mapping each mode to its bank set.

    Raises:
        ProvisioningError: on empty inputs or unsatisfiable demands.
    """
    if not requirements:
        raise ProvisioningError("no mode requirements given")
    if not menu:
        raise ProvisioningError("empty capacitor menu")

    ordered = sorted(requirements, key=lambda req: req.storage_energy)
    banks: List[BankSpec] = []
    mode_banks: Dict[str, List[str]] = {}
    cumulative_capacitance = 0.0

    for index, requirement in enumerate(ordered):
        needed = analytic_capacitance(
            requirement.storage_energy, v_top, v_floor, derating_margin
        )
        if index == 0:
            needed = max(needed, min_default_capacitance)
        increment = needed - cumulative_capacitance
        if increment > 0.0:
            # Small, frequently-cycled increments get robust parts;
            # large, rare increments get dense parts (EDLC "cache").
            prefer_dense = not requirement.frequent and index > 0
            groups = _fill_capacitance(increment, menu, prefer_dense)
            bank_name = f"bank{len(banks)}" if banks else "default"
            bank = BankSpec.of_parts(bank_name, groups)
            banks.append(bank)
            cumulative_capacitance += bank.capacitance
        mode_banks[requirement.name] = [bank.name for bank in banks]

    total_volume = sum(bank.volume for bank in banks)
    return AllocationResult(
        banks=banks, mode_banks=mode_banks, total_volume=total_volume
    )


def allocation_summary(result: AllocationResult) -> str:
    """Human-readable allocation table (examples and docs helper)."""
    lines = ["Bank allocation:"]
    for bank in result.banks:
        lines.append(
            f"  {bank.describe()}  "
            f"({bank.capacitance * 1e6:.0f} uF, "
            f"{bank.volume * 1e9:.0f} mm^3)"
        )
    lines.append("Mode -> banks:")
    for mode, bank_names in result.mode_banks.items():
        lines.append(f"  {mode}: {', '.join(bank_names)}")
    lines.append(f"Total volume: {result.total_volume * 1e9:.0f} mm^3")
    return "\n".join(lines)
