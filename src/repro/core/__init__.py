"""The paper's primary contribution, assembled.

:mod:`repro.core.modes` defines the energy-mode abstraction (the
declarative identifier a task is annotated with); :mod:`repro.core.powersystem`
assembles harvester, limiter, boosters and the reconfigurable reservoir
into the Capybara power system; :mod:`repro.core.provisioning` automates
the paper's Section 6.1 capacity-provisioning procedure;
:mod:`repro.core.allocation` implements the paper's future-work
capacitor-to-bank allocation; :mod:`repro.core.builder` provides
ready-made Fixed / Capy-R / Capy-P system builders.
"""

from repro.core.modes import EnergyMode, ModeRegistry
from repro.core.powersystem import CapybaraPowerSystem, PowerSystem
from repro.core.builder import (
    build_capybara_system,
    build_fixed_system,
    SystemBuilder,
    SystemKind,
)
from repro.core.allocation import ModeRequirement, allocate_banks
from repro.core.estimation import estimate_modes, measure_task
from repro.core.threshold_system import ThresholdRuntime, build_threshold_system
from repro.core.wear import wear_report

__all__ = [
    "EnergyMode",
    "ModeRegistry",
    "CapybaraPowerSystem",
    "PowerSystem",
    "build_capybara_system",
    "build_fixed_system",
    "SystemBuilder",
    "SystemKind",
    "ModeRequirement",
    "allocate_banks",
    "estimate_modes",
    "measure_task",
    "wear_report",
    "ThresholdRuntime",
    "build_threshold_system",
]
