"""The assembled Capybara power system (Figure 6a).

:class:`CapybaraPowerSystem` wires a harvester through the input voltage
limiter and input booster into the reconfigurable reservoir, and out
through the output booster to the load.  It provides the integration
primitives the intermittent executor is built on:

* :meth:`charge` — accumulate harvested energy into the active bank set
  (honouring cold start, bypass, leakage, and trace changes);
* :meth:`discharge` — run a load from the active set until done or
  brownout;
* :meth:`charge_bank_directly` — charge a *specific* bank set (used for
  pre-charging burst banks while they are about to be disconnected).

All methods take the current simulation time explicitly; the power
system holds no clock of its own.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.errors import ConfigurationError, PowerSystemError
from repro.energy.booster import InputBooster, OutputBooster
from repro.energy.harvester import Harvester
from repro.energy.limiter import InputVoltageLimiter
from repro.energy.reservoir import ReconfigurableReservoir
from repro.observability.telemetry import Telemetry, resolve_telemetry


@dataclass
class ChargeResult:
    """Outcome of a :meth:`CapybaraPowerSystem.charge` call."""

    elapsed: float
    reached_target: bool
    energy_stored: float


@dataclass
class DischargeResult:
    """Outcome of a :meth:`CapybaraPowerSystem.discharge` call."""

    elapsed: float
    browned_out: bool
    energy_delivered: float


class CapybaraPowerSystem:
    """Harvester + limiter + boosters + reconfigurable reservoir.

    Attributes:
        harvester: the environmental energy source.
        reservoir: the bank array.
        limiter: input voltage limiter.
        input_booster: harvester-side converter.
        output_booster: load-side converter.
        quiescent_power: standing draw of the power system itself while
            the device operates (supervisors, switch leakage); this is
            the overhead that discharges a large bank even when the MCU
            sleeps between samples (Section 6.4).
    """

    #: Re-evaluate the harvester trace at least this often while
    #: charging, so step traces (orbit eclipses, adversarial profiles)
    #: are tracked without the executor scheduling extra events.
    CHARGE_REEVALUATION_INTERVAL = 10.0
    #: Polling interval while the harvester is producing nothing.
    DARK_POLL_INTERVAL = 5.0

    def __init__(
        self,
        harvester: Harvester,
        reservoir: ReconfigurableReservoir,
        limiter: Optional[InputVoltageLimiter] = None,
        input_booster: Optional[InputBooster] = None,
        output_booster: Optional[OutputBooster] = None,
        quiescent_power: float = 2e-6,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if quiescent_power < 0.0:
            raise ConfigurationError("quiescent_power must be non-negative")
        self.telemetry = resolve_telemetry(telemetry)
        self.harvester = harvester
        self.reservoir = reservoir
        self.limiter = limiter or InputVoltageLimiter()
        self.input_booster = input_booster or InputBooster()
        self.output_booster = output_booster or OutputBooster()
        self.quiescent_power = quiescent_power
        #: Optional dynamic charge-termination source (volts).  The
        #: Vtop-threshold reconfiguration mechanism (Section 5.2's
        #: design alternative) points this at its non-volatile digital
        #: potentiometer; ``None`` keeps the input booster's fixed
        #: regulation target.
        self.charge_target_source: Optional[Callable[[], float]] = None

    # ------------------------------------------------------------------
    # Operating-point queries
    # ------------------------------------------------------------------

    def harvest_point(self, time: float) -> Tuple[float, float]:
        """Limited ``(voltage, power)`` available from the harvester."""
        voltage, power = self.harvester.output(time)
        return self.limiter.limit(voltage, power)

    def charge_power(self, time: float) -> float:
        """Net power flowing into the active set right now, watts.

        Charging power from the input booster minus the active set's own
        leak and the system quiescent draw (the supervisor still sips
        while charging, which raises the minimum harvestable power —
        Section 5.2's monitoring-overhead observation).
        """
        v_cap = self.reservoir.active_voltage(time)
        hv, hp = self.harvest_point(time)
        into_cap = self.input_booster.charge_power(v_cap, hv, hp)
        if into_cap <= 0.0:
            return 0.0
        return into_cap - self.quiescent_power

    def charge_target_voltage(self, time: float) -> float:
        """Voltage the charger will take the active set to, volts."""
        ceiling = (
            self.charge_target_source()
            if self.charge_target_source is not None
            else self.input_booster.v_charge_target
        )
        return min(ceiling, self.reservoir.active_rated_voltage(time))

    def is_charged(self, time: float) -> bool:
        """Whether the active set has reached the charge target."""
        return (
            self.reservoir.active_voltage(time)
            >= self.charge_target_voltage(time) - 1e-9
        )

    def can_deliver(self, time: float, load_power: float) -> bool:
        """Whether the active set can presently power *load_power*."""
        floor = self.output_booster.min_bank_voltage(
            self.reservoir.active_esr(time), load_power + self.quiescent_power
        )
        return self.reservoir.active_voltage(time) > floor

    def discharge_floor(self, time: float, load_power: float) -> float:
        """Active-set voltage at which *load_power* browns out, volts."""
        return self.output_booster.min_bank_voltage(
            self.reservoir.active_esr(time), load_power + self.quiescent_power
        )

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------

    def charge(
        self,
        time: float,
        max_duration: float,
        target_voltage: Optional[float] = None,
    ) -> ChargeResult:
        """Charge the active set toward *target_voltage*.

        Integrates charging in segments, re-evaluating the harvester
        trace periodically; applies leakage to dormant banks throughout
        (pre-charged burst banks decay while the small bank charges).

        Args:
            time: simulation time at the start of the call.
            max_duration: give up after this long (may be ``inf``).
            target_voltage: stop when the active set reaches this; the
                default is the charge target (full buffer).

        Returns:
            :class:`ChargeResult` with the time spent and whether the
            target was reached.
        """
        result = self._charge(time, max_duration, target_voltage)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.inc("power.charge_calls")
            telemetry.inc("power.energy_stored_j", result.energy_stored)
            if result.elapsed > 0.0:
                telemetry.observe("power.charge_seconds", result.elapsed)
                telemetry.span(
                    time,
                    time + result.elapsed,
                    "power",
                    "charge",
                    stored_j=result.energy_stored,
                    reached=result.reached_target,
                )
        return result

    def _charge(
        self,
        time: float,
        max_duration: float,
        target_voltage: Optional[float],
    ) -> ChargeResult:
        if max_duration < 0.0:
            raise PowerSystemError("max_duration must be non-negative")
        target = (
            self.charge_target_voltage(time)
            if target_voltage is None
            else target_voltage
        )
        elapsed = 0.0
        stored = 0.0
        while elapsed < max_duration:
            now = time + elapsed
            voltage = self.reservoir.active_voltage(now)
            if voltage >= target - 1e-9:
                return ChargeResult(elapsed, True, stored)
            power = self.charge_power(now)
            if power <= 0.0:
                step = min(self.DARK_POLL_INTERVAL, max_duration - elapsed)
                self.reservoir.leak_all(step, now)
                elapsed += step
                continue
            # Charging paths change at the cold-start and bypass knees;
            # stop each segment at the nearest knee, the target, the
            # trace-reevaluation horizon, or the deadline.
            hv, _ = self.harvest_point(now)
            knees = [
                v
                for v in (
                    self.input_booster.v_cold_start,
                    self.input_booster.bypass_ceiling(hv),
                )
                if v > voltage + 1e-9
            ]
            # Also bound the voltage rise per segment so the efficiency
            # ramp (which varies with capacitor voltage) is tracked.
            v_stop = min([target, voltage + 0.2] + knees)
            c_active = self.reservoir.active_capacitance(now)
            seg_energy = 0.5 * c_active * (v_stop * v_stop - voltage * voltage)
            seg_time = seg_energy / power
            seg_time = min(
                seg_time,
                self.CHARGE_REEVALUATION_INTERVAL,
                max_duration - elapsed,
            )
            seg_energy = power * seg_time
            absorbed = self.reservoir.store(seg_energy, now)
            stored += absorbed
            self.reservoir.leak_all(seg_time, now)
            self.reservoir.replenish_switches(now + seg_time)
            elapsed += seg_time
            if seg_time <= 0.0:  # pragma: no cover - defensive
                raise PowerSystemError("charge made no progress")
        reached = self.reservoir.active_voltage(time + elapsed) >= target - 1e-9
        return ChargeResult(elapsed, reached, stored)

    def time_to_charge_estimate(
        self, time: float, target_voltage: Optional[float] = None
    ) -> float:
        """Estimate seconds to reach *target_voltage* at the current
        harvester operating point (does not mutate state).

        Returns ``inf`` when the harvester cannot charge at all.
        """
        target = (
            self.charge_target_voltage(time)
            if target_voltage is None
            else target_voltage
        )
        voltage = self.reservoir.active_voltage(time)
        if voltage >= target:
            return 0.0
        power = self.charge_power(time)
        if power <= 0.0:
            return math.inf
        c_active = self.reservoir.active_capacitance(time)
        return 0.5 * c_active * (target * target - voltage * voltage) / power

    # ------------------------------------------------------------------
    # Discharging
    # ------------------------------------------------------------------

    def discharge(
        self,
        time: float,
        load_power: float,
        duration: float,
        voltage_step_fraction: float = 0.02,
    ) -> DischargeResult:
        """Run *load_power* from the active set for up to *duration* s.

        Harvesting during operation is orders of magnitude below the
        load (Section 2) but is still credited; dormant banks leak.

        Returns:
            :class:`DischargeResult`; ``browned_out`` means the active
            set hit the discharge floor before *duration* elapsed.
        """
        result = self._discharge(time, load_power, duration, voltage_step_fraction)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.inc("power.discharge_calls")
            telemetry.inc("power.energy_delivered_j", result.energy_delivered)
            if result.browned_out:
                telemetry.inc("power.brownouts")
                telemetry.event(
                    time + result.elapsed,
                    "power",
                    "brownout",
                    load_w=load_power,
                    voltage=self.reservoir.active_voltage(time + result.elapsed),
                )
        return result

    def _discharge(
        self,
        time: float,
        load_power: float,
        duration: float,
        voltage_step_fraction: float,
    ) -> DischargeResult:
        if duration < 0.0:
            raise PowerSystemError("duration must be non-negative")
        if load_power < 0.0:
            raise PowerSystemError("load_power must be non-negative")
        total_power = load_power + self.quiescent_power
        reservoir = self.reservoir
        booster = self.output_booster
        # Hoist the per-discharge constants: the active set cannot change
        # mid-discharge (reconfiguration happens between tasks, and the
        # device is powered so latches hold), and the harvester operating
        # point is re-read per segment only through the efficiency ramp.
        reservoir.active_voltage(time)  # asserts the equal-voltage invariant
        view = reservoir.active_view(time)
        banks = view.banks
        esr = view.esr
        c_active = view.capacitance
        floor = booster.min_bank_voltage(esr, total_power)
        target = self.charge_target_voltage(time)
        hv, hp = self.harvest_point(time)
        elapsed = 0.0
        delivered = 0.0
        while elapsed < duration:
            now = time + elapsed
            voltage = banks[0].voltage
            # Epsilon guards against floating-point non-progress when the
            # voltage lands exactly on the floor.
            if voltage <= floor + 1e-9:
                self._finish_discharge(elapsed, now)
                return DischargeResult(elapsed, True, delivered)
            drain = booster.drain_power(voltage, esr, total_power)
            into_cap = self.input_booster.charge_power(voltage, hv, hp)
            harvest = into_cap - self.quiescent_power if into_cap > 0.0 else 0.0
            net_drain = drain - max(0.0, harvest)
            if net_drain <= 0.0:
                # Harvester outruns the load (bright light, tiny load):
                # the device runs indefinitely and the surplus recharges
                # the active set toward the charge target.
                step = min(duration - elapsed, self.CHARGE_REEVALUATION_INTERVAL)
                if voltage < target:
                    view.store(-net_drain * step)
                delivered += load_power * step
                elapsed += step
                continue
            dv = max(voltage * voltage_step_fraction, 1e-6)
            v_next = max(floor, voltage - dv)
            seg_energy = 0.5 * c_active * (voltage * voltage - v_next * v_next)
            seg_time = seg_energy / net_drain
            if elapsed + seg_time >= duration:
                seg_time = duration - elapsed
                seg_energy = net_drain * seg_time
            view.extract(seg_energy)
            delivered += load_power * seg_time
            elapsed += seg_time
        self._finish_discharge(elapsed, time + elapsed)
        browned = banks[0].voltage <= floor + 1e-9
        return DischargeResult(elapsed, browned, delivered)

    def _finish_discharge(self, elapsed: float, now: float) -> None:
        """End-of-discharge bookkeeping: leakage over the whole span
        (leak time constants dwarf any discharge) and latch top-up."""
        if elapsed > 0.0:
            self.reservoir.leak_all(elapsed, now)
            self.reservoir.replenish_switches(now)

    def time_to_brownout_estimate(self, time: float, load_power: float) -> float:
        """Seconds the active set can sustain *load_power*, estimated at
        the current operating point without mutating state.
        """
        total_power = load_power + self.quiescent_power
        esr = self.reservoir.active_esr(time)
        voltage = self.reservoir.active_voltage(time)
        floor = self.output_booster.min_bank_voltage(esr, total_power)
        if voltage <= floor:
            return 0.0
        c_active = self.reservoir.active_capacitance(time)
        # Drain power rises as the voltage falls; bound it by its value
        # midway for a serviceable estimate.
        v_mid = 0.5 * (voltage + floor)
        drain = self.output_booster.drain_power(v_mid, esr, total_power)
        energy = 0.5 * c_active * (voltage * voltage - floor * floor)
        return energy / drain


#: Preferred public name for the power system (``from repro import
#: PowerSystem``); ``CapybaraPowerSystem`` remains as the historical
#: alias.
PowerSystem = CapybaraPowerSystem
