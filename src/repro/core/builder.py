"""Convenience builders for the paper's four evaluated systems.

Every experiment in Section 6 runs the same application on four power
systems: continuous power (Pwr), a statically-provisioned fixed bank
(Fixed), and the two Capybara variants (Capy-R, Capy-P).  A
:class:`PlatformSpec` captures what varies per application — the bank
recipes, the mode table, the harvester — and :func:`build_capybara_system`
/ :func:`build_fixed_system` assemble the matching power system and
runtime.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.core.modes import ModeRegistry
from repro.core.powersystem import CapybaraPowerSystem
from repro.energy.bank import BankSpec
from repro.energy.booster import InputBooster, OutputBooster
from repro.energy.harvester import Harvester
from repro.energy.limiter import InputVoltageLimiter
from repro.energy.reservoir import ReconfigurableReservoir
from repro.energy.switch import BankSwitch, SwitchPolarity
from repro.kernel.capybara import CapybaraRuntime, RuntimeVariant
from repro.kernel.memory import NonVolatileStore
from repro.observability.telemetry import Telemetry


class SystemKind(enum.Enum):
    """The four systems of the paper's evaluation."""

    CONTINUOUS = "Pwr"
    FIXED = "Fixed"
    CAPY_R = "CB-R"
    CAPY_P = "CB-P"

    @classmethod
    def from_name(cls, name: "str | SystemKind") -> "SystemKind":
        """Resolve a kind from its value (``"CB-P"``), its enum name
        (``"CAPY_P"``), or a case-insensitive spelling of either."""
        if isinstance(name, cls):
            return name
        for kind in cls:
            if name in (kind.value, kind.name):
                return kind
        folded = str(name).replace("-", "_").casefold()
        for kind in cls:
            if folded in (
                kind.value.replace("-", "_").casefold(),
                kind.name.casefold(),
            ):
                return kind
        raise ConfigurationError(
            f"unknown system kind {name!r}; known: {[kind.value for kind in cls]}"
        )


@dataclass
class PlatformSpec:
    """Everything application-specific about a Capybara platform.

    Attributes:
        banks: reconfigurable bank recipes; ``banks[0]`` is the
            hardwired default bank (always connected, lets the device
            cold-start), the rest sit behind switches.
        modes: energy mode name -> bank names it activates (hardwired
            banks are implicitly included).
        fixed_bank: the single statically-provisioned bank the Fixed
            baseline solders down (typically the union recipe sized for
            the largest atomic task).
        harvester: the input power source.
        switch_polarity: NO or NC default for the bank switches.
        output_booster: override for boards with unusual rails.
        input_booster: override (e.g. no-bypass ablation).
        limiter: input limiter override.
        quiescent_power: power-system standing draw.
    """

    banks: List[BankSpec]
    modes: Dict[str, List[str]]
    fixed_bank: BankSpec
    harvester: Harvester
    switch_polarity: SwitchPolarity = SwitchPolarity.NORMALLY_OPEN
    output_booster: Optional[OutputBooster] = None
    input_booster: Optional[InputBooster] = None
    limiter: Optional[InputVoltageLimiter] = None
    quiescent_power: float = 2e-6

    def __post_init__(self) -> None:
        if not self.banks:
            raise ConfigurationError("platform needs at least one bank")
        if not self.modes:
            raise ConfigurationError("platform needs at least one mode")
        names = {bank.name for bank in self.banks}
        if len(names) != len(self.banks):
            raise ConfigurationError("bank names must be unique")
        for mode, mode_banks in self.modes.items():
            unknown = set(mode_banks) - names
            if unknown:
                raise ConfigurationError(
                    f"mode {mode!r} references unknown banks {sorted(unknown)}"
                )

    def spec_dict(self) -> Dict:
        """This platform as a plain JSON-safe dict (:mod:`repro.spec`
        platform schema).  Raises if a component (e.g. a custom harvester)
        does not support spec extraction."""
        harvester_dict = getattr(self.harvester, "spec_dict", None)
        if harvester_dict is None:
            raise ConfigurationError(
                f"harvester {type(self.harvester).__name__} does not support "
                "spec extraction"
            )
        return {
            "banks": [bank.spec_dict() for bank in self.banks],
            "modes": {mode: list(banks) for mode, banks in self.modes.items()},
            "fixed_bank": self.fixed_bank.spec_dict(),
            "harvester": harvester_dict(),
            "switch_polarity": self.switch_polarity.value,
            "input_booster": (
                None if self.input_booster is None else self.input_booster.spec_dict()
            ),
            "output_booster": (
                None
                if self.output_booster is None
                else self.output_booster.spec_dict()
            ),
            "limiter_v_clamp": (
                None if self.limiter is None else self.limiter.v_clamp
            ),
            "quiescent_power": self.quiescent_power,
        }


@dataclass
class PowerAssembly:
    """An assembled power system + runtime, ready for an executor."""

    kind: SystemKind
    power_system: CapybaraPowerSystem
    runtime: CapybaraRuntime
    modes: ModeRegistry
    nv: NonVolatileStore = field(default_factory=NonVolatileStore)


def build_capybara_system(
    spec: PlatformSpec,
    kind: SystemKind = SystemKind.CAPY_P,
    telemetry: Optional[Telemetry] = None,
) -> PowerAssembly:
    """Assemble a Capybara power system (Capy-P or Capy-R variant).

    The default bank is hardwired; every other bank gets its own
    latch-retained switch with the platform's polarity.
    """
    if kind not in (SystemKind.CAPY_P, SystemKind.CAPY_R):
        raise ConfigurationError(
            f"build_capybara_system builds Capybara variants, not {kind}"
        )
    reservoir = ReconfigurableReservoir(telemetry=telemetry)
    for index, bank in enumerate(spec.banks):
        if index == 0:
            reservoir.add_bank(bank)
        else:
            reservoir.add_bank(
                bank,
                switch=BankSwitch(name=bank.name, polarity=spec.switch_polarity),
            )
    hardwired = set(reservoir.hardwired_names)

    registry = ModeRegistry(reservoir)
    for mode_name, mode_banks in spec.modes.items():
        registry.define(mode_name, hardwired | set(mode_banks))

    power_system = CapybaraPowerSystem(
        harvester=spec.harvester,
        reservoir=reservoir,
        limiter=spec.limiter,
        input_booster=spec.input_booster,
        output_booster=spec.output_booster,
        quiescent_power=spec.quiescent_power,
        telemetry=telemetry,
    )
    nv = NonVolatileStore()
    variant = RuntimeVariant.from_name(kind.value)
    runtime = CapybaraRuntime(
        reservoir, registry, nv, variant=variant, telemetry=telemetry
    )
    return PowerAssembly(
        kind=kind, power_system=power_system, runtime=runtime, modes=registry, nv=nv
    )


def build_fixed_system(
    spec: PlatformSpec,
    telemetry: Optional[Telemetry] = None,
) -> PowerAssembly:
    """Assemble the statically-provisioned Fixed baseline.

    One hardwired bank (the spec's ``fixed_bank``), no switches; the
    runtime ignores all annotations.
    """
    reservoir = ReconfigurableReservoir(telemetry=telemetry)
    reservoir.add_bank(spec.fixed_bank)
    registry = ModeRegistry(reservoir)
    # A single degenerate mode keeps the registry valid for queries.
    registry.define("fixed", [spec.fixed_bank.name])
    power_system = CapybaraPowerSystem(
        harvester=spec.harvester,
        reservoir=reservoir,
        limiter=spec.limiter,
        input_booster=spec.input_booster,
        output_booster=spec.output_booster,
        quiescent_power=spec.quiescent_power,
        telemetry=telemetry,
    )
    nv = NonVolatileStore()
    runtime = CapybaraRuntime(
        reservoir, registry, nv, variant=RuntimeVariant.FIXED, telemetry=telemetry
    )
    return PowerAssembly(
        kind=SystemKind.FIXED,
        power_system=power_system,
        runtime=runtime,
        modes=registry,
        nv=nv,
    )


def build_system(
    spec,
    kind: "str | SystemKind | None" = None,
    telemetry: Optional[Telemetry] = None,
) -> PowerAssembly:
    """Build any of the paper's buffered systems from a platform description.

    *spec* may be a runtime :class:`PlatformSpec` or a declarative
    description from :mod:`repro.spec` (:class:`~repro.spec.PlatformSpecV1`
    or a whole :class:`~repro.spec.ScenarioSpec`).  *kind* accepts the
    enum or any name :meth:`SystemKind.from_name` resolves; when omitted,
    a scenario's declared system applies, else Capy-P.
    """
    platform = spec
    if not isinstance(spec, PlatformSpec):
        # Lazy import: repro.spec depends on this module for rebuilds.
        from repro.spec import build as spec_build

        declared = getattr(spec, "system", None)
        if kind is None and declared is not None:
            kind = declared
        platform = spec_build.platform_from_spec(
            getattr(spec, "platform", spec)
        )
    kind = SystemKind.CAPY_P if kind is None else SystemKind.from_name(kind)
    if kind is SystemKind.CONTINUOUS:
        raise ConfigurationError(
            "the continuous-power baseline has no power system to build; "
            "use ContinuousExecutor directly"
        )
    if kind is SystemKind.FIXED:
        return build_fixed_system(platform, telemetry=telemetry)
    return build_capybara_system(platform, kind, telemetry=telemetry)


class SystemBuilder:
    """Fluent assembly of a :class:`PowerAssembly`.

    The declarative :class:`PlatformSpec` + ``build_*`` functions remain
    the bulk API for experiment sweeps; ``SystemBuilder`` is the curated
    front door for composing one system step by step::

        assembly = (
            SystemBuilder(SystemKind.CAPY_P)
            .bank(small)                      # first bank is hardwired
            .bank(burst)                      # later banks get switches
            .mode("sense", "small")
            .mode("burst", "small", "burst")
            .harvester(rf_harvester)
            .telemetry(tel)                   # optional instrumentation
            .build()
        )

    Every setter returns the builder, and :meth:`build` validates the
    accumulated platform exactly as :class:`PlatformSpec` does.
    """

    def __init__(self, kind: SystemKind = SystemKind.CAPY_P) -> None:
        if kind is SystemKind.CONTINUOUS:
            raise ConfigurationError(
                "the continuous-power baseline has no power system to "
                "build; use ContinuousExecutor directly"
            )
        self._kind = kind
        self._banks: List[BankSpec] = []
        self._modes: Dict[str, List[str]] = {}
        self._fixed_bank: Optional[BankSpec] = None
        self._harvester: Optional[Harvester] = None
        self._switch_polarity = SwitchPolarity.NORMALLY_OPEN
        self._output_booster: Optional[OutputBooster] = None
        self._input_booster: Optional[InputBooster] = None
        self._limiter: Optional[InputVoltageLimiter] = None
        self._quiescent_power = 2e-6
        self._telemetry: Optional[Telemetry] = None

    # -- reservoir -----------------------------------------------------

    def bank(self, spec: BankSpec) -> "SystemBuilder":
        """Add a capacitor bank (the first one added is hardwired)."""
        self._banks.append(spec)
        return self

    def mode(self, name: str, *bank_names: str) -> "SystemBuilder":
        """Define energy mode *name* over the named banks."""
        self._modes[name] = list(bank_names)
        return self

    def fixed_bank(self, spec: BankSpec) -> "SystemBuilder":
        """The single bank the Fixed baseline solders down."""
        self._fixed_bank = spec
        return self

    def switch_polarity(self, polarity: SwitchPolarity) -> "SystemBuilder":
        self._switch_polarity = polarity
        return self

    # -- front-end circuitry -------------------------------------------

    def harvester(self, harvester: Harvester) -> "SystemBuilder":
        self._harvester = harvester
        return self

    def output_booster(self, booster: OutputBooster) -> "SystemBuilder":
        self._output_booster = booster
        return self

    def input_booster(self, booster: InputBooster) -> "SystemBuilder":
        self._input_booster = booster
        return self

    def limiter(self, limiter: InputVoltageLimiter) -> "SystemBuilder":
        self._limiter = limiter
        return self

    def quiescent_power(self, power: float) -> "SystemBuilder":
        self._quiescent_power = power
        return self

    # -- observability -------------------------------------------------

    def telemetry(self, telemetry: Telemetry) -> "SystemBuilder":
        """Report into *telemetry* (otherwise the ambient scope's)."""
        self._telemetry = telemetry
        return self

    # -- assembly ------------------------------------------------------

    def build(self) -> PowerAssembly:
        """Validate and assemble the configured system."""
        if self._harvester is None:
            raise ConfigurationError("SystemBuilder needs a harvester")
        if not self._banks:
            raise ConfigurationError("SystemBuilder needs at least one bank")
        spec = PlatformSpec(
            banks=self._banks,
            modes=self._modes or {"default": [self._banks[0].name]},
            fixed_bank=self._fixed_bank or self._banks[0],
            harvester=self._harvester,
            switch_polarity=self._switch_polarity,
            output_booster=self._output_booster,
            input_booster=self._input_booster,
            limiter=self._limiter,
            quiescent_power=self._quiescent_power,
        )
        if self._kind is SystemKind.FIXED:
            return build_fixed_system(spec, telemetry=self._telemetry)
        return build_capybara_system(spec, self._kind, telemetry=self._telemetry)
