"""Task-energy measurement and capacity provisioning (Sections 3 & 6.1).

The paper sizes each application's banks by "starting with a pessimistic
energy estimate based on load current specified in the datasheets, we
ran the task while progressively increasing the capacity on the board
until the task completed".  This module automates both halves against
the simulator:

* :func:`analytic_capacitance` — the datasheet-style estimate: the
  capacitance that stores a task's energy between the charge target and
  the discharge floor, padded by a derating margin;
* :func:`min_parts_for_loads` — the empirical loop: grow a bank one
  part at a time and *simulate* the task until it completes from a full
  charge;
* :func:`provision_bank` — combine both into a named
  :class:`~repro.energy.bank.BankSpec`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ProvisioningError
from repro.device.board import LoadPoint
from repro.energy.bank import BankSpec, CapacitorBank
from repro.energy.booster import OutputBooster
from repro.energy.capacitor import CapacitorSpec


def analytic_capacitance(
    energy: float,
    v_top: float,
    v_floor: float,
    derating_margin: float = 1.25,
) -> float:
    """Capacitance storing *energy* joules between two voltages, farads.

    Implements ``C = 2 E / (V_top^2 - V_floor^2)`` with the standard
    derating over-provisioning margin (Section 3).
    """
    if energy < 0.0:
        raise ProvisioningError("energy must be non-negative")
    if v_top <= v_floor:
        raise ProvisioningError("v_top must exceed v_floor")
    if derating_margin < 1.0:
        raise ProvisioningError("derating_margin must be >= 1")
    return derating_margin * 2.0 * energy / (v_top * v_top - v_floor * v_floor)


def simulate_loads_on_bank(
    bank_spec: BankSpec,
    loads: Sequence[LoadPoint],
    output_booster: OutputBooster,
    charge_voltage: float,
    quiescent_power: float = 2e-6,
) -> bool:
    """Whether a fully-charged *bank_spec* completes the load sequence.

    The empirical provisioning probe: charge the bank to
    *charge_voltage* and drain the loads through the booster; success
    means no brownout before the last load ends.
    """
    v_start = min(charge_voltage, bank_spec.rated_voltage)
    bank = CapacitorBank(bank_spec, initial_voltage=v_start)
    for load in loads:
        time_ran, browned_out = output_booster.discharge(
            bank, load.power + quiescent_power, load.duration
        )
        if browned_out and time_ran < load.duration:
            return False
    return True


def min_parts_for_loads(
    part: CapacitorSpec,
    loads: Sequence[LoadPoint],
    output_booster: Optional[OutputBooster] = None,
    charge_voltage: float = 2.4,
    max_count: int = 64,
) -> int:
    """Smallest number of *part* capacitors (in parallel) that completes
    *loads* from a full charge.

    Raises:
        ProvisioningError: if even *max_count* parts are insufficient —
            the task cannot be provisioned with this part at all (e.g. a
            single high-ESR supercap under a radio load).
    """
    booster = output_booster or OutputBooster()
    for count in range(1, max_count + 1):
        spec = BankSpec.single(f"probe-{part.name}", part, count)
        if simulate_loads_on_bank(spec, loads, booster, charge_voltage):
            return count
    raise ProvisioningError(
        f"{max_count}x {part.name} cannot complete the load sequence; "
        "choose a denser part or split the task"
    )


def provision_bank(
    name: str,
    loads: Sequence[LoadPoint],
    part: CapacitorSpec,
    output_booster: Optional[OutputBooster] = None,
    charge_voltage: float = 2.4,
    max_count: int = 64,
) -> BankSpec:
    """Provision a named bank of *part* capacitors for a load sequence."""
    count = min_parts_for_loads(
        part, loads, output_booster, charge_voltage, max_count
    )
    return BankSpec.single(name, part, count)


def loads_energy(loads: Sequence[LoadPoint]) -> float:
    """Total rail energy of a load sequence, joules."""
    return sum(load.energy() for load in loads)
