"""Energy modes (Section 4.1).

An *energy mode* is the declarative identifier a programmer attaches to
a task; it names a specific configuration of the hardware reservoir —
"which banks are connected".  The mode abstracts the absolute energy
quantity: software says ``config(MODE_SENSE)``, and the mapping from
mode to capacitance lives in one place, established at provisioning
time.

:class:`ModeRegistry` is that one place: it maps mode names to
:class:`~repro.energy.reservoir.ReservoirConfig` bank sets and validates
them against a reservoir.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.errors import EnergyModeError
from repro.energy.reservoir import ReconfigurableReservoir, ReservoirConfig


@dataclass(frozen=True)
class EnergyMode:
    """A named energy capacity configuration.

    Attributes:
        name: the identifier tasks use in annotations.
        banks: the reservoir banks this mode activates.
        description: optional provisioning note (which task sized it).
    """

    name: str
    banks: FrozenSet[str]
    description: str = ""

    @staticmethod
    def of(name: str, banks: Iterable[str], description: str = "") -> "EnergyMode":
        return EnergyMode(name=name, banks=frozenset(banks), description=description)

    def to_config(self) -> ReservoirConfig:
        """The hardware-layer configuration this mode names."""
        return ReservoirConfig(name=self.name, bank_names=self.banks)


class ModeRegistry:
    """The application's table of energy modes.

    A registry is built once at provisioning time (Section 3: "define
    energy modes and provision hardware only once an application's code
    is stable") and consulted by the runtime on every task transition.
    """

    def __init__(self, reservoir: Optional[ReconfigurableReservoir] = None) -> None:
        self._modes: Dict[str, EnergyMode] = {}
        self._reservoir = reservoir

    def register(self, mode: EnergyMode) -> EnergyMode:
        """Add a mode, validating its banks against the reservoir.

        Raises:
            EnergyModeError: on duplicate names, empty bank sets, or
                banks the reservoir does not have.
        """
        if mode.name in self._modes:
            raise EnergyModeError(f"duplicate energy mode {mode.name!r}")
        if not mode.banks:
            raise EnergyModeError(f"mode {mode.name!r} activates no banks")
        if self._reservoir is not None:
            unknown = set(mode.banks) - set(self._reservoir.bank_names)
            if unknown:
                raise EnergyModeError(
                    f"mode {mode.name!r} references unknown banks "
                    f"{sorted(unknown)}"
                )
            missing = set(self._reservoir.hardwired_names) - set(mode.banks)
            if missing:
                raise EnergyModeError(
                    f"mode {mode.name!r} must include hardwired banks "
                    f"{sorted(missing)}"
                )
        self._modes[mode.name] = mode
        return mode

    def define(
        self, name: str, banks: Iterable[str], description: str = ""
    ) -> EnergyMode:
        """Convenience: build and register a mode in one call."""
        return self.register(EnergyMode.of(name, banks, description))

    def get(self, name: str) -> EnergyMode:
        if name not in self._modes:
            raise EnergyModeError(f"unknown energy mode {name!r}")
        return self._modes[name]

    def __contains__(self, name: str) -> bool:
        return name in self._modes

    @property
    def names(self) -> List[str]:
        return list(self._modes)

    def capacitance_of(self, name: str) -> float:
        """Total capacitance the mode activates, farads.

        Requires the registry to be bound to a reservoir.
        """
        if self._reservoir is None:
            raise EnergyModeError("registry is not bound to a reservoir")
        mode = self.get(name)
        return sum(
            self._reservoir.bank(bank).capacitance for bank in mode.banks
        )
