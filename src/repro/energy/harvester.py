"""Energy harvester models.

A harvester converts an environmental trace into electrical output,
characterised at each instant by an *output voltage* and an *available
power* (the maximum the downstream converter can draw, i.e. the maximum
power point).  The input booster (:mod:`repro.energy.booster`) performs
maximum-power-point extraction, so harvesters report MPP power directly.

Three sources cover the paper's experiments:

* :class:`RegulatedSupply` — the GRC/CSR rig: "a harvester built from a
  voltage regulator and an attenuating resistor that supplies at most
  10 mW" (Section 6.1.1).
* :class:`SolarPanel` — TrisolX-class panels, possibly in series (the
  input limiter motivation of Section 5.1), driven by an irradiance
  trace.
* :class:`RFHarvester` — a Powercast-class RF source: microwatts at low
  voltage; exercises the input booster's weak-input path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError
from repro.energy.environment import FULL_SUN, ConstantTrace, EnvironmentTrace


class Harvester:
    """Interface: electrical output of an environmental energy source."""

    def output(self, time: float) -> Tuple[float, float]:
        """Return ``(voltage, power)`` available at *time*.

        voltage: open-circuit-order output voltage, volts (used for the
            limiter and the cold-start bypass path).
        power: maximum extractable power, watts.
        """
        raise NotImplementedError

    def spec_dict(self) -> dict:
        """This harvester as a plain JSON-safe dict (:mod:`repro.spec`
        harvester schema); concrete sources override."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support spec extraction"
        )


@dataclass
class RegulatedSupply(Harvester):
    """Bench supply behind an attenuating resistor (GRC/CSR rig).

    Supplies a constant voltage and at most *max_power* watts.
    """

    voltage: float = 3.0
    max_power: float = 10e-3

    def __post_init__(self) -> None:
        if self.voltage <= 0.0:
            raise ConfigurationError("voltage must be positive")
        if self.max_power < 0.0:
            raise ConfigurationError("max_power must be non-negative")

    def output(self, time: float) -> Tuple[float, float]:
        return self.voltage, self.max_power

    def spec_dict(self) -> dict:
        return {
            "kind": "regulated",
            "voltage": self.voltage,
            "max_power": self.max_power,
        }


@dataclass
class SolarPanel(Harvester):
    """A small solar panel (or series string) under an irradiance trace.

    Attributes:
        area: active cell area, m^2 (a TrisolX wing is ~2.3 cm^2).
        efficiency: cell conversion efficiency at MPP.
        cells_in_series: panels chained in series; multiplies voltage
            (the Section 5.1 dim-light trick the limiter makes safe).
        voltage_per_panel: MPP voltage of one panel at full sun.
        irradiance: trace of W/m^2 versus time.
    """

    area: float = 2.3e-4
    efficiency: float = 0.18
    cells_in_series: int = 2
    voltage_per_panel: float = 2.7
    irradiance: EnvironmentTrace = field(
        default_factory=lambda: ConstantTrace(FULL_SUN)
    )

    def __post_init__(self) -> None:
        if self.area <= 0.0:
            raise ConfigurationError("area must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        if self.cells_in_series < 1:
            raise ConfigurationError("cells_in_series must be >= 1")
        if self.voltage_per_panel <= 0.0:
            raise ConfigurationError("voltage_per_panel must be positive")

    def output(self, time: float) -> Tuple[float, float]:
        level = self.irradiance(time)
        if level <= 0.0:
            return 0.0, 0.0
        # Series panels add voltage at the same current, so MPP power
        # scales with the string length too.
        power = level * self.area * self.efficiency * self.cells_in_series
        # MPP voltage sags gently in dim light; model as a sqrt roll-off
        # that reaches the full value at full sun.
        dimness = min(1.0, level / FULL_SUN)
        voltage = self.cells_in_series * self.voltage_per_panel * (
            0.6 + 0.4 * dimness ** 0.5
        )
        return voltage, power

    def spec_dict(self) -> dict:
        trace_dict = getattr(self.irradiance, "spec_dict", None)
        if trace_dict is None:
            raise ConfigurationError(
                f"irradiance trace {type(self.irradiance).__name__} does not "
                "support spec extraction"
            )
        return {
            "kind": "solar",
            "area": self.area,
            "efficiency": self.efficiency,
            "cells_in_series": self.cells_in_series,
            "voltage_per_panel": self.voltage_per_panel,
            "irradiance": trace_dict(),
        }


@dataclass
class RFHarvester(Harvester):
    """Far-field RF harvesting (Powercast-class receiver).

    Power falls with distance squared from the transmitter; output
    voltage is low, exercising the input booster's weak-input path.
    """

    transmit_power: float = 3.0
    distance: float = 3.0
    #: Aggregate path gain constant folding antenna gains and rectifier
    #: efficiency; calibrated so 3 W at 3 m yields ~100 uW.
    path_gain: float = 3e-4
    voltage: float = 1.2

    def __post_init__(self) -> None:
        if self.transmit_power < 0.0:
            raise ConfigurationError("transmit_power must be non-negative")
        if self.distance <= 0.0:
            raise ConfigurationError("distance must be positive")
        if self.voltage <= 0.0:
            raise ConfigurationError("voltage must be positive")

    def output(self, time: float) -> Tuple[float, float]:
        power = self.transmit_power * self.path_gain / (self.distance ** 2)
        return self.voltage, power

    def spec_dict(self) -> dict:
        return {
            "kind": "rf",
            "transmit_power": self.transmit_power,
            "distance": self.distance,
            "path_gain": self.path_gain,
            "voltage": self.voltage,
        }


@dataclass
class FaultyHarvester(Harvester):
    """Wrap a harvester, applying a fault injector's output transform.

    The injection point for harvester blackouts and brown-out sags
    (:mod:`repro.faults`): ``output`` defers to the inner source, then
    lets the injector zero or sag the operating point inside its fault
    windows.  Deterministic — the transform is a pure function of
    simulation time, so faulted replays are bit-identical.

    ``spec_dict`` deliberately extracts the *inner* harvester: the fault
    schedule is a separate document with its own hash, not part of the
    platform description.
    """

    inner: Harvester
    injector: object = None

    def __post_init__(self) -> None:
        if self.injector is None:
            raise ConfigurationError("FaultyHarvester needs a fault injector")

    def output(self, time: float) -> Tuple[float, float]:
        voltage, power = self.inner.output(time)
        return self.injector.transform_output(time, voltage, power)

    def spec_dict(self) -> dict:
        return self.inner.spec_dict()


@dataclass
class ScaledHarvester(Harvester):
    """Wrap a harvester, scaling its power (test and sweep helper)."""

    inner: Harvester
    power_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.power_scale < 0.0:
            raise ConfigurationError("power_scale must be non-negative")

    def output(self, time: float) -> Tuple[float, float]:
        voltage, power = self.inner.output(time)
        return voltage, power * self.power_scale

    def spec_dict(self) -> dict:
        return {
            "kind": "scaled",
            "inner": self.inner.spec_dict(),
            "power_scale": self.power_scale,
        }
