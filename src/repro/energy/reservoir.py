"""The reconfigurable energy reservoir (Section 5.2).

A reservoir is Capybara's array of capacitor banks, each individually
connectable through a state-retaining :class:`~repro.energy.switch.BankSwitch`.
Banks without a switch are hardwired (the paper's boards keep a small
default bank always connected so the device can cold-start).

The *active set* — the banks whose switches are effectively closed —
behaves as one parallel capacitor: capacitance adds, ESR combines in
parallel, and all active banks share a terminal voltage.  Connecting a
charged bank to the active set redistributes charge at constant total
charge (``V = sum(C_i V_i) / sum(C_i)``), losing energy irreversibly as
real parallel capacitors do.  Disconnected banks hold their voltage,
minus leakage — the property that makes pre-charged bursts possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import BankConfigurationError, PowerSystemError
from repro.energy.bank import BankSpec, CapacitorBank
from repro.energy.capacitor import parallel_esr
from repro.energy.switch import BankSwitch
from repro.observability.telemetry import Telemetry, resolve_telemetry


@dataclass(frozen=True)
class ReservoirConfig:
    """A named set of banks to activate — the hardware face of an
    energy mode."""

    name: str
    bank_names: FrozenSet[str]

    @staticmethod
    def of(name: str, banks: Iterable[str]) -> "ReservoirConfig":
        return ReservoirConfig(name=name, bank_names=frozenset(banks))


class ReconfigurableReservoir:
    """An array of capacitor banks behind programmable switches.

    The reservoir exposes two layers of API:

    * a *bank* layer (:meth:`bank`, :meth:`configure`) used by the
      Capybara runtime to implement energy modes; and
    * an *aggregate* layer (:meth:`active_voltage`, :meth:`store`,
      :meth:`extract`) used by the boosters and executor, which see the
      active set as a single capacitor.
    """

    def __init__(
        self,
        precharge_voltage_penalty: float = 0.3,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if precharge_voltage_penalty < 0.0:
            raise BankConfigurationError(
                "precharge_voltage_penalty must be non-negative"
            )
        self._banks: Dict[str, CapacitorBank] = {}
        self._switches: Dict[str, BankSwitch] = {}
        # Flat tuple mirror of ``_switches.values()``: the active-set
        # cache validity check sums switch versions on every query, and
        # iterating a tuple is measurably cheaper than a dict view in
        # that hot path.
        self._switch_seq: Tuple[BankSwitch, ...] = ()
        self._order: List[str] = []
        #: The paper's Section 6.4 limitation: a deactivated bank can be
        #: pre-charged only to ~0.3 V below the normal charge target.
        self.precharge_voltage_penalty = precharge_voltage_penalty
        self._reconfigurations = 0
        # Active-set cache: (valid_from, valid_until, switch_version_sum,
        # names, banks, capacitance, esr).  Hot paths query the active
        # set hundreds of thousands of times between reconfigurations.
        self._active_cache: Optional[tuple] = None
        # Optional fault injector (repro.faults): switch stuck-at
        # overrides, ESR/leakage multipliers, and the fault-window
        # boundaries that bound the active-set cache's validity.
        self._fault_injector = None
        # Resolved once; per-joule aggregate paths (store/extract) stay
        # uninstrumented — telemetry records only reconfiguration-rate
        # happenings and losses.
        self.telemetry = resolve_telemetry(telemetry)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_bank(
        self,
        spec: BankSpec,
        switch: Optional[BankSwitch] = None,
        initial_voltage: float = 0.0,
    ) -> CapacitorBank:
        """Register a bank, optionally behind *switch*.

        A bank with no switch is hardwired active (the default bank).
        """
        if spec.name in self._banks:
            raise BankConfigurationError(f"duplicate bank name {spec.name!r}")
        bank = CapacitorBank(spec, initial_voltage=initial_voltage)
        self._banks[spec.name] = bank
        if switch is not None:
            self._switches[spec.name] = switch
            self._switch_seq = tuple(self._switches.values())
        self._order.append(spec.name)
        self._active_cache = None
        return bank

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def bank_names(self) -> List[str]:
        """All bank names in registration order."""
        return list(self._order)

    @property
    def hardwired_names(self) -> List[str]:
        """Banks that are always connected (no switch)."""
        return [name for name in self._order if name not in self._switches]

    @property
    def reconfiguration_count(self) -> int:
        """Number of :meth:`configure` calls that changed any switch."""
        return self._reconfigurations

    def bank(self, name: str) -> CapacitorBank:
        if name not in self._banks:
            raise BankConfigurationError(f"unknown bank {name!r}")
        return self._banks[name]

    def set_fault_injector(self, injector) -> None:
        """Arm (or with ``None``, disarm) a fault injector.

        The injector (duck-typed: ``switch_overrides``,
        ``esr_multiplier``, ``leak_multiplier``, ``next_transition``)
        participates in every active-set computation from the next query
        on; the cache is invalidated so no pre-fault aggregate survives.
        """
        self._fault_injector = injector
        self._active_cache = None

    def switch(self, name: str) -> BankSwitch:
        if name not in self._switches:
            raise BankConfigurationError(f"bank {name!r} has no switch")
        return self._switches[name]

    def _active_entry(self, time: float) -> tuple:
        """The cached active-set tuple for *time* (rebuilds if stale).

        A cache entry stays valid from its build time until the first
        possible latch reversion among switches holding a non-default
        state; switch ``version`` counters catch direct state changes.
        """
        versions = 0
        for switch in self._switch_seq:
            versions += switch.version
        cache = self._active_cache
        if cache is not None and cache[2] == versions and cache[0] <= time < cache[1]:
            return cache
        injector = self._fault_injector
        overrides = (
            injector.switch_overrides(time) if injector is not None else {}
        )
        names: List[str] = []
        for name in self._order:
            switch = self._switches.get(name)
            if switch is None:
                names.append(name)
            elif name in overrides:
                # Stuck-at fault: the physical switch ignores both its
                # commanded state and latch decay for the window.
                if overrides[name]:
                    names.append(name)
            elif switch.is_closed(time):
                names.append(name)
        # is_closed() may have just resolved reversions (bumping
        # versions); recompute the sum after resolution.
        versions = 0
        boundary = math.inf
        for switch in self._switch_seq:
            versions += switch.version
            if switch._commanded_closed != switch.default_closed:
                boundary = min(
                    boundary, switch._last_replenished + switch.retention_time
                )
        banks = [self._banks[name] for name in names]
        capacitance = sum(bank.capacitance for bank in banks)
        esr = parallel_esr(bank.esr for bank in banks) if banks else 0.0
        if injector is not None:
            # Cached aggregates must not outlive a fault-window edge,
            # and the faulted ESR is what every consumer should see.
            boundary = min(boundary, injector.next_transition(time))
            esr *= injector.esr_multiplier(time)
        entry = (time, boundary, versions, names, banks, capacitance, esr)
        self._active_cache = entry
        if injector is not None and len(banks) > 1:
            # A bank rejoining the set at a fault edge (stuck window
            # ending) carries its held voltage; physical reconnection
            # redistributes charge instantly, so equalize here to keep
            # the shared-voltage invariant every consumer asserts.
            voltage = banks[0].voltage
            if any(abs(bank.voltage - voltage) > 1e-9 for bank in banks[1:]):
                self.equalize_active(time)
        return entry

    def active_names(self, time: float) -> List[str]:
        """Banks currently connected, honouring latch reversion."""
        return list(self._active_entry(time)[3])

    def active_banks(self, time: float) -> List[CapacitorBank]:
        return self._active_entry(time)[4]

    def active_capacitance(self, time: float) -> float:
        """Total capacitance of the active set, farads."""
        return self._active_entry(time)[5]

    def active_esr(self, time: float) -> float:
        """Combined ESR of the active set, ohms."""
        entry = self._active_entry(time)
        if not entry[4]:
            raise PowerSystemError("no banks are active")
        return entry[6]

    def active_voltage(self, time: float) -> float:
        """Shared terminal voltage of the active set, volts.

        Active banks are always equalized after reconfiguration, so they
        agree; this asserts that invariant.
        """
        banks = self.active_banks(time)
        if not banks:
            raise PowerSystemError("no banks are active")
        voltage = banks[0].voltage
        for bank in banks[1:]:
            if abs(bank.voltage - voltage) > 1e-6:
                raise PowerSystemError(
                    "active banks diverged in voltage; reconfiguration "
                    "must equalize them"
                )
        return voltage

    def active_energy(self, time: float) -> float:
        """Stored energy of the active set, joules."""
        return sum(bank.energy for bank in self.active_banks(time))

    def active_rated_voltage(self, time: float) -> float:
        """Rated (minimum over active banks) voltage of the active set."""
        banks = self.active_banks(time)
        if not banks:
            raise PowerSystemError("no banks are active")
        return min(bank.spec.rated_voltage for bank in banks)

    def total_volume(self) -> float:
        """Capacitor volume across all banks, m^3."""
        return sum(bank.spec.volume for bank in self._banks.values())

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------

    def configure(self, config: ReservoirConfig, time: float) -> float:
        """Switch the active set to exactly *config*'s banks.

        Hardwired banks are always active; including them in the config
        is allowed (and conventional), excluding them is an error.

        Returns:
            Energy spent toggling latch capacitors, joules (the runtime
            charges this to the active reservoir).

        Raises:
            BankConfigurationError: for unknown banks or configs that try
                to disconnect a hardwired bank.
        """
        unknown = config.bank_names - set(self._banks)
        if unknown:
            raise BankConfigurationError(
                f"config {config.name!r} references unknown banks {sorted(unknown)}"
            )
        missing_hardwired = set(self.hardwired_names) - config.bank_names
        if missing_hardwired:
            raise BankConfigurationError(
                f"config {config.name!r} cannot disconnect hardwired banks "
                f"{sorted(missing_hardwired)}"
            )
        toggle_energy = 0.0
        changed = False
        for name in self._order:
            switch = self._switches.get(name)
            if switch is None:
                continue
            want_closed = name in config.bank_names
            before = switch.is_closed(time)
            toggle_energy += switch.set_closed(want_closed, time)
            if before != want_closed:
                changed = True
        if changed:
            self._reconfigurations += 1
        redistribution_loss = self.equalize_active(time)
        telemetry = self.telemetry
        if telemetry.enabled and changed:
            telemetry.inc("reservoir.reconfigurations")
            telemetry.inc("reservoir.switch_toggle_j", toggle_energy)
            telemetry.inc("reservoir.redistribution_loss_j", redistribution_loss)
            telemetry.event(
                time,
                "reservoir",
                "reconfigure",
                config=config.name,
                banks=",".join(sorted(config.bank_names)),
                capacitance=self.active_capacitance(time),
            )
            self._record_wear_gauges(telemetry)
        return toggle_energy

    def _record_wear_gauges(self, telemetry: Telemetry) -> None:
        """Refresh per-bank wear gauges (equivalent full cycles).

        Called at reconfiguration rate, never in per-joule paths, so the
        cost stays off the integration hot loops.
        """
        for name in self._order:
            bank = self._banks[name]
            cycles = sum(
                bank.group_cycles(spec.name) for spec, _count in bank.spec.groups
            )
            telemetry.set_gauge(f"reservoir.wear_cycles.{name}", cycles)

    def equalize_active(self, time: float) -> float:
        """Redistribute charge across the active set at constant charge.

        Returns the energy lost to redistribution, joules.  Real parallel
        capacitors at unequal voltages lose ``dE`` as heat through the
        interconnect when joined; the model conserves charge, not energy.
        """
        banks = self.active_banks(time)
        if len(banks) <= 1:
            return 0.0
        total_charge = sum(bank.capacitance * bank.voltage for bank in banks)
        total_capacitance = sum(bank.capacitance for bank in banks)
        v_common = total_charge / total_capacitance
        before = sum(bank.energy for bank in banks)
        for bank in banks:
            bank.set_voltage(min(v_common, bank.spec.rated_voltage))
        after = sum(bank.energy for bank in banks)
        return max(0.0, before - after)

    def replenish_switches(self, time: float) -> None:
        """Top up every latch (call while input power is present)."""
        for switch in self._switches.values():
            switch.replenish(time)

    # ------------------------------------------------------------------
    # Aggregate energy movement (active set as one capacitor)
    # ------------------------------------------------------------------

    def store(self, energy: float, time: float) -> float:
        """Add *energy* joules to the active set, split by capacitance.

        Returns the energy actually absorbed (saturates at the lowest
        rated voltage across the active set, keeping voltages equal).
        """
        entry = self._active_entry(time)
        banks, total_c = entry[4], entry[5]
        if not banks:
            raise PowerSystemError("no banks are active")
        if len(banks) == 1:
            return banks[0].store(energy)
        voltage = self.active_voltage(time)
        rated = min(bank.spec.rated_voltage for bank in banks)
        headroom = 0.5 * total_c * (rated * rated - voltage * voltage)
        absorbed = min(energy, max(0.0, headroom))
        new_energy = 0.5 * total_c * voltage * voltage + absorbed
        v_new = math.sqrt(2.0 * new_energy / total_c)
        for bank in banks:
            # max() guards against -1e-19-scale float residue when a
            # bank is already saturated at its rated voltage.
            bank.store(max(0.0, bank.spec.energy_at(v_new) - bank.energy))
        return absorbed

    def extract(self, energy: float, time: float) -> float:
        """Remove *energy* joules from the active set, split by capacitance.

        Returns the energy actually delivered.
        """
        entry = self._active_entry(time)
        banks, total_c = entry[4], entry[5]
        if not banks:
            raise PowerSystemError("no banks are active")
        if len(banks) == 1:
            return banks[0].extract(energy)
        voltage = self.active_voltage(time)
        available = 0.5 * total_c * voltage * voltage
        delivered = min(energy, available)
        v_new = math.sqrt(2.0 * max(0.0, available - delivered) / total_c)
        for bank in banks:
            bank.extract(max(0.0, bank.energy - bank.spec.energy_at(v_new)))
        return delivered

    def leak_all(self, duration: float, time: float) -> float:
        """Apply leakage to every bank (active and dormant).

        Dormant pre-charged banks losing energy "except the energy lost
        to leakage" is exactly the Section 4.2 retention property.

        Returns total energy lost, joules.
        """
        if self._fault_injector is not None:
            # A leakage spike accelerates self-discharge: integrating the
            # same RC decay over a stretched duration is exactly a
            # proportionally lower leak resistance for the window.
            duration = duration * self._fault_injector.leak_multiplier(time)
        lost = sum(bank.leak(duration) for bank in self._banks.values())
        # Leakage can nudge active-bank voltages apart (different leak
        # resistances); re-equalize to preserve the shared-voltage
        # invariant.  The redistribution loss here is second-order.
        lost += self.equalize_active(time)
        if self.telemetry.enabled:
            self.telemetry.inc("reservoir.leak_j", lost)
        return lost

    def active_view(self, time: float) -> "ActiveSetView":
        """A hoisted handle on the active set for hot integration loops.

        The view captures the active banks, capacitance, and ESR once
        and then moves energy without re-validating the switch state on
        every call.  It is only sound while the active set cannot change
        — e.g. within one :meth:`CapybaraPowerSystem.discharge` segment
        loop, where the device is powered (latches are held) and
        reconfiguration happens only between tasks.  The arithmetic is
        identical to :meth:`store`/:meth:`extract`, so results are
        bit-for-bit the same.
        """
        entry = self._active_entry(time)
        if not entry[4]:
            raise PowerSystemError("no banks are active")
        return ActiveSetView(entry[4], entry[5], entry[6])

    def snapshot(self) -> Dict[str, Tuple[float, bool]]:
        """Voltage and switch presence per bank (debug/trace helper)."""
        return {
            name: (self._banks[name].voltage, name in self._switches)
            for name in self._order
        }


class ActiveSetView:
    """Frozen view of a reservoir's active set (see :meth:`active_view`).

    Exposes the aggregate-capacitor operations the power-system
    integrators sit in their innermost loops: terminal voltage, store,
    extract.  All mutations go through the underlying
    :class:`CapacitorBank` objects, so the reservoir observes every
    joule moved through a view.
    """

    __slots__ = ("banks", "capacitance", "esr", "_single")

    def __init__(
        self, banks: List[CapacitorBank], capacitance: float, esr: float
    ) -> None:
        self.banks = banks
        self.capacitance = capacitance
        self.esr = esr
        self._single = banks[0] if len(banks) == 1 else None

    @property
    def voltage(self) -> float:
        """Shared terminal voltage of the captured active set, volts."""
        return self.banks[0].voltage

    def store(self, energy: float) -> float:
        """Add *energy* joules; same semantics as ``Reservoir.store``."""
        single = self._single
        if single is not None:
            return single.store(energy)
        banks, total_c = self.banks, self.capacitance
        voltage = banks[0].voltage
        rated = min(bank.spec.rated_voltage for bank in banks)
        headroom = 0.5 * total_c * (rated * rated - voltage * voltage)
        absorbed = min(energy, max(0.0, headroom))
        new_energy = 0.5 * total_c * voltage * voltage + absorbed
        v_new = math.sqrt(2.0 * new_energy / total_c)
        for bank in banks:
            bank.store(max(0.0, bank.spec.energy_at(v_new) - bank.energy))
        return absorbed

    def extract(self, energy: float) -> float:
        """Remove *energy* joules; same semantics as ``Reservoir.extract``."""
        single = self._single
        if single is not None:
            return single.extract(energy)
        banks, total_c = self.banks, self.capacitance
        voltage = banks[0].voltage
        available = 0.5 * total_c * voltage * voltage
        delivered = min(energy, available)
        v_new = math.sqrt(2.0 * max(0.0, available - delivered) / total_c)
        for bank in banks:
            bank.extract(max(0.0, bank.energy - bank.spec.energy_at(v_new)))
        return delivered
