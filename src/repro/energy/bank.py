"""Parallel capacitor banks.

A Capybara *bank* is a set of capacitor parts wired in parallel behind
one switch — the unit of reconfiguration.  The paper's banks mix
technologies ("300 uF ceramic + 1100 uF tantalum + 7.5 mF EDLC"), so a
:class:`BankSpec` is a list of ``(part spec, count)`` groups whose
electrical parameters aggregate in the standard parallel way:

* capacitance and leakage current add,
* ESR and leak resistance combine in parallel,
* rated voltage is the minimum over parts,
* volume adds.

A :class:`CapacitorBank` is the stateful instance: one shared terminal
voltage, exact energy accounting, RC-decay leakage, and per-group wear
tracking (so the EDLC wear-leveling policy of Section 5.2 has something
to observe).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError, PowerSystemError
from repro.energy.capacitor import CapacitorSpec, parallel_esr
from repro.units import capacitor_energy


@dataclass(frozen=True)
class BankSpec:
    """Immutable description of a parallel bank of capacitor parts.

    Attributes:
        name: bank identifier used by energy modes ("small", "radio", ...).
        groups: tuple of ``(part spec, count)`` pairs, count >= 1.
    """

    name: str
    groups: Tuple[Tuple[CapacitorSpec, int], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError(f"bank {self.name!r} has no capacitors")
        for spec, count in self.groups:
            if count < 1:
                raise ConfigurationError(
                    f"bank {self.name!r}: count for {spec.name} must be >= 1"
                )

    @staticmethod
    def of_parts(name: str, parts: Sequence[Tuple[CapacitorSpec, int]]) -> "BankSpec":
        """Build a spec from a list of ``(part, count)`` pairs."""
        return BankSpec(name=name, groups=tuple(parts))

    @staticmethod
    def single(name: str, part: CapacitorSpec, count: int = 1) -> "BankSpec":
        """Build a spec holding *count* copies of one part."""
        return BankSpec(name=name, groups=((part, count),))

    def spec_dict(self) -> dict:
        """This bank as a plain JSON-safe dict (:mod:`repro.spec` bank
        schema): the name plus one ``{part, count}`` object per group."""
        return {
            "name": self.name,
            "groups": [
                {"part": spec.spec_dict(), "count": count}
                for spec, count in self.groups
            ],
        }

    # ------------------------------------------------------------------
    # Aggregate electrical parameters
    # ------------------------------------------------------------------

    @cached_property
    def capacitance(self) -> float:
        """Total (derated) capacitance, farads."""
        return sum(
            spec.effective_capacitance * count for spec, count in self.groups
        )

    @cached_property
    def esr(self) -> float:
        """Combined equivalent series resistance, ohms."""
        esrs: List[float] = []
        for spec, count in self.groups:
            for _ in range(count):
                esrs.append(spec.esr)
        return parallel_esr(esrs)

    @cached_property
    def leak_resistance(self) -> float:
        """Combined parallel self-discharge resistance, ohms."""
        inverse = 0.0
        for spec, count in self.groups:
            inverse += count / spec.leak_resistance
        return 1.0 / inverse

    @cached_property
    def rated_voltage(self) -> float:
        """Maximum safe bank voltage (minimum over parts), volts."""
        return min(spec.rated_voltage for spec, _ in self.groups)

    @cached_property
    def volume(self) -> float:
        """Total capacitor volume, cubic metres."""
        return sum(spec.volume * count for spec, count in self.groups)

    @cached_property
    def part_count(self) -> int:
        """Total number of discrete parts in the bank."""
        return sum(count for _, count in self.groups)

    def energy_at(self, voltage: float) -> float:
        """Energy stored at *voltage* relative to drained, joules."""
        return capacitor_energy(self.capacitance, voltage)

    def max_energy(self) -> float:
        """Energy stored at the rated voltage, joules."""
        return self.energy_at(self.rated_voltage)

    def describe(self) -> str:
        """One-line human-readable recipe, e.g. ``small: 4x X5R-100uF``."""
        parts = " + ".join(f"{count}x {spec.name}" for spec, count in self.groups)
        return f"{self.name}: {parts}"


class CapacitorBank:
    """A stateful parallel bank: shared voltage, wear, and leakage.

    The bank is the reconfiguration unit of the Capybara reservoir.  It
    deliberately knows nothing about switches or boosters; those layers
    wrap it (:mod:`repro.energy.switch`, :mod:`repro.energy.booster`).
    """

    def __init__(self, spec: BankSpec, initial_voltage: float = 0.0) -> None:
        if initial_voltage < 0.0 or initial_voltage > spec.rated_voltage:
            raise ConfigurationError(
                f"initial voltage {initial_voltage} outside "
                f"[0, {spec.rated_voltage}] for bank {spec.name!r}"
            )
        self.spec = spec
        self._voltage = float(initial_voltage)
        self._leak_tau = spec.leak_resistance * spec.capacitance
        # Cache the half-capacitance factor used by the energy<->voltage
        # conversions on every store/extract.
        self._half_c = 0.5 * spec.capacitance
        # Equivalent full cycles per part group, keyed by part name.
        self._group_cycles: Dict[str, float] = {
            spec_.name: 0.0 for spec_, _ in spec.groups
        }

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def voltage(self) -> float:
        """Current terminal voltage, volts."""
        return self._voltage

    @property
    def energy(self) -> float:
        """Stored energy relative to drained, joules."""
        return self._half_c * self._voltage * self._voltage

    @property
    def capacitance(self) -> float:
        return self.spec.capacitance

    @property
    def esr(self) -> float:
        return self.spec.esr

    def group_cycles(self, part_name: str) -> float:
        """Equivalent full cycles accumulated by the named part group."""
        if part_name not in self._group_cycles:
            raise ConfigurationError(
                f"bank {self.name!r} has no part group {part_name!r}"
            )
        return self._group_cycles[part_name]

    # ------------------------------------------------------------------
    # Energy movement
    # ------------------------------------------------------------------

    def set_voltage(self, voltage: float) -> None:
        """Force the terminal voltage (initialisation / switch transfer)."""
        if voltage < 0.0 or voltage > self.spec.rated_voltage:
            raise PowerSystemError(
                f"voltage {voltage} outside [0, {self.spec.rated_voltage}] "
                f"for bank {self.name!r}"
            )
        self._voltage = float(voltage)

    def store(self, energy: float) -> float:
        """Add *energy* joules, saturating at the rated voltage.

        Returns the energy actually absorbed.
        """
        if energy < 0.0:
            raise PowerSystemError(f"cannot store negative energy ({energy})")
        headroom = self.spec.max_energy() - self.energy
        absorbed = min(energy, headroom)
        self._set_energy(self.energy + absorbed)
        self._wear(absorbed)
        return absorbed

    def extract(self, energy: float) -> float:
        """Remove *energy* joules, saturating at fully drained.

        Returns the energy actually delivered.
        """
        if energy < 0.0:
            raise PowerSystemError(f"cannot extract negative energy ({energy})")
        delivered = min(energy, self.energy)
        self._set_energy(self.energy - delivered)
        self._wear(delivered)
        return delivered

    def leak(self, duration: float) -> float:
        """Self-discharge for *duration* seconds through the combined
        leak resistance (RC exponential decay).

        Returns the energy lost, joules.
        """
        if duration < 0.0:
            raise PowerSystemError(f"duration must be non-negative, got {duration}")
        if duration == 0.0 or self._voltage == 0.0:
            return 0.0
        before = self.energy
        self._voltage *= math.exp(-duration / self._leak_tau)
        return before - self.energy

    # ------------------------------------------------------------------
    # Timing helpers (analytic integration in the energy domain)
    # ------------------------------------------------------------------

    def charge_time(self, v_from: float, v_to: float, net_power: float) -> float:
        """Seconds to charge from *v_from* to *v_to* at constant *net_power*.

        ``dt = C (v_to^2 - v_from^2) / (2 P)`` — the paper's Section 2
        observation that charge time is set by buffer size, not load.

        Returns ``math.inf`` when *net_power* is zero or negative (the
        harvester cannot overcome leakage).
        """
        if v_to < v_from:
            raise PowerSystemError(
                f"charge_time requires v_to >= v_from (got {v_from} -> {v_to})"
            )
        if net_power <= 0.0:
            return math.inf
        delta = self.spec.energy_at(v_to) - self.spec.energy_at(v_from)
        return delta / net_power

    def discharge_time(self, v_from: float, v_to: float, drain_power: float) -> float:
        """Seconds to discharge from *v_from* down to *v_to* at constant
        *drain_power* (load plus conversion losses).

        Returns ``math.inf`` when *drain_power* is zero or negative.
        """
        if v_to > v_from:
            raise PowerSystemError(
                f"discharge_time requires v_to <= v_from (got {v_from} -> {v_to})"
            )
        if drain_power <= 0.0:
            return math.inf
        delta = self.spec.energy_at(v_from) - self.spec.energy_at(v_to)
        return delta / drain_power

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _set_energy(self, energy: float) -> None:
        energy = max(0.0, energy)
        self._voltage = math.sqrt(energy / self._half_c)

    def _wear(self, energy_moved: float) -> None:
        if energy_moved <= 0.0:
            return
        total_c = self.spec.capacitance
        for spec, count in self.spec.groups:
            if not math.isfinite(spec.cycle_endurance):
                continue
            # Parallel parts at a shared voltage split energy by capacitance.
            share = spec.effective_capacitance * count / total_c
            group_max = spec.energy_at(spec.rated_voltage) * count
            if group_max > 0.0:
                self._group_cycles[spec.name] += (
                    0.5 * energy_moved * share / group_max
                )
