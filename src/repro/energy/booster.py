"""Input and output boost converters (Section 5.1).

The Capybara power-distribution circuit wraps the energy buffer between
two converters:

* the **input booster** charges the capacitors from a boosted harvester
  voltage, with a "cold-start" phase that substantially slows charging
  when the capacitor is nearly empty, and a **bypass optimization** that
  charges directly from the harvester through a keeper diode until the
  booster can start (the paper observed the bypass cuts charge time by
  at least an order of magnitude);

* the **output booster** produces a stable load voltage while the
  capacitor voltage falls, compensating for the ESR droop of dense
  supercapacitors and extracting stored energy "down to about 10% of
  capacity".

Both models are efficiency-curve converters, not switching-waveform
simulations: at each operating point they map power in to power out and
expose the voltage limits that define brownout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.errors import ConfigurationError, PowerSystemError
from repro.energy.bank import BankSpec, CapacitorBank


@dataclass(frozen=True)
class InputBooster:
    """Harvester-side boost converter with cold start and bypass.

    Attributes:
        efficiency: conversion efficiency once started.
        v_cold_start: capacitor voltage below which the booster cannot
            run normally and falls back to its slow cold-start charger.
        cold_start_efficiency: efficiency during cold start.  The boost
            controller can barely run below its cold-start threshold, so
            this is drastically low — which is exactly why the paper's
            bypass diode buys "at least an order of magnitude" in charge
            time.
        bypass: whether the keeper-diode bypass optimization is present.
        v_diode_drop: forward drop of the keeper diode, volts.
        v_charge_target: regulated charging voltage; capacitors charge
            toward ``min(v_charge_target, bank rated voltage)``.
        min_input_voltage: harvester voltage below which even the boosted
            path cannot operate.
        low_voltage_efficiency: fraction of nominal efficiency when
            charging a capacitor sitting just above the cold-start knee;
            efficiency ramps linearly up to nominal at
            ``v_full_efficiency``.  Charging into a low-voltage capacitor
            runs the converter at a wide, lossy conversion ratio — the
            "subtle power system effect" behind Section 6.4's longer
            Capy-P charge times (a pre-charged bank never visits its
            most efficient top-of-charge region).
        v_full_efficiency: capacitor voltage at which nominal efficiency
            is reached.
    """

    efficiency: float = 0.70
    v_cold_start: float = 1.0
    cold_start_efficiency: float = 0.01
    bypass: bool = True
    v_diode_drop: float = 0.3
    v_charge_target: float = 2.4
    min_input_voltage: float = 0.10
    low_voltage_efficiency: float = 0.45
    v_full_efficiency: float = 2.2

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        if not 0.0 < self.cold_start_efficiency <= self.efficiency:
            raise ConfigurationError(
                "cold_start_efficiency must be in (0, efficiency]"
            )
        if self.v_cold_start < 0.0:
            raise ConfigurationError("v_cold_start must be non-negative")
        if self.v_diode_drop < 0.0:
            raise ConfigurationError("v_diode_drop must be non-negative")
        if self.v_charge_target <= self.v_cold_start:
            raise ConfigurationError(
                "v_charge_target must exceed v_cold_start"
            )
        if not 0.0 < self.low_voltage_efficiency <= 1.0:
            raise ConfigurationError(
                "low_voltage_efficiency must be in (0, 1]"
            )
        if self.v_full_efficiency <= self.v_cold_start:
            raise ConfigurationError(
                "v_full_efficiency must exceed v_cold_start"
            )

    def spec_dict(self) -> dict:
        """This converter as a plain dict (:mod:`repro.spec` booster schema)."""
        return {
            "kind": "input",
            "efficiency": self.efficiency,
            "v_cold_start": self.v_cold_start,
            "cold_start_efficiency": self.cold_start_efficiency,
            "bypass": self.bypass,
            "v_diode_drop": self.v_diode_drop,
            "v_charge_target": self.v_charge_target,
            "min_input_voltage": self.min_input_voltage,
            "low_voltage_efficiency": self.low_voltage_efficiency,
            "v_full_efficiency": self.v_full_efficiency,
        }

    def charge_target(self, bank: CapacitorBank) -> float:
        """Voltage the charger will take *bank* to, volts."""
        return min(self.v_charge_target, bank.spec.rated_voltage)

    def charge_power(
        self, v_cap: float, harvester_voltage: float, harvester_power: float
    ) -> float:
        """Power flowing into the capacitor at this operating point, watts.

        Picks the best available path: boosted (normal or cold-start) or
        the diode bypass.  Returns 0 when the harvester is too weak or
        the capacitor is already at/above the charge target.
        """
        if harvester_power <= 0.0 or harvester_voltage < self.min_input_voltage:
            return 0.0
        if v_cap >= self.v_charge_target:
            return 0.0

        if v_cap >= self.v_cold_start:
            return harvester_power * self.efficiency * self._ramp(v_cap)

        # Cold region: the booster alone limps along at cold-start
        # efficiency; the bypass diode path charges directly from the
        # harvester while the capacitor sits below the diode knee.
        candidates = [harvester_power * self.cold_start_efficiency]
        if self.bypass and v_cap < harvester_voltage - self.v_diode_drop:
            # Direct charging loses only the diode drop's share of the
            # harvester voltage.
            diode_efficiency = max(
                0.0, 1.0 - self.v_diode_drop / harvester_voltage
            )
            candidates.append(harvester_power * diode_efficiency)
        return max(candidates)

    def _ramp(self, v_cap: float) -> float:
        """Conversion-ratio efficiency factor, in
        [low_voltage_efficiency, 1]."""
        if v_cap >= self.v_full_efficiency:
            return 1.0
        span = self.v_full_efficiency - self.v_cold_start
        fraction = max(0.0, (v_cap - self.v_cold_start) / span)
        return self.low_voltage_efficiency + (
            1.0 - self.low_voltage_efficiency
        ) * fraction

    def bypass_ceiling(self, harvester_voltage: float) -> float:
        """Highest capacitor voltage the bypass path can reach, volts."""
        if not self.bypass:
            return 0.0
        return max(0.0, harvester_voltage - self.v_diode_drop)


@dataclass(frozen=True)
class OutputBooster:
    """Load-side boost converter producing a regulated output rail.

    Attributes:
        v_out: regulated output voltage (2.5 V serves the paper's gesture
            sensor; 2.0 V its BLE radio — we regulate at the max needed).
        v_in_min: minimum booster input voltage (post-ESR-droop) at which
            regulation holds; sets the "down to about 10% of capacity"
            discharge floor.
        efficiency: conversion efficiency.
        quiescent_power: converter's own standing draw while enabled.
    """

    v_out: float = 2.5
    v_in_min: float = 0.75
    efficiency: float = 0.80
    quiescent_power: float = 3e-6

    def __post_init__(self) -> None:
        if self.v_out <= 0.0:
            raise ConfigurationError("v_out must be positive")
        if self.v_in_min <= 0.0:
            raise ConfigurationError("v_in_min must be positive")
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        if self.quiescent_power < 0.0:
            raise ConfigurationError("quiescent_power must be non-negative")

    def spec_dict(self) -> dict:
        """This converter as a plain dict (:mod:`repro.spec` booster schema)."""
        return {
            "kind": "output",
            "v_out": self.v_out,
            "v_in_min": self.v_in_min,
            "efficiency": self.efficiency,
            "quiescent_power": self.quiescent_power,
        }

    # ------------------------------------------------------------------
    # Operating-point electrical relations
    # ------------------------------------------------------------------

    def input_power_for_load(self, load_power: float) -> float:
        """Booster input power needed to deliver *load_power*, watts."""
        if load_power < 0.0:
            raise PowerSystemError(f"load_power must be non-negative: {load_power}")
        return load_power / self.efficiency + self.quiescent_power

    def bank_current(self, bank_voltage: float, esr: float, load_power: float) -> float:
        """Current drawn from the bank to supply *load_power*, amperes.

        Solves ``I * (V - I * ESR) = P_in`` for the smaller root — the
        stable operating point.  Raises :class:`PowerSystemError` when no
        real solution exists (the bank cannot deliver that power through
        its ESR).
        """
        p_in = self.input_power_for_load(load_power)
        if p_in == 0.0:
            return 0.0
        if esr == 0.0:
            if bank_voltage <= 0.0:
                raise PowerSystemError("bank is empty; cannot draw power")
            return p_in / bank_voltage
        discriminant = bank_voltage * bank_voltage - 4.0 * esr * p_in
        if discriminant < 0.0:
            raise PowerSystemError(
                f"bank at {bank_voltage:.3f} V with ESR {esr:.3f} ohm cannot "
                f"deliver {p_in * 1e3:.3f} mW"
            )
        return (bank_voltage - math.sqrt(discriminant)) / (2.0 * esr)

    def min_bank_voltage(self, esr: float, load_power: float) -> float:
        """Bank voltage below which *load_power* cannot be delivered.

        Two constraints apply: the droop equation must have a real
        solution (``V >= 2 sqrt(ESR * P_in)``) and the post-droop booster
        input must stay above ``v_in_min``.  The floor is the larger.
        This is the discharge floor of the paper's Section 5.1 — higher
        for high-ESR supercapacitors under heavy loads, which is what
        strands energy in Figure 4.

        The discharge integrators ask for the same (ESR, load) floor at
        every segment of every task execution, so the solution is
        memoised on the operating point.
        """
        return _min_bank_voltage(self, esr, load_power)

    def can_power(self, bank: CapacitorBank, load_power: float) -> bool:
        """Whether *bank* at its current voltage can deliver *load_power*."""
        return bank.voltage > self.min_bank_voltage(bank.esr, load_power)

    # ------------------------------------------------------------------
    # Discharge integration
    # ------------------------------------------------------------------

    def drain_power(self, bank_voltage: float, esr: float, load_power: float) -> float:
        """Total power leaving the bank (load + ESR + conversion), watts."""
        current = self.bank_current(bank_voltage, esr, load_power)
        return current * bank_voltage

    def discharge(
        self,
        bank: CapacitorBank,
        load_power: float,
        duration: float,
        voltage_step_fraction: float = 0.01,
    ) -> Tuple[float, bool]:
        """Run *bank* at *load_power* for up to *duration* seconds.

        Integrates the discharge in small voltage steps (the drain power
        rises as voltage falls because current grows), mutating the bank.

        Args:
            bank: the bank to drain.
            load_power: power delivered at the regulated rail, watts.
            duration: requested run time, seconds.
            voltage_step_fraction: integration resolution as a fraction
                of the instantaneous voltage.

        Returns:
            ``(time_ran, browned_out)`` — the time actually sustained and
            whether the bank hit the discharge floor before *duration*.
        """
        if duration < 0.0:
            raise PowerSystemError(f"duration must be non-negative: {duration}")
        floor = self.min_bank_voltage(bank.esr, load_power)
        elapsed = 0.0
        while elapsed < duration:
            voltage = bank.voltage
            # The epsilon guards against floating-point non-progress when
            # the voltage lands exactly on the droop floor.
            if voltage <= floor + 1e-9:
                return elapsed, True
            power = self.drain_power(voltage, bank.esr, load_power)
            # Step either to the floor, by the resolution, or to the end
            # of the requested duration — whichever comes first.
            dv = max(voltage * voltage_step_fraction, 1e-6)
            v_next = max(floor, voltage - dv)
            step_energy = bank.spec.energy_at(voltage) - bank.spec.energy_at(v_next)
            step_time = step_energy / power
            if elapsed + step_time >= duration:
                bank.extract(power * (duration - elapsed))
                return duration, bank.voltage <= floor + 1e-9
            bank.extract(step_energy)
            elapsed += step_time
        return duration, False

    def time_to_brownout(
        self,
        bank: CapacitorBank,
        load_power: float,
        voltage_step_fraction: float = 0.01,
    ) -> float:
        """Seconds the bank can sustain *load_power* from its current
        voltage, without mutating the bank.

        The design-space sweeps (Figures 3 and 4) and the provisioning
        estimators re-solve this full-drain integral for identical
        (bank spec, start voltage, load) operating points; the segment
        solution is memoised on exactly that key.
        """
        return _time_to_brownout(
            self, bank.spec, bank.voltage, load_power, voltage_step_fraction
        )

    def usable_energy(
        self,
        bank: CapacitorBank,
        load_power: float,
    ) -> float:
        """Energy deliverable *to the load* before brownout, joules.

        ``time_to_brownout * load_power`` — the quantity Figures 3 and 4
        divide by per-operation energy to get atomicity.
        """
        if load_power <= 0.0:
            raise PowerSystemError("load_power must be positive")
        return self.time_to_brownout(bank, load_power) * load_power


# ---------------------------------------------------------------------------
# Memoised segment solutions
# ---------------------------------------------------------------------------
#
# Both helpers are pure functions of hashable, immutable inputs
# (``OutputBooster`` and ``BankSpec`` are frozen dataclasses, the rest
# are floats), so memoisation cannot change any result — it only skips
# re-integration for operating points the experiment sweeps revisit
# thousands of times.


@lru_cache(maxsize=16384)
def _min_bank_voltage(
    booster: OutputBooster, esr: float, load_power: float
) -> float:
    p_in = booster.input_power_for_load(load_power)
    droop_floor = 2.0 * math.sqrt(esr * p_in)
    regulation_floor = booster.v_in_min + esr * p_in / booster.v_in_min
    return max(droop_floor, regulation_floor)


@lru_cache(maxsize=4096)
def _time_to_brownout(
    booster: OutputBooster,
    spec: BankSpec,
    voltage: float,
    load_power: float,
    voltage_step_fraction: float,
) -> float:
    probe = CapacitorBank(spec, initial_voltage=voltage)
    time_ran, browned_out = booster.discharge(
        probe, load_power, math.inf, voltage_step_fraction
    )
    if not browned_out:  # pragma: no cover - inf duration always browns out
        raise PowerSystemError("discharge with infinite duration did not end")
    return time_ran


def clear_segment_caches() -> None:
    """Drop the memoised discharge solutions (test isolation helper)."""
    _min_bank_voltage.cache_clear()
    _time_to_brownout.cache_clear()
