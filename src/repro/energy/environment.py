"""Environmental input-power profiles.

The paper drives its boards from physical sources: a 20 W halogen bulb
PWM-dimmed to 42% over TrisolX solar panels (TempAlarm), a bench supply
behind an attenuating resistor capped at 10 mW (GRC/CSR), and — for the
CapySat case study — sunlight over a low-Earth-orbit illumination cycle.
This module models those sources as *traces*: callables from simulation
time (seconds) to a scalar intensity in W/m^2 (for light) or a direct
scale factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.traces import ReplayTrace

__all__ = [
    "FULL_SUN",
    "EnvironmentTrace",
    "Trace",
    "ConstantTrace",
    "DimmedLampTrace",
    "OrbitTrace",
    "PiecewiseTrace",
]

#: Standard full-sun irradiance, W/m^2.
FULL_SUN = 1000.0


@runtime_checkable
class EnvironmentTrace(Protocol):
    """The environment-trace contract: simulation time -> intensity.

    Everything that drives a harvester — the synthetic models below and
    :class:`repro.traces.ReplayTrace` for recorded environments — is a
    callable from simulation time (seconds) to a non-negative scalar
    intensity (W/m^2 for light, or a direct scale factor).  Harvester
    constructors are typed against this protocol rather than a bare
    ``Callable`` so the contract has a name and a home.
    """

    def __call__(self, time: float) -> float:  # pragma: no cover - protocol
        ...


class _Recordable:
    """Mixin giving every synthetic trace a ``record()`` exporter."""

    def record(
        self,
        path,
        duration: float,
        dt: float,
        t0: float = 0.0,
        units: str = "W/m^2",
        metadata: Optional[dict] = None,
    ) -> "ReplayTrace":
        """Sample this environment into the on-disk trace format.

        Evaluates the trace at ``t0 + i*dt`` for ``ceil(duration/dt)+1``
        samples (the endpoint is included so replay covers the full
        horizon) and writes a :mod:`repro.traces` file at *path*.
        Returns a :class:`~repro.traces.ReplayTrace` over the recording.
        """
        from repro.traces import record_trace

        meta = {"source": type(self).__name__}
        if metadata:
            meta.update(metadata)
        return record_trace(
            self, path, duration=duration, dt=dt, t0=t0, units=units, metadata=meta
        )


@dataclass(frozen=True)
class ConstantTrace(_Recordable):
    """A constant intensity (a fixed lamp, a bench light box)."""

    level: float

    def __post_init__(self) -> None:
        if self.level < 0.0:
            raise ConfigurationError(f"level must be non-negative, got {self.level}")

    def __call__(self, time: float) -> float:
        return self.level

    def spec_dict(self) -> dict:
        """This trace as a plain dict (:mod:`repro.spec` trace schema)."""
        return {"kind": "constant", "level": self.level}


@dataclass(frozen=True)
class DimmedLampTrace(_Recordable):
    """A lamp dimmed by PWM duty cycle (Section 6.1.2's halogen at 42%).

    The lamp's full-brightness irradiance at the panel is scaled by the
    duty cycle; PWM is far faster than any capacitor time constant so we
    model the average.
    """

    full_irradiance: float
    duty: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.duty <= 1.0:
            raise ConfigurationError(f"duty must be in [0, 1], got {self.duty}")
        if self.full_irradiance < 0.0:
            raise ConfigurationError("full_irradiance must be non-negative")

    def __call__(self, time: float) -> float:
        return self.full_irradiance * self.duty

    def spec_dict(self) -> dict:
        """This trace as a plain dict (:mod:`repro.spec` trace schema)."""
        return {
            "kind": "dimmed_lamp",
            "full_irradiance": self.full_irradiance,
            "duty": self.duty,
        }


@dataclass(frozen=True)
class OrbitTrace(_Recordable):
    """Low-Earth-orbit illumination: full sun, with eclipse each orbit.

    CapySat (Section 6.6) rides a KickSat-class carrier in LEO; a ~93
    minute orbit spends roughly a third of each period in Earth's shadow.

    Attributes:
        period: orbital period, seconds.
        eclipse_fraction: fraction of each orbit in shadow.
        irradiance: in-sun irradiance, W/m^2 (space solar constant is
            ~1361; default keeps the terrestrial convention of 1000).
    """

    period: float = 93.0 * 60.0
    eclipse_fraction: float = 0.36
    irradiance: float = FULL_SUN

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ConfigurationError("period must be positive")
        if not 0.0 <= self.eclipse_fraction < 1.0:
            raise ConfigurationError("eclipse_fraction must be in [0, 1)")

    def __call__(self, time: float) -> float:
        phase = (time % self.period) / self.period
        return self.irradiance if phase >= self.eclipse_fraction else 0.0

    def next_sunrise(self, time: float) -> float:
        """First time at or after *time* when the panel is illuminated."""
        phase = (time % self.period) / self.period
        if phase >= self.eclipse_fraction:
            return time
        return time + (self.eclipse_fraction - phase) * self.period

    def spec_dict(self) -> dict:
        """This trace as a plain dict (:mod:`repro.spec` trace schema)."""
        return {
            "kind": "orbit",
            "period": self.period,
            "eclipse_fraction": self.eclipse_fraction,
            "irradiance": self.irradiance,
        }


class PiecewiseTrace(_Recordable):
    """An arbitrary step trace: ``[(start_time, level), ...]``.

    Levels hold from each start time until the next; before the first
    breakpoint the level is ``initial``.  Used for adversarial input-power
    timing experiments (Section 5.2's NO/NC switch hazard).
    """

    def __init__(
        self,
        breakpoints: Sequence[Tuple[float, float]],
        initial: float = 0.0,
    ) -> None:
        if initial < 0.0:
            raise ConfigurationError("initial level must be non-negative")
        previous = -math.inf
        for time, level in breakpoints:
            if time <= previous:
                raise ConfigurationError(
                    "breakpoints must be strictly increasing in time"
                )
            if level < 0.0:
                raise ConfigurationError("levels must be non-negative")
            previous = time
        self._breakpoints: List[Tuple[float, float]] = list(breakpoints)
        self._initial = initial

    def __call__(self, time: float) -> float:
        level = self._initial
        for start, value in self._breakpoints:
            if time >= start:
                level = value
            else:
                break
        return level

    def change_times(self) -> List[float]:
        """Times at which the level changes (for event scheduling)."""
        return [time for time, _ in self._breakpoints]

    def spec_dict(self) -> dict:
        """This trace as a plain dict (:mod:`repro.spec` trace schema)."""
        return {
            "kind": "piecewise",
            "breakpoints": [[time, level] for time, level in self._breakpoints],
            "initial": self._initial,
        }


#: Backwards-compatible alias for the protocol above.  Older call sites
#: annotated against ``Trace``; new code should prefer the explicit
#: :class:`EnvironmentTrace` name.
Trace = EnvironmentTrace
