"""Latch-capacitor bank switches (Section 5.2, Figure 6b).

Each reconfigurable bank sits behind a P-channel MOSFET high-side switch
whose gate state is held by a small *latch capacitor*.  The latch leaks:
if the device is unpowered longer than the retention time (~3 minutes
with the paper's 4.7 uF latch), the switch forgets its commanded state
and reverts to its default:

* a **normally-open (NO)** switch reverts to *disconnected* — the
  reservoir falls back to the small default bank, which recharges fast
  but may be too small for the pending task (the paper's adversarial
  indefinite-retry hazard);
* a **normally-closed (NC)** switch reverts to *connected* — maximum
  capacity, slowest recharge, but guaranteed first-attempt success.

While the device is powered, a replenishment circuit tops the latch up,
so retention only matters across dark periods.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import capacitor_energy


class SwitchPolarity(enum.Enum):
    """Default state a switch reverts to after latch decay."""

    NORMALLY_OPEN = "NO"
    NORMALLY_CLOSED = "NC"


def retention_from_latch(
    latch_capacitance: float,
    leak_current: float,
    v_latch: float = 2.5,
    v_hold_min: float = 1.5,
) -> float:
    """Retention time implied by a latch capacitor and its leakage.

    The gate holds while the latch voltage stays above *v_hold_min*;
    with a constant leak current the latch discharges linearly:
    ``t = C * (v_latch - v_hold_min) / I_leak``.

    The paper's 4.7 uF latch retains for about 3 minutes, implying a
    leak current of roughly 25 nA.
    """
    if latch_capacitance <= 0.0:
        raise ConfigurationError("latch_capacitance must be positive")
    if leak_current <= 0.0:
        raise ConfigurationError("leak_current must be positive")
    if v_hold_min >= v_latch:
        raise ConfigurationError("v_hold_min must be below v_latch")
    return latch_capacitance * (v_latch - v_hold_min) / leak_current


@dataclass
class BankSwitch:
    """A state-retaining high-side switch for one capacitor bank.

    Attributes:
        name: switch identifier (usually the bank name).
        polarity: NO or NC default behaviour after latch decay.
        latch_capacitance: latch capacitor value, farads (paper: 4.7 uF).
        retention_time: seconds of unpowered time before reversion
            (paper: ~3 minutes).
        v_latch: latch operating voltage, volts.
        area: board area of the switch module, m^2 (paper: 80 mm^2 with
            debug features).
        leakage_current: standing leakage while powered, amperes.
    """

    name: str
    polarity: SwitchPolarity = SwitchPolarity.NORMALLY_OPEN
    latch_capacitance: float = 4.7e-6
    retention_time: float = 180.0
    v_latch: float = 2.5
    area: float = 80e-6
    leakage_current: float = 25e-9
    _commanded_closed: bool = field(init=False)
    _last_replenished: float = field(init=False, default=0.0)
    _toggles: int = field(init=False, default=0)
    #: Monotone change counter so callers (the reservoir's active-set
    #: cache) can detect state changes cheaply.
    version: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.latch_capacitance <= 0.0:
            raise ConfigurationError("latch_capacitance must be positive")
        if self.retention_time <= 0.0:
            raise ConfigurationError("retention_time must be positive")
        if self.area <= 0.0:
            raise ConfigurationError("area must be positive")
        self._commanded_closed = self.polarity is SwitchPolarity.NORMALLY_CLOSED

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------

    @property
    def default_closed(self) -> bool:
        """State the switch reverts to when the latch decays."""
        return self.polarity is SwitchPolarity.NORMALLY_CLOSED

    @property
    def toggle_count(self) -> int:
        """Number of commanded state changes (wear observation)."""
        return self._toggles

    def is_closed(self, time: float) -> bool:
        """Effective switch state at *time*.

        If the latch has not been replenished within the retention time,
        the commanded state is lost and the default applies.  Reversion
        is *silent*: the runtime cannot observe it (the paper notes an
        introspection circuit would ruin retention), so this method also
        updates the internal commanded state on reversion — exactly the
        "runtime remains unaware" behaviour of Section 5.2.
        """
        if time - self._last_replenished > self.retention_time:
            if self._commanded_closed != self.default_closed:
                self.version += 1
            self._commanded_closed = self.default_closed
        return self._commanded_closed

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def set_closed(self, closed: bool, time: float) -> float:
        """Command the switch state at *time* (device must be powered).

        Returns:
            Energy consumed by the GPIO interface charging or
            discharging the latch capacitor, joules.
        """
        # Resolve any pending reversion first so a toggle is counted
        # against the true current state.
        current = self.is_closed(time)
        self._last_replenished = time
        if closed == current:
            return 0.0
        self._commanded_closed = closed
        self._toggles += 1
        self.version += 1
        return capacitor_energy(self.latch_capacitance, self.v_latch)

    def replenish(self, time: float) -> None:
        """Top up the latch (called while the device is powered)."""
        # Resolve reversion before refreshing: if the latch already
        # decayed, power returning must not resurrect the old state.
        self.is_closed(time)
        self._last_replenished = time

    def time_to_reversion(self, time: float) -> float:
        """Seconds of additional darkness before the state reverts."""
        remaining = self.retention_time - (time - self._last_replenished)
        return max(0.0, remaining) if remaining > -math.inf else 0.0
