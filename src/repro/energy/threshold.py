"""The Vtop-threshold design alternative (Section 5.2).

Instead of switching capacitance ``C``, energy capacity can be
reconfigured by changing the voltage ``V_top`` to which a single large
capacitor is charged, using a non-volatile EEPROM digital potentiometer
feeding a voltage supervisor (this is the mechanism DEBS uses).  The
paper prototyped this alternative and rejected it for Capybara because:

* it occupies **twice the board area** of a bank switch,
* it draws **1.5x the leakage current**,
* the EEPROM potentiometer has **limited write endurance**, bounding
  device lifetime, and
* cold start is slowest of all mechanisms: the capacitor must charge
  past the output booster's minimum before *any* usable energy exists,
  and the full capacitance is always attached, so even small energy
  targets charge slowly.

This module implements the alternative faithfully so the ablation bench
(`benchmarks/test_bench_ablation.py`) can regenerate the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, WearLimitExceeded
from repro.energy.bank import BankSpec, CapacitorBank
from repro.energy.switch import BankSwitch


@dataclass
class ThresholdReconfigurator:
    """Vtop-based capacity reconfiguration over one fixed bank.

    Attributes:
        bank_spec: the single, always-connected capacitor bank.
        v_top_min: lowest settable charge threshold, volts.  Must exceed
            the output booster's minimum input or the setting is useless.
        write_endurance: EEPROM potentiometer write cycles before wear-out.
        area: board area of the threshold circuit, m^2 (2x a switch).
        leakage_current: standing leakage, amperes (1.5x a switch).
    """

    bank_spec: BankSpec
    v_top_min: float = 1.6
    write_endurance: int = 50_000
    area: float = 160e-6
    leakage_current: float = 37.5e-9
    _v_top: float = field(init=False)
    _writes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.v_top_min <= 0.0:
            raise ConfigurationError("v_top_min must be positive")
        if self.v_top_min > self.bank_spec.rated_voltage:
            raise ConfigurationError(
                "v_top_min exceeds the bank's rated voltage"
            )
        if self.write_endurance <= 0:
            raise ConfigurationError("write_endurance must be positive")
        self._v_top = self.bank_spec.rated_voltage
        self.bank = CapacitorBank(self.bank_spec)

    # ------------------------------------------------------------------
    # Reconfiguration
    # ------------------------------------------------------------------

    @property
    def v_top(self) -> float:
        """Current charge-termination threshold, volts."""
        return self._v_top

    @property
    def writes(self) -> int:
        """EEPROM writes performed so far."""
        return self._writes

    @property
    def worn_out(self) -> bool:
        return self._writes >= self.write_endurance

    def set_v_top(self, v_top: float) -> None:
        """Program a new charge threshold (one EEPROM write).

        Raises:
            ConfigurationError: if the threshold is outside the settable
                range.
            WearLimitExceeded: if the potentiometer's write endurance is
                exhausted.
        """
        if not self.v_top_min <= v_top <= self.bank_spec.rated_voltage:
            raise ConfigurationError(
                f"v_top {v_top} outside "
                f"[{self.v_top_min}, {self.bank_spec.rated_voltage}]"
            )
        if self.worn_out:
            raise WearLimitExceeded(
                f"EEPROM potentiometer exhausted its {self.write_endurance} "
                "write cycles"
            )
        if v_top != self._v_top:
            self._writes += 1
            self._v_top = v_top

    def v_top_for_energy(self, energy: float) -> float:
        """Lowest legal threshold storing at least *energy* joules
        above zero volts.

        Raises:
            ConfigurationError: if even the rated voltage stores less
                than *energy*.
        """
        if energy < 0.0:
            raise ConfigurationError("energy must be non-negative")
        c = self.bank_spec.capacitance
        v_needed = (2.0 * energy / c) ** 0.5
        if v_needed > self.bank_spec.rated_voltage + 1e-12:
            raise ConfigurationError(
                f"bank cannot store {energy} J below its rated voltage"
            )
        return max(self.v_top_min, v_needed)

    # ------------------------------------------------------------------
    # Comparison helpers (Section 5.2 accounting)
    # ------------------------------------------------------------------

    def area_ratio_to(self, switch: BankSwitch) -> float:
        """Area relative to one bank switch (paper reports 2x)."""
        return self.area / switch.area

    def leakage_ratio_to(self, switch: BankSwitch) -> float:
        """Leakage relative to one bank switch (paper reports 1.5x)."""
        return self.leakage_current / switch.leakage_current
