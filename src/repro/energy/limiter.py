"""Input voltage limiter (Section 5.1).

The limiter lets the harvester's open-circuit voltage exceed component
ratings safely — e.g. solar panels wired in series for dim light would
produce damagingly high voltage in bright light.  We model a series-pass
limiter: output voltage is clamped to ``v_clamp``; when clamping, the
excess voltage headroom is dissipated, so the available power scales by
``v_clamp / v_in``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class InputVoltageLimiter:
    """Series-pass clamp between the harvester and the input booster.

    Attributes:
        v_clamp: maximum voltage passed downstream, volts.
    """

    v_clamp: float = 5.5

    def __post_init__(self) -> None:
        if self.v_clamp <= 0.0:
            raise ConfigurationError("v_clamp must be positive")

    def limit(self, voltage: float, power: float) -> Tuple[float, float]:
        """Clamp a harvester operating point.

        Args:
            voltage: harvester output voltage, volts.
            power: harvester available power, watts.

        Returns:
            ``(voltage, power)`` after limiting.  Below the clamp the
            point passes through unchanged; above it, voltage is clamped
            and power is reduced by the pass-element drop.
        """
        if voltage < 0.0:
            raise ConfigurationError(f"voltage must be non-negative, got {voltage}")
        if power < 0.0:
            raise ConfigurationError(f"power must be non-negative, got {power}")
        if voltage <= self.v_clamp:
            return voltage, power
        return self.v_clamp, power * (self.v_clamp / voltage)
