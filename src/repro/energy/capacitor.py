"""Capacitor technologies and the single-capacitor electrical model.

The paper provisions banks from three capacitor families (Section 6.1's
"400 uF ceramic + 330 uF tantalum + 67.5 mF EDLC" style recipes) and its
Figure 4 design-space study contrasts ceramic X5R parts against the
ultra-compact CPH3225A supercapacitor, whose very high equivalent series
resistance (ESR) limits extractable energy.  This module defines:

* :class:`CapacitorSpec` — an immutable datasheet-style description of a
  capacitor part (capacitance, ESR, leakage, rated voltage, volume,
  cycle endurance, derating);
* :class:`Capacitor` — a stateful single part tracking its voltage and
  charge/discharge cycle wear;
* reference specs for the three technologies used throughout the
  reproduction.

Constants are datasheet-order values chosen so the shapes of the paper's
Figures 3 and 4 hold; see DESIGN.md Section 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import cached_property
from typing import Iterable

from repro.errors import ConfigurationError, PowerSystemError, WearLimitExceeded
from repro.units import capacitor_energy


@dataclass(frozen=True)
class CapacitorSpec:
    """Datasheet-style description of one capacitor part.

    Attributes:
        name: human-readable part/family name.
        technology: one of ``"ceramic"``, ``"tantalum"``, ``"edlc"``.
        capacitance: nominal capacitance, farads.
        esr: equivalent series resistance, ohms.
        leak_resistance: parallel self-discharge resistance, ohms.
        rated_voltage: maximum safe terminal voltage, volts.
        volume: package volume, cubic metres.
        cycle_endurance: rated full charge/discharge cycles before the
            part is considered worn out (``math.inf`` for ceramics).
        derating: fraction of nominal capacitance available after
            standard derating for bias and aging (Section 3 of the paper
            mentions derating as the provisioning margin practice).
    """

    name: str
    technology: str
    capacitance: float
    esr: float
    leak_resistance: float
    rated_voltage: float
    volume: float
    cycle_endurance: float = math.inf
    derating: float = 1.0

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ConfigurationError(f"{self.name}: capacitance must be positive")
        if self.esr < 0.0:
            raise ConfigurationError(f"{self.name}: esr must be non-negative")
        if self.leak_resistance <= 0.0:
            raise ConfigurationError(f"{self.name}: leak_resistance must be positive")
        if self.rated_voltage <= 0.0:
            raise ConfigurationError(f"{self.name}: rated_voltage must be positive")
        if self.volume <= 0.0:
            raise ConfigurationError(f"{self.name}: volume must be positive")
        if not 0.0 < self.derating <= 1.0:
            raise ConfigurationError(f"{self.name}: derating must be in (0, 1]")
        if self.technology not in ("ceramic", "tantalum", "edlc"):
            raise ConfigurationError(
                f"{self.name}: unknown technology {self.technology!r}"
            )

    @cached_property
    def effective_capacitance(self) -> float:
        """Capacitance after derating, farads."""
        return self.capacitance * self.derating

    def energy_at(self, voltage: float) -> float:
        """Energy stored at *voltage* relative to fully drained, joules."""
        return capacitor_energy(self.effective_capacitance, voltage)

    def max_energy(self) -> float:
        """Energy stored at the rated voltage, joules."""
        return self.energy_at(self.rated_voltage)

    def energy_density(self) -> float:
        """Maximum stored energy per unit volume, J/m^3 (Figure 4 axis)."""
        return self.max_energy() / self.volume

    def spec_dict(self) -> dict:
        """This part as a plain JSON-safe dict (:mod:`repro.spec` part
        schema).  Unlimited cycle endurance (``math.inf``) serialises as
        ``None``, which JSON can carry."""
        return {
            "name": self.name,
            "technology": self.technology,
            "capacitance": self.capacitance,
            "esr": self.esr,
            "leak_resistance": self.leak_resistance,
            "rated_voltage": self.rated_voltage,
            "volume": self.volume,
            "cycle_endurance": (
                None if math.isinf(self.cycle_endurance) else self.cycle_endurance
            ),
            "derating": self.derating,
        }

    def scaled(self, count: int) -> "CapacitorSpec":
        """Spec of *count* identical parts wired in parallel.

        Capacitance and volume scale up by *count*; ESR scales down
        (parallel resistances) — the mechanism behind Figure 4's
        observation that paralleling supercapacitors recovers usable
        energy by cutting ESR.  Leakage resistance also divides.
        """
        if count < 1:
            raise ConfigurationError(f"count must be >= 1, got {count}")
        return replace(
            self,
            name=f"{self.name} x{count}",
            capacitance=self.capacitance * count,
            esr=self.esr / count,
            leak_resistance=self.leak_resistance / count,
            volume=self.volume * count,
        )


def parallel_esr(esrs: Iterable[float]) -> float:
    """Combined ESR of parallel parts (resistors in parallel).

    Parts with zero ESR short the combination to zero.
    """
    inverse = 0.0
    for esr in esrs:
        if esr < 0.0:
            raise ConfigurationError(f"esr must be non-negative, got {esr}")
        if esr == 0.0:
            return 0.0
        inverse += 1.0 / esr
    if inverse == 0.0:
        raise ConfigurationError("parallel_esr of an empty collection")
    return 1.0 / inverse


class Capacitor:
    """A single stateful capacitor: a spec plus terminal voltage and wear.

    Energy accounting is exact: :meth:`store` and :meth:`extract` convert
    between joules and the terminal voltage via ``E = 1/2 C V^2``.  Wear is
    tracked as *equivalent full cycles*: each joule moved through the part
    counts as ``1 / max_energy`` of a cycle, which approximates datasheet
    cycle-life accounting for partial cycles.
    """

    def __init__(self, spec: CapacitorSpec, initial_voltage: float = 0.0) -> None:
        if initial_voltage < 0.0 or initial_voltage > spec.rated_voltage:
            raise ConfigurationError(
                f"initial voltage {initial_voltage} outside [0, {spec.rated_voltage}]"
            )
        self.spec = spec
        self._voltage = float(initial_voltage)
        self._cycles = 0.0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def voltage(self) -> float:
        """Current terminal voltage, volts."""
        return self._voltage

    @property
    def energy(self) -> float:
        """Current stored energy relative to fully drained, joules."""
        return self.spec.energy_at(self._voltage)

    @property
    def equivalent_cycles(self) -> float:
        """Accumulated wear, in equivalent full charge/discharge cycles."""
        return self._cycles

    @property
    def worn_out(self) -> bool:
        """Whether wear exceeds the rated cycle endurance."""
        return self._cycles > self.spec.cycle_endurance

    # ------------------------------------------------------------------
    # Energy movement
    # ------------------------------------------------------------------

    def set_voltage(self, voltage: float) -> None:
        """Force the terminal voltage (initialisation / test helper)."""
        if voltage < 0.0 or voltage > self.spec.rated_voltage:
            raise PowerSystemError(
                f"voltage {voltage} outside [0, {self.spec.rated_voltage}]"
            )
        self._voltage = float(voltage)

    def store(self, energy: float) -> float:
        """Add *energy* joules, clipping at the rated voltage.

        Returns:
            The energy actually absorbed (less than *energy* if the part
            saturated at its rated voltage).
        """
        if energy < 0.0:
            raise PowerSystemError(f"cannot store negative energy ({energy})")
        headroom = self.spec.max_energy() - self.energy
        absorbed = min(energy, headroom)
        new_energy = self.energy + absorbed
        self._voltage = math.sqrt(
            2.0 * new_energy / self.spec.effective_capacitance
        )
        self._wear(absorbed)
        return absorbed

    def extract(self, energy: float) -> float:
        """Remove *energy* joules, clipping at fully drained.

        Returns:
            The energy actually delivered.
        """
        if energy < 0.0:
            raise PowerSystemError(f"cannot extract negative energy ({energy})")
        available = self.energy
        delivered = min(energy, available)
        new_energy = available - delivered
        self._voltage = math.sqrt(
            2.0 * new_energy / self.spec.effective_capacitance
        )
        self._wear(delivered)
        return delivered

    def leak(self, duration: float) -> float:
        """Self-discharge through the leak resistance for *duration* seconds.

        Models the parallel leak resistance as an RC decay:
        ``V(t) = V0 * exp(-t / (R_leak * C))``.

        Returns:
            Energy lost to leakage, joules.
        """
        if duration < 0.0:
            raise PowerSystemError(f"duration must be non-negative, got {duration}")
        if duration == 0.0 or self._voltage == 0.0:
            return 0.0
        tau = self.spec.leak_resistance * self.spec.effective_capacitance
        before = self.energy
        self._voltage *= math.exp(-duration / tau)
        return before - self.energy

    def check_wear(self) -> None:
        """Raise :class:`WearLimitExceeded` if the part is worn out."""
        if self.worn_out:
            raise WearLimitExceeded(
                f"{self.spec.name}: {self._cycles:.1f} equivalent cycles exceeds "
                f"endurance of {self.spec.cycle_endurance}"
            )

    def _wear(self, energy_moved: float) -> None:
        max_energy = self.spec.max_energy()
        if max_energy > 0.0 and math.isfinite(self.spec.cycle_endurance):
            # A full cycle moves max_energy twice (charge + discharge);
            # count each direction as half a cycle worth of throughput.
            self._cycles += 0.5 * energy_moved / max_energy


# ---------------------------------------------------------------------------
# Reference parts (datasheet-order constants; see DESIGN.md Section 3)
# ---------------------------------------------------------------------------

#: Multi-layer ceramic X5R chip capacitor, 1210-class package.  Low ESR
#: and effectively unlimited cycle life, but low energy density — the
#: "ceramic" series of Figure 4.
CERAMIC_X5R = CapacitorSpec(
    name="X5R-100uF",
    technology="ceramic",
    capacitance=100e-6,
    esr=0.015,
    leak_resistance=50e6,
    rated_voltage=6.3,
    volume=20e-9,  # ~3.2 x 2.5 x 2.5 mm
    cycle_endurance=math.inf,
    derating=0.8,  # X5R loses capacitance under DC bias
)

#: Polymer tantalum, mid-density option used in the paper's mixed banks.
TANTALUM_POLYMER = CapacitorSpec(
    name="Tant-330uF",
    technology="tantalum",
    capacitance=330e-6,
    esr=0.1,
    leak_resistance=10e6,
    rated_voltage=6.3,
    volume=40e-9,  # ~7.3 x 4.3 x 1.9 mm (D case)
    cycle_endurance=math.inf,
    derating=0.95,
)

#: Seiko CPH3225A ultra-compact EDLC supercapacitor: extreme density but
#: ~160 ohm ESR and limited cycle endurance — the "supercap" series of
#: Figure 4 whose high ESR strands stored energy without output boosting.
EDLC_CPH3225A = CapacitorSpec(
    name="CPH3225A-11mF",
    technology="edlc",
    capacitance=11e-3,
    esr=160.0,
    leak_resistance=2e6,
    rated_voltage=3.3,
    volume=7.2e-9,  # 3.2 x 2.5 x 0.9 mm
    cycle_endurance=100_000.0,
    derating=1.0,
)
