"""Circuit-level energy substrate.

Everything the Capybara board does with electrons is modelled here:
capacitor technologies and parallel banks (:mod:`repro.energy.capacitor`,
:mod:`repro.energy.bank`), harvesters and their environments
(:mod:`repro.energy.harvester`, :mod:`repro.energy.environment`), the
power-distribution circuit (:mod:`repro.energy.limiter`,
:mod:`repro.energy.booster`), the latch-capacitor bank switch
(:mod:`repro.energy.switch`), the Vtop-threshold design alternative
(:mod:`repro.energy.threshold`), and the reconfigurable reservoir that
ties banks and switches together (:mod:`repro.energy.reservoir`).
"""

from repro.energy.bank import BankSpec, CapacitorBank
from repro.energy.booster import InputBooster, OutputBooster
from repro.energy.capacitor import (
    CERAMIC_X5R,
    EDLC_CPH3225A,
    TANTALUM_POLYMER,
    Capacitor,
    CapacitorSpec,
    parallel_esr,
)
from repro.energy.environment import (
    FULL_SUN,
    ConstantTrace,
    DimmedLampTrace,
    EnvironmentTrace,
    OrbitTrace,
    PiecewiseTrace,
)
from repro.energy.harvester import (
    Harvester,
    RegulatedSupply,
    RFHarvester,
    SolarPanel,
)
from repro.energy.limiter import InputVoltageLimiter
from repro.energy.reservoir import ReconfigurableReservoir, ReservoirConfig
from repro.energy.switch import BankSwitch, SwitchPolarity
from repro.energy.threshold import ThresholdReconfigurator

__all__ = [
    "CapacitorSpec",
    "Capacitor",
    "parallel_esr",
    "CERAMIC_X5R",
    "TANTALUM_POLYMER",
    "EDLC_CPH3225A",
    "BankSpec",
    "CapacitorBank",
    "FULL_SUN",
    "EnvironmentTrace",
    "ConstantTrace",
    "DimmedLampTrace",
    "OrbitTrace",
    "PiecewiseTrace",
    "Harvester",
    "RegulatedSupply",
    "SolarPanel",
    "RFHarvester",
    "InputVoltageLimiter",
    "InputBooster",
    "OutputBooster",
    "BankSwitch",
    "SwitchPolarity",
    "ThresholdReconfigurator",
    "ReconfigurableReservoir",
    "ReservoirConfig",
]
