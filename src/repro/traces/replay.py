"""Replay a recorded environment trace as an :class:`EnvironmentTrace`.

:class:`ReplayTrace` implements the same trace-callable contract as the
synthetic environments in :mod:`repro.energy.environment` — simulation
time in, intensity out — but sources its samples from either an on-disk
:mod:`repro.traces` file (chunk-seek, bounded memory) or an inline
sample list carried in a scenario spec.

Interpolation semantics:

* ``"hold"`` (default, zero-order hold): the level at time *t* is the
  level of the greatest sample time ≤ *t*.  This makes a replayed trace
  piecewise-constant — exactly the shape the vectorized backend can
  compile into per-segment operating points.
* ``"linear"``: straight-line interpolation between neighbouring
  samples.  Smoother, but time-varying within a step, so the vec
  backend rejects it (scalar only).

Outside the recorded span the trace clamps: before the first sample it
holds the first level, after the last it holds the last level.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TraceFormatError
from repro.traces.format import INTERPOLATIONS, TraceReader, content_hash


class ReplayTrace:
    """A recorded environment, replayable as ``trace(time) -> level``.

    Construct via :meth:`open` (file-backed, seekable, at most two
    chunks resident) or :meth:`from_samples` (inline spec samples).
    """

    def __init__(
        self,
        samples: Sequence[Tuple[float, float]],
        interpolation: str = "hold",
        units: str = "W/m^2",
        trace_hash: Optional[str] = None,
    ) -> None:
        if interpolation not in INTERPOLATIONS:
            raise TraceFormatError(
                f"interpolation must be one of {INTERPOLATIONS}, got {interpolation!r}"
            )
        times: List[float] = []
        levels: List[float] = []
        previous = -math.inf
        for pair in samples:
            try:
                time, level = float(pair[0]), float(pair[1])
            except (TypeError, ValueError, IndexError) as error:
                raise TraceFormatError(
                    f"inline trace samples must be [time, level] pairs: {error}"
                ) from error
            if not math.isfinite(time) or time <= previous:
                raise TraceFormatError(
                    "inline trace sample times must be finite and strictly "
                    f"increasing, got {time!r} after {previous!r}"
                )
            if not math.isfinite(level) or level < 0.0:
                raise TraceFormatError(
                    f"inline trace levels must be finite and non-negative, got {level!r}"
                )
            previous = time
            times.append(time)
            levels.append(level)
        if not times:
            raise TraceFormatError("a replay trace needs at least one sample")
        self._times = times
        self._levels = levels
        self.interpolation = interpolation
        self.units = units
        self._path: Optional[str] = None
        self._reader: Optional[TraceReader] = None
        self._hash = trace_hash or content_hash(
            list(zip(times, levels)), units=units, interpolation=interpolation
        )
        self.t_start = times[0]
        self.t_end = times[-1]
        self.n_samples = len(times)

    # -- constructors ------------------------------------------------------

    @classmethod
    def open(
        cls,
        path,
        interpolation: Optional[str] = None,
        expected_hash: Optional[str] = None,
    ) -> "ReplayTrace":
        """Replay the trace file at *path* without materializing it.

        *interpolation* overrides the policy recorded in the header (the
        override is part of the scenario spec, so cache keys still
        distinguish it).  A pinned *expected_hash* that does not match
        the file's recorded ``trace_hash`` raises
        :class:`~repro.errors.TraceFormatError` immediately.
        """
        reader = TraceReader(path, expected_hash=expected_hash)
        trace = cls.__new__(cls)
        trace._reader = reader
        trace._path = reader.path
        trace._times = []
        trace._levels = []
        trace.interpolation = interpolation or reader.interpolation
        if trace.interpolation not in INTERPOLATIONS:
            reader.close()
            raise TraceFormatError(
                f"interpolation must be one of {INTERPOLATIONS}, "
                f"got {trace.interpolation!r}"
            )
        trace.units = reader.units
        trace._hash = reader.trace_hash
        trace.t_start = reader.t0
        trace.t_end = reader.t_end
        trace.n_samples = reader.n_samples
        # Small LRU of verified chunks: holds the current chunk plus its
        # successor (linear interpolation peeks across the boundary).
        trace._chunks = {}
        trace._chunk_order = []
        return trace

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[Tuple[float, float]],
        interpolation: str = "hold",
        units: str = "W/m^2",
    ) -> "ReplayTrace":
        """Replay inline ``[[time, level], ...]`` spec samples."""
        return cls(samples, interpolation=interpolation, units=units)

    # -- identity ----------------------------------------------------------

    @property
    def trace_hash(self) -> str:
        """Content digest of the recorded samples (cache-key component)."""
        return self._hash

    @property
    def path(self) -> Optional[str]:
        """Backing file path, or ``None`` for inline traces."""
        return self._path

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def spec_dict(self) -> dict:
        """This trace as a plain dict (:mod:`repro.spec` trace schema)."""
        if self._path is not None:
            return {
                "kind": "replay",
                "path": self._path,
                "trace_hash": self._hash,
                "interpolation": self.interpolation,
            }
        return {
            "kind": "replay",
            "samples": [[time, level] for time, level in zip(self._times, self._levels)],
            "interpolation": self.interpolation,
        }

    # -- sample access -----------------------------------------------------

    def _chunk(self, i: int) -> Tuple[List[float], List[float]]:
        assert self._reader is not None
        cached = self._chunks.get(i)
        if cached is not None:
            return cached
        loaded = self._reader.chunk(i)
        self._chunks[i] = loaded
        self._chunk_order.append(i)
        while len(self._chunk_order) > 2:
            evicted = self._chunk_order.pop(0)
            if evicted in self._chunks and evicted != i:
                del self._chunks[evicted]
        return loaded

    def _locate(self, time: float) -> Tuple[float, float, Optional[Tuple[float, float]]]:
        """The sample at-or-before *time* plus its successor (if any)."""
        if self._reader is None:
            times, levels = self._times, self._levels
            position = bisect_right(times, time) - 1
            if position < 0:
                return times[0], levels[0], None
            after = (
                (times[position + 1], levels[position + 1])
                if position + 1 < len(times)
                else None
            )
            return times[position], levels[position], after
        index = self._reader.index
        chunk_i = bisect_right([entry[1] for entry in index], time) - 1
        if chunk_i < 0:
            times, levels = self._chunk(0)
            return times[0], levels[0], None
        times, levels = self._chunk(chunk_i)
        position = bisect_right(times, time) - 1
        if position < 0:
            # Between the previous chunk's last sample and this chunk's
            # first; the hold sample lives in the previous chunk.
            if chunk_i == 0:
                return times[0], levels[0], None
            prev_times, prev_levels = self._chunk(chunk_i - 1)
            return prev_times[-1], prev_levels[-1], (times[0], levels[0])
        if position + 1 < len(times):
            after: Optional[Tuple[float, float]] = (times[position + 1], levels[position + 1])
        elif chunk_i + 1 < len(index):
            next_times, next_levels = self._chunk(chunk_i + 1)
            after = (next_times[0], next_levels[0])
        else:
            after = None
        return times[position], levels[position], after

    def __call__(self, time: float) -> float:
        t_at, level_at, after = self._locate(time)
        if self.interpolation == "hold" or after is None or time <= t_at:
            return level_at
        t_next, level_next = after
        if t_next <= t_at:  # pragma: no cover - guarded by writer validation
            return level_at
        fraction = (time - t_at) / (t_next - t_at)
        return level_at + (level_next - level_at) * fraction

    def change_times(self, until: Optional[float] = None) -> List[float]:
        """Times where the replayed level changes (hold interpolation).

        Streams the samples (bounded memory for file-backed traces) and
        collects every sample time whose level differs from its
        predecessor, up to *until* (exclusive) when given.  The vec
        backend compiles these into segment boundaries.
        """
        changes: List[float] = []
        previous: Optional[float] = None
        for time, level in self.iter_samples():
            if until is not None and time >= until:
                break
            if previous is not None and level != previous:
                changes.append(time)
            previous = level
        return changes

    def iter_samples(self):
        """Stream ``(time, level)`` pairs (verified chunks, one at a time)."""
        if self._reader is None:
            yield from zip(self._times, self._levels)
        else:
            yield from self._reader.iter_samples()

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()

    def __repr__(self) -> str:
        source = self._path if self._path is not None else f"{self.n_samples} inline samples"
        return (
            f"ReplayTrace({source}, interpolation={self.interpolation!r}, "
            f"trace_hash={self._hash[:12]}...)"
        )


# Pickling support: campaign workers receive scenarios as canonical JSON
# and rebuild traces themselves, but a ReplayTrace captured inside an app
# closure must still cross a process boundary (ScenarioBuilder pickles by
# spec, so this is a safety net for direct API users).
def _rebuild_replay(path, samples, interpolation, units):
    if path is not None:
        return ReplayTrace.open(path, interpolation=interpolation)
    return ReplayTrace(samples, interpolation=interpolation, units=units)


def _reduce_replay(trace: ReplayTrace):
    if trace._path is not None:
        return _rebuild_replay, (trace._path, None, trace.interpolation, trace.units)
    samples = list(zip(trace._times, trace._levels))
    return _rebuild_replay, (None, samples, trace.interpolation, trace.units)


ReplayTrace.__reduce__ = _reduce_replay  # type: ignore[assignment]
