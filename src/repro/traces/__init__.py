"""First-class environment traces: record once, replay many.

The paper drives every board from a physical energy environment; this
package makes those environments durable artifacts instead of ad-hoc
Python callables — a versioned, chunked, seekable on-disk format with
per-chunk sha256 checksums and a content ``trace_hash`` (the cache-key
component), a streaming writer/reader pair that never materializes a
multi-day trace, and :class:`ReplayTrace`, which replays a recording
through the same ``trace(time) -> level`` contract the synthetic
environments implement.

Typical round trip::

    from repro.energy.environment import DimmedLampTrace
    from repro.traces import ReplayTrace

    lamp = DimmedLampTrace(full_irradiance=1000.0, duty=0.42)
    lamp.record("halogen.rtrc", duration=600.0, dt=0.05)
    replay = ReplayTrace.open("halogen.rtrc")
    assert replay(3.7) == lamp(3.7)

Corruption anywhere (flipped bytes, truncation, a stale pinned hash)
raises :class:`repro.errors.TraceFormatError` — never garbage samples.
"""

from repro.traces.format import (
    DEFAULT_CHUNK_SAMPLES,
    INTERPOLATIONS,
    TRACE_FORMAT_VERSION,
    TRACE_MAGIC,
    TraceReader,
    TraceWriter,
    compute_trace_hash,
    content_hash,
)
from repro.traces.record import record_trace
from repro.traces.replay import ReplayTrace

__all__ = [
    "TRACE_MAGIC",
    "TRACE_FORMAT_VERSION",
    "DEFAULT_CHUNK_SAMPLES",
    "INTERPOLATIONS",
    "TraceReader",
    "TraceWriter",
    "ReplayTrace",
    "record_trace",
    "content_hash",
    "compute_trace_hash",
]
