"""Record a synthetic environment into the on-disk trace format.

``record_trace`` is the bridge from the closure-shaped environments in
:mod:`repro.energy.environment` (and anything else satisfying the
:class:`~repro.energy.environment.EnvironmentTrace` contract) to the
record-once/replay-many workflow: sample the callable on a regular grid,
stream the samples through a :class:`~repro.traces.format.TraceWriter`
(bounded memory), and hand back a :class:`~repro.traces.replay.ReplayTrace`
over the recording.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import TraceFormatError
from repro.traces.format import DEFAULT_CHUNK_SAMPLES, TraceWriter
from repro.traces.replay import ReplayTrace


def record_trace(
    source: Callable[[float], float],
    path,
    duration: float,
    dt: float,
    t0: float = 0.0,
    units: str = "W/m^2",
    interpolation: str = "hold",
    metadata: Optional[dict] = None,
    chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
) -> ReplayTrace:
    """Sample ``source(t)`` at ``t0 + i*dt`` over *duration* into *path*.

    The endpoint is included (``floor(duration/dt) + 1`` samples), so a
    replay covers the full ``[t0, t0 + duration]`` span without falling
    into the hold-last-level clamp at the horizon.  Returns a
    :class:`ReplayTrace` opened over the finished file.

    If *source* changes level only at multiples of *dt* (every synthetic
    piecewise environment recorded on its own grid), hold-replay of the
    recording is **exactly** the source — the property the differential
    golden tests pin bit-for-bit.
    """
    duration = float(duration)
    dt = float(dt)
    if not (math.isfinite(duration) and duration > 0.0):
        raise TraceFormatError(f"duration must be positive, got {duration!r}")
    if not (math.isfinite(dt) and dt > 0.0):
        raise TraceFormatError(f"dt must be positive, got {dt!r}")
    count = int(math.floor(duration / dt + 1e-9)) + 1
    with TraceWriter(
        path,
        t0=t0,
        dt=dt,
        units=units,
        interpolation=interpolation,
        metadata=metadata,
        chunk_samples=chunk_samples,
    ) as writer:
        for i in range(count):
            writer.append(source(t0 + i * dt))
    return ReplayTrace.open(path)
