"""The on-disk environment-trace format: versioned, chunked, seekable.

Record-once/replay-many harvesting traces are what make batteryless
evaluation reproducible: capture an energy environment once (a dimmed
halogen, a bench supply, an orbit — or real captured hardware data) and
replay it bit-identically against many configurations.  This module
defines the container those recordings live in.

Layout — UTF-8 text, one JSON document per line, in the spirit of the
v3 result cache's checksum framing:

* **Header** (first line): ``{"magic": "RTRC", "version": 1, "t0": ...,
  "dt": <float or null>, "units": ..., "interpolation": "hold"|"linear",
  "chunk_samples": N, "metadata": {...}}``.  ``dt`` non-null means
  *regular* sampling — times are implied as ``t0 + i*dt`` and chunks
  store bare levels.  ``dt: null`` means *timestamped* frames — chunks
  store ``[time, level]`` pairs.
* **Chunks** (middle lines): ``{"chunk": i, "t0": ..., "count": n,
  "samples": [...], "sha256": hex}`` where the checksum is the sha256 of
  the canonical JSON (sorted keys, compact separators) of the chunk
  object *without* its ``sha256`` key.  A flipped byte anywhere in a
  chunk fails this check and raises :class:`TraceFormatError` — the
  reader never yields garbage samples.
* **Footer** (last line): ``{"footer": 1, "chunks": C, "count": M,
  "t_end": ..., "index": [[byte_offset, chunk_t0, count], ...],
  "trace_hash": hex}``.  The index makes the file seekable: a reader
  jumps straight to the chunk covering a requested time without
  scanning, and streaming iteration never holds more than one chunk in
  memory.

``trace_hash`` is the *content* digest: sha256 over the semantic header
(version, units, interpolation) plus every resolved ``[time, level]``
sample in order.  It is deliberately independent of ``chunk_samples``
and of the regular-vs-timestamped encoding, so the same environment
recorded with different chunking hashes identically — that hash is what
cache keys embed.
"""

from __future__ import annotations

import hashlib
import io
import json
import math
import os
from typing import IO, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TraceFormatError

#: File magic for the trace container.
TRACE_MAGIC = "RTRC"

#: Current trace schema version.
TRACE_FORMAT_VERSION = 1

#: Default samples per chunk.  4096 float samples is ~100 KB of JSON —
#: small enough to page in per seek, large enough to amortize checksums.
DEFAULT_CHUNK_SAMPLES = 4096

#: Interpolation policies a trace may declare.
INTERPOLATIONS = ("hold", "linear")


def _canonical(data) -> str:
    """Canonical JSON: sorted keys, no whitespace (the spec-layer rule)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _check_level(level: float) -> float:
    level = float(level)
    if not math.isfinite(level) or level < 0.0:
        raise TraceFormatError(
            f"trace levels must be finite and non-negative, got {level!r}"
        )
    return level


class _ContentDigest:
    """Streaming ``trace_hash`` accumulator over resolved samples."""

    def __init__(self, units: str, interpolation: str) -> None:
        self._digest = hashlib.sha256()
        self._digest.update(
            _canonical(
                {
                    "interpolation": interpolation,
                    "units": units,
                    "version": TRACE_FORMAT_VERSION,
                }
            ).encode("utf-8")
        )
        self._digest.update(b"\n")

    def add(self, time: float, level: float) -> None:
        self._digest.update(_canonical([time, level]).encode("utf-8"))
        self._digest.update(b"\n")

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def content_hash(
    samples: Sequence[Tuple[float, float]],
    units: str = "W/m^2",
    interpolation: str = "hold",
) -> str:
    """``trace_hash`` of an in-memory ``[(time, level), ...]`` sequence.

    Inline spec samples and an on-disk file with identical resolved
    content produce identical hashes.
    """
    digest = _ContentDigest(units, interpolation)
    for time, level in samples:
        digest.add(float(time), float(level))
    return digest.hexdigest()


class TraceWriter:
    """Streaming writer: buffers at most one chunk of samples.

    Use as a context manager, or call :meth:`close` explicitly; the
    footer (chunk index + ``trace_hash``) is written on close and the
    final hash is available as :attr:`trace_hash` afterwards.
    """

    def __init__(
        self,
        path,
        t0: float = 0.0,
        dt: Optional[float] = None,
        units: str = "W/m^2",
        interpolation: str = "hold",
        metadata: Optional[dict] = None,
        chunk_samples: int = DEFAULT_CHUNK_SAMPLES,
    ) -> None:
        if interpolation not in INTERPOLATIONS:
            raise TraceFormatError(
                f"interpolation must be one of {INTERPOLATIONS}, got {interpolation!r}"
            )
        if dt is not None and not (math.isfinite(dt) and dt > 0.0):
            raise TraceFormatError(f"dt must be positive and finite, got {dt!r}")
        if not math.isfinite(t0):
            raise TraceFormatError(f"t0 must be finite, got {t0!r}")
        if chunk_samples < 1:
            raise TraceFormatError(f"chunk_samples must be >= 1, got {chunk_samples}")
        self._path = os.fspath(path)
        self._t0 = float(t0)
        self._dt = None if dt is None else float(dt)
        self._units = str(units)
        self._interpolation = interpolation
        self._chunk_samples = int(chunk_samples)
        self._metadata = dict(metadata or {})
        # Binary mode so tell() yields true byte offsets for the footer
        # index (the reader seeks on them in binary mode).
        self._file: Optional[IO[bytes]] = open(self._path, "wb")
        header = {
            "magic": TRACE_MAGIC,
            "version": TRACE_FORMAT_VERSION,
            "t0": self._t0,
            "dt": self._dt,
            "units": self._units,
            "interpolation": self._interpolation,
            "chunk_samples": self._chunk_samples,
            "metadata": self._metadata,
        }
        self._file.write((_canonical(header) + "\n").encode("utf-8"))
        self._digest = _ContentDigest(self._units, self._interpolation)
        self._buffer: List = []
        self._buffer_t0 = self._t0
        self._count = 0
        self._chunks = 0
        self._index: List[List] = []
        self._last_time = -math.inf
        self._t_end = self._t0
        self.trace_hash: Optional[str] = None

    # -- appending ---------------------------------------------------------

    def append(self, level: float) -> None:
        """Append the next regularly-sampled level (``dt`` mode only)."""
        if self._dt is None:
            raise TraceFormatError(
                "append() requires a regular-sampling writer (dt=...); "
                "use append_at(time, level) for timestamped traces"
            )
        level = _check_level(level)
        time = self._t0 + self._count * self._dt
        if not self._buffer:
            self._buffer_t0 = time
        self._buffer.append(level)
        self._record_sample(time, level)

    def append_at(self, time: float, level: float) -> None:
        """Append a timestamped ``(time, level)`` frame (``dt=None`` only)."""
        if self._dt is not None:
            raise TraceFormatError(
                "append_at() requires a timestamped writer (dt=None); "
                "use append(level) for regularly-sampled traces"
            )
        time = float(time)
        if not math.isfinite(time):
            raise TraceFormatError(f"sample times must be finite, got {time!r}")
        level = _check_level(level)
        if not self._buffer:
            self._buffer_t0 = time
        self._buffer.append([time, level])
        self._record_sample(time, level)

    def _record_sample(self, time: float, level: float) -> None:
        if time <= self._last_time:
            raise TraceFormatError(
                f"sample times must be strictly increasing: {time!r} after "
                f"{self._last_time!r}"
            )
        self._last_time = time
        self._t_end = time
        self._digest.add(time, level)
        self._count += 1
        if len(self._buffer) >= self._chunk_samples:
            self._flush_chunk()

    def _flush_chunk(self) -> None:
        if not self._buffer or self._file is None:
            return
        chunk = {
            "chunk": self._chunks,
            "t0": self._buffer_t0,
            "count": len(self._buffer),
            "samples": self._buffer,
        }
        body = _canonical(chunk)
        chunk["sha256"] = _sha256(body)
        offset = self._file.tell()
        self._file.write((_canonical(chunk) + "\n").encode("utf-8"))
        self._index.append([offset, self._buffer_t0, len(self._buffer)])
        self._chunks += 1
        self._buffer = []

    # -- teardown ----------------------------------------------------------

    def close(self) -> str:
        """Flush, write the footer, and return the ``trace_hash``."""
        if self._file is None:
            assert self.trace_hash is not None
            return self.trace_hash
        if self._count == 0:
            self._file.close()
            self._file = None
            raise TraceFormatError("a trace must contain at least one sample")
        self._flush_chunk()
        self.trace_hash = self._digest.hexdigest()
        footer = {
            "footer": 1,
            "chunks": self._chunks,
            "count": self._count,
            "t_end": self._t_end,
            "index": self._index,
            "trace_hash": self.trace_hash,
        }
        self._file.write((_canonical(footer) + "\n").encode("utf-8"))
        self._file.close()
        self._file = None
        return self.trace_hash

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        elif self._file is not None:
            self._file.close()
            self._file = None


def _parse_line(line: str, what: str) -> dict:
    try:
        data = json.loads(line)
    except ValueError as error:
        raise TraceFormatError(f"corrupt trace {what}: {error}") from error
    if not isinstance(data, dict):
        raise TraceFormatError(f"corrupt trace {what}: expected a JSON object")
    return data


class TraceReader:
    """Seekable, verifying reader over a trace file.

    Holds the header and footer in memory (the footer index is a few
    bytes per chunk) but never more than one chunk of samples at a time:
    :meth:`iter_samples` and :meth:`verify` stream, and :meth:`chunk`
    seeks straight to one chunk via the footer index.  Every chunk's
    sha256 is checked as it is parsed; any mismatch raises
    :class:`~repro.errors.TraceFormatError`.
    """

    def __init__(self, path, expected_hash: Optional[str] = None) -> None:
        self._path = os.fspath(path)
        try:
            self._file: Optional[IO[bytes]] = open(self._path, "rb")
        except OSError as error:
            raise TraceFormatError(
                f"trace file {self._path!r} cannot be opened: {error}"
            ) from error
        try:
            header_line = self._file.readline()
            self._data_start = self._file.tell()
            header = _parse_line(header_line.decode("utf-8", "replace"), "header")
            if header.get("magic") != TRACE_MAGIC:
                raise TraceFormatError(
                    f"{self._path!r} is not a trace file (bad magic "
                    f"{header.get('magic')!r})"
                )
            if header.get("version") != TRACE_FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {header.get('version')!r} "
                    f"(this reader speaks v{TRACE_FORMAT_VERSION})"
                )
            self.t0 = float(header.get("t0", 0.0))
            dt = header.get("dt")
            self.dt: Optional[float] = None if dt is None else float(dt)
            if self.dt is not None and self.dt <= 0.0:
                raise TraceFormatError(f"corrupt trace header: dt={self.dt!r}")
            self.units = str(header.get("units", ""))
            self.interpolation = header.get("interpolation")
            if self.interpolation not in INTERPOLATIONS:
                raise TraceFormatError(
                    f"corrupt trace header: interpolation={self.interpolation!r}"
                )
            self.metadata = header.get("metadata") or {}
            self.chunk_samples = int(header.get("chunk_samples", 0))
            footer = _parse_line(self._read_last_line(), "footer")
            if footer.get("footer") != 1:
                raise TraceFormatError(
                    f"trace {self._path!r} is truncated: footer line missing"
                )
            self.n_chunks = int(footer["chunks"])
            self.n_samples = int(footer["count"])
            self.t_end = float(footer["t_end"])
            self.index = [
                (int(off), float(ct0), int(cnt)) for off, ct0, cnt in footer["index"]
            ]
            if len(self.index) != self.n_chunks or self.n_chunks < 1:
                raise TraceFormatError(
                    f"trace {self._path!r} footer index is inconsistent"
                )
            self._chunk_base = [0] * self.n_chunks
            running = 0
            for position, (_, _, cnt) in enumerate(self.index):
                self._chunk_base[position] = running
                running += cnt
            if running != self.n_samples:
                raise TraceFormatError(
                    f"trace {self._path!r} footer sample count is inconsistent"
                )
            self.trace_hash = str(footer["trace_hash"])
        except KeyError as error:
            self.close()
            raise TraceFormatError(
                f"trace {self._path!r} footer is missing field {error}"
            ) from error
        except TraceFormatError:
            self.close()
            raise
        except Exception as error:
            self.close()
            raise TraceFormatError(
                f"trace {self._path!r} failed to parse: {error}"
            ) from error
        if expected_hash is not None and expected_hash != self.trace_hash:
            self.close()
            raise TraceFormatError(
                f"trace {self._path!r} content hash {self.trace_hash} does not "
                f"match the pinned trace_hash {expected_hash}"
            )

    @property
    def path(self) -> str:
        return self._path

    @property
    def duration(self) -> float:
        """Time span covered by the samples (``t_end - t0``)."""
        return self.t_end - self.t0

    def _read_last_line(self) -> str:
        """The footer is the last line; read it backwards in blocks."""
        assert self._file is not None
        self._file.seek(0, io.SEEK_END)
        size = self._file.tell()
        block = 1 << 16
        buffer = b""
        position = size
        while position > 0:
            step = min(block, position)
            position -= step
            self._file.seek(position)
            buffer = self._file.read(step) + buffer
            stripped = buffer.rstrip(b"\n")
            newline = stripped.rfind(b"\n")
            if newline != -1:
                return stripped[newline + 1 :].decode("utf-8", "replace")
        raise TraceFormatError(f"trace {self._path!r} is truncated: no footer")

    # -- chunk access ------------------------------------------------------

    def chunk(self, i: int) -> Tuple[List[float], List[float]]:
        """Load and verify chunk *i*; returns ``(times, levels)`` lists."""
        if not 0 <= i < self.n_chunks:
            raise TraceFormatError(
                f"chunk index {i} out of range [0, {self.n_chunks})"
            )
        if self._file is None:
            raise TraceFormatError(f"trace reader for {self._path!r} is closed")
        offset, _, count = self.index[i]
        self._file.seek(offset)
        line = self._file.readline().decode("utf-8", "replace")
        return self._verify_chunk(i, count, line)

    def _verify_chunk(
        self, i: int, count: int, line: str
    ) -> Tuple[List[float], List[float]]:
        data = _parse_line(line, f"chunk {i}")
        recorded = data.pop("sha256", None)
        if recorded != _sha256(_canonical(data)):
            raise TraceFormatError(
                f"trace {self._path!r} chunk {i} failed its sha256 checksum "
                "(corrupt or tampered samples are never replayed)"
            )
        if data.get("chunk") != i or data.get("count") != count:
            raise TraceFormatError(
                f"trace {self._path!r} chunk {i} does not match the footer index"
            )
        samples = data.get("samples")
        if not isinstance(samples, list) or len(samples) != count:
            raise TraceFormatError(
                f"trace {self._path!r} chunk {i} sample count mismatch"
            )
        base = self._chunk_base[i]
        if self.dt is not None:
            times = [self.t0 + (base + j) * self.dt for j in range(count)]
            levels = [_check_level(value) for value in samples]
        else:
            times = []
            levels = []
            for pair in samples:
                if not isinstance(pair, list) or len(pair) != 2:
                    raise TraceFormatError(
                        f"trace {self._path!r} chunk {i} has a malformed frame"
                    )
                times.append(float(pair[0]))
                levels.append(_check_level(pair[1]))
        return times, levels

    def iter_samples(self) -> Iterator[Tuple[float, float]]:
        """Stream ``(time, level)`` pairs, one verified chunk at a time."""
        for i in range(self.n_chunks):
            times, levels = self.chunk(i)
            for time, level in zip(times, levels):
                yield time, level

    def verify(self) -> str:
        """Stream every chunk, check all checksums, recompute the content
        digest, and confirm it matches the footer's ``trace_hash``.

        This is the edge-resolution primitive: a file that passes
        ``verify()`` cannot serve stale cache entries (the recomputed
        hash *is* the cache-key component) and cannot replay corrupt
        samples.  Returns the verified hash.
        """
        digest = _ContentDigest(self.units, self.interpolation)
        previous = -math.inf
        count = 0
        for time, level in self.iter_samples():
            if time <= previous:
                raise TraceFormatError(
                    f"trace {self._path!r} sample times are not strictly "
                    f"increasing at t={time!r}"
                )
            previous = time
            digest.add(time, level)
            count += 1
        if count != self.n_samples:
            raise TraceFormatError(
                f"trace {self._path!r} is truncated: footer promises "
                f"{self.n_samples} samples, found {count}"
            )
        recomputed = digest.hexdigest()
        if recomputed != self.trace_hash:
            raise TraceFormatError(
                f"trace {self._path!r} content digest {recomputed} does not "
                f"match its recorded trace_hash {self.trace_hash}"
            )
        return recomputed

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def compute_trace_hash(path) -> str:
    """Fully verify the trace at *path* and return its ``trace_hash``.

    The resolution primitive used at service/CLI edges: streams the whole
    file (bounded memory), checks every chunk checksum and the footer
    digest, and raises :class:`~repro.errors.TraceFormatError` on any
    corruption.
    """
    with TraceReader(path) as reader:
        return reader.verify()
