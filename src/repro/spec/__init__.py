"""Declarative scenario specs: one versioned, serialisable description
of a system under evaluation.

The spec layer is the single source of truth connecting the stack:

* :mod:`repro.spec.model` — frozen dataclass schema (parts, banks,
  harvesters, boosters, platforms, scenarios) with canonical JSON
  round-trip and hashing;
* :mod:`repro.spec.build` — rebuild runtime objects from specs (and
  extract specs back from runtime objects).

Typical use::

    from repro.spec import load_scenario, build_scenario_app

    scenario = load_scenario("scenario.json")
    app = build_scenario_app(scenario, kind="CB-P")
    app.run()
"""

from repro.spec.model import (
    SCHEMA_VERSION,
    BankGroupV1,
    BankSpecV1,
    BoosterSpec,
    HarvesterSpec,
    PartSpecV1,
    PlatformSpecV1,
    ScenarioSpec,
    TraceSpecV1,
    canonical_json,
    combined_spec_hash,
    dump_scenario,
    load_scenario,
    spec_hash,
)
from repro.spec.build import (
    ScenarioBuilder,
    assemble_from_spec,
    bank_from_spec,
    booster_from_spec,
    build_scenario_app,
    harvester_from_spec,
    part_from_spec,
    platform_from_spec,
    platform_to_spec,
    resolve_scenario_traces,
    scenario_trace_hash,
    scenario_trace_hashes,
    trace_from_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "BankGroupV1",
    "BankSpecV1",
    "BoosterSpec",
    "HarvesterSpec",
    "PartSpecV1",
    "PlatformSpecV1",
    "ScenarioSpec",
    "ScenarioBuilder",
    "TraceSpecV1",
    "assemble_from_spec",
    "bank_from_spec",
    "booster_from_spec",
    "build_scenario_app",
    "canonical_json",
    "combined_spec_hash",
    "dump_scenario",
    "harvester_from_spec",
    "load_scenario",
    "part_from_spec",
    "platform_from_spec",
    "platform_to_spec",
    "resolve_scenario_traces",
    "scenario_trace_hash",
    "scenario_trace_hashes",
    "spec_hash",
    "trace_from_dict",
]
