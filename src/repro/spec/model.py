"""Frozen, versioned scenario spec dataclasses.

A *spec* is a declarative, JSON-serialisable description of a system the
paper evaluates: capacitor parts and banks (:class:`PartSpecV1`,
:class:`BankSpecV1`), the front-end circuitry (:class:`HarvesterSpec`,
:class:`BoosterSpec`), the whole platform (:class:`PlatformSpecV1`), and
finally a runnable scenario — platform + system kind + workload —
(:class:`ScenarioSpec`).  Specs are the single source of truth the
builder, the result cache, the worker pool, and the CLI all consume.

Serialisation contract (shared by every class here):

* ``to_dict`` emits a plain JSON-safe dict with **every** field present,
  in base SI units, so the canonical form of a spec is independent of
  which defaults the author spelled out;
* ``from_dict`` **rejects unknown fields** (schema drift fails loudly,
  not silently) and accepts unit-suffixed sugar (``capacitance_uf``,
  ``quiescent_power_uw``, ...) normalised through :mod:`repro.units`;
* :func:`canonical_json` renders sorted-key, compact JSON, so equal
  specs always produce identical bytes regardless of dict ordering;
* :func:`spec_hash` is the SHA-256 of those canonical bytes — the value
  the result cache keys on.

``schema_version`` is explicit in every serialised scenario.  The
versioning policy (see ``docs/specs.md``): breaking field changes bump
the version and get a new ``*V<n>`` class; loaders reject versions they
do not know rather than guessing.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro import units
from repro.errors import SpecError

#: The scenario schema version this module reads and writes.
SCHEMA_VERSION = 1

#: Unit-suffix sugar accepted by every ``from_dict``: a field spelled
#: ``<name>_<suffix>`` is normalised to base SI via :mod:`repro.units`.
UNIT_SUFFIXES: Dict[str, Callable[[float], float]] = {
    "f": units.farads,
    "mf": units.milli_farads,
    "uf": units.micro_farads,
    "v": units.volts,
    "mv": units.milli_volts,
    "ma": units.milli_amps,
    "ua": units.micro_amps,
    "na": units.nano_amps,
    "mohm": units.milli_ohms,
    "w": units.watts,
    "mw": units.milli_watts,
    "uw": units.micro_watts,
    "ms": units.milliseconds,
    "mm3": units.cubic_millimetres,
}


def normalize_units(data: Mapping[str, Any], context: str) -> Dict[str, Any]:
    """Fold unit-suffixed keys into their base-SI field names.

    ``{"capacitance_uf": 100}`` becomes ``{"capacitance": 1e-4}``.  A key
    carrying both its base and a suffixed spelling is ambiguous and
    rejected.
    """
    out: Dict[str, Any] = {}
    for key, value in data.items():
        base, sep, suffix = key.rpartition("_")
        converter = UNIT_SUFFIXES.get(suffix) if sep else None
        if converter is not None and base:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SpecError(
                    f"{context}: unit-suffixed field {key!r} needs a number, "
                    f"got {value!r}"
                )
            key, value = base, converter(float(value))
        if key in out:
            raise SpecError(
                f"{context}: field {key!r} given more than once "
                f"(base and unit-suffixed spellings?)"
            )
        out[key] = value
    return out


def _check_fields(
    data: Mapping[str, Any], allowed: Tuple[str, ...], context: str
) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            f"{context}: unknown fields {unknown}; allowed: {sorted(allowed)}"
        )


def _require(data: Mapping[str, Any], key: str, context: str) -> Any:
    if key not in data:
        raise SpecError(f"{context}: missing required field {key!r}")
    return data[key]


def _json_safe(value: Any, context: str) -> None:
    """Reject values canonical JSON cannot carry losslessly."""
    if value is None or isinstance(value, (bool, int, str)):
        return
    if isinstance(value, float):
        if not math.isfinite(value):
            raise SpecError(f"{context}: non-finite float {value!r}")
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            _json_safe(item, context)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SpecError(f"{context}: non-string key {key!r}")
            _json_safe(item, context)
        return
    raise SpecError(f"{context}: unserialisable value {value!r}")


# ---------------------------------------------------------------------------
# Capacitor parts and banks
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PartSpecV1:
    """Declarative capacitor part (datasheet values in base SI units).

    ``cycle_endurance`` of ``None`` means unlimited (ceramics); it maps
    to ``math.inf`` on the electrical model, which JSON cannot carry.
    """

    name: str
    technology: str
    capacitance: float
    esr: float
    leak_resistance: float
    rated_voltage: float
    volume: float
    cycle_endurance: Optional[float] = None
    derating: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "technology": self.technology,
            "capacitance": self.capacitance,
            "esr": self.esr,
            "leak_resistance": self.leak_resistance,
            "rated_voltage": self.rated_voltage,
            "volume": self.volume,
            "cycle_endurance": self.cycle_endurance,
            "derating": self.derating,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartSpecV1":
        context = f"part {data.get('name', '?')!r}"
        data = normalize_units(data, context)
        _check_fields(data, tuple(f.name for f in fields(cls)), context)
        kwargs = dict(data)
        endurance = kwargs.get("cycle_endurance")
        if endurance is not None and math.isinf(endurance):
            kwargs["cycle_endurance"] = None
        return cls(
            name=str(_require(kwargs, "name", context)),
            technology=str(_require(kwargs, "technology", context)),
            capacitance=float(_require(kwargs, "capacitance", context)),
            esr=float(_require(kwargs, "esr", context)),
            leak_resistance=float(_require(kwargs, "leak_resistance", context)),
            rated_voltage=float(_require(kwargs, "rated_voltage", context)),
            volume=float(_require(kwargs, "volume", context)),
            cycle_endurance=(
                None
                if kwargs.get("cycle_endurance") is None
                else float(kwargs["cycle_endurance"])
            ),
            derating=float(kwargs.get("derating", 1.0)),
        )


@dataclass(frozen=True)
class BankGroupV1:
    """``count`` copies of one part, wired in parallel within a bank."""

    part: PartSpecV1
    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SpecError(
                f"bank group of {self.part.name!r}: count must be >= 1"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {"part": self.part.to_dict(), "count": self.count}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BankGroupV1":
        context = "bank group"
        _check_fields(data, ("part", "count"), context)
        part = _require(data, "part", context)
        if not isinstance(part, Mapping):
            raise SpecError(f"{context}: 'part' must be an object")
        return cls(
            part=PartSpecV1.from_dict(part), count=int(data.get("count", 1))
        )


@dataclass(frozen=True)
class BankSpecV1:
    """Declarative parallel capacitor bank: named groups of parts."""

    name: str
    groups: Tuple[BankGroupV1, ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise SpecError(f"bank {self.name!r} has no part groups")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "groups": [group.to_dict() for group in self.groups],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BankSpecV1":
        context = f"bank {data.get('name', '?')!r}"
        _check_fields(data, ("name", "groups"), context)
        groups = _require(data, "groups", context)
        if not isinstance(groups, (list, tuple)):
            raise SpecError(f"{context}: 'groups' must be a list")
        return cls(
            name=str(_require(data, "name", context)),
            groups=tuple(BankGroupV1.from_dict(group) for group in groups),
        )


# ---------------------------------------------------------------------------
# Front-end circuitry
# ---------------------------------------------------------------------------

#: Allowed parameter fields per harvester kind (see repro.energy.harvester).
HARVESTER_FIELDS: Dict[str, Tuple[str, ...]] = {
    "regulated": ("voltage", "max_power"),
    "solar": (
        "area",
        "efficiency",
        "cells_in_series",
        "voltage_per_panel",
        "irradiance",
    ),
    "rf": ("transmit_power", "distance", "path_gain", "voltage"),
    "scaled": ("inner", "power_scale"),
}

#: Allowed parameter fields per environment trace kind.
TRACE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "constant": ("level",),
    "dimmed_lamp": ("full_irradiance", "duty"),
    "orbit": ("period", "eclipse_fraction", "irradiance"),
    "piecewise": ("breakpoints", "initial"),
    "replay": ("path", "trace_hash", "samples", "interpolation"),
}

#: Interpolation policies a replay trace spec may name (mirrors
#: repro.traces.format.INTERPOLATIONS without importing the package).
TRACE_INTERPOLATIONS = ("hold", "linear")


def _parse_sample_time(value: Any, context: str) -> float:
    """A sample time: a number (seconds) or unit-suffixed sugar ("10ms")."""
    try:
        return units.parse_duration(value)
    except ValueError as error:
        raise SpecError(f"{context}: {error}") from error


@dataclass(frozen=True)
class TraceSpecV1:
    """A recorded environment trace as a scenario ingredient.

    Two forms, exactly one of which must be given:

    * **inline**: ``samples`` carries ``[[time, level], ...]`` pairs
      directly in the scenario (small adversarial step patterns); sample
      times accept the duration sugar of :func:`repro.units.parse_duration`
      (``"10ms"``, ``"1h"``) and are canonicalised to seconds.
    * **file reference**: ``path`` names a :mod:`repro.traces` file,
      optionally pinned by ``trace_hash``.  The model layer never touches
      the filesystem — :func:`repro.spec.build.resolve_scenario_traces`
      verifies the file and pins the hash at the edge.

    ``interpolation`` selects the replay policy (``"hold"`` default,
    ``"linear"``).
    """

    path: Optional[str] = None
    trace_hash: Optional[str] = None
    samples: Optional[Tuple[Tuple[float, float], ...]] = None
    interpolation: str = "hold"

    def __post_init__(self) -> None:
        context = "replay trace"
        if (self.path is None) == (self.samples is None):
            raise SpecError(
                f"{context}: exactly one of 'path' or 'samples' must be given"
            )
        if self.interpolation not in TRACE_INTERPOLATIONS:
            raise SpecError(
                f"{context}: interpolation must be one of "
                f"{list(TRACE_INTERPOLATIONS)}, got {self.interpolation!r}"
            )
        if self.path is not None:
            if not isinstance(self.path, str) or not self.path:
                raise SpecError(f"{context}: 'path' must be a non-empty string")
            if self.trace_hash is not None and not (
                isinstance(self.trace_hash, str)
                and len(self.trace_hash) == 64
                and all(c in "0123456789abcdef" for c in self.trace_hash)
            ):
                raise SpecError(
                    f"{context}: 'trace_hash' must be a 64-char lowercase sha256 "
                    f"hex digest, got {self.trace_hash!r}"
                )
        else:
            if self.trace_hash is not None:
                raise SpecError(
                    f"{context}: 'trace_hash' only pins file references; inline "
                    "samples are their own content"
                )
            if not isinstance(self.samples, (list, tuple)) or not self.samples:
                raise SpecError(
                    f"{context}: 'samples' must be a non-empty list of "
                    "[time, level] pairs"
                )
            parsed: List[Tuple[float, float]] = []
            previous = -math.inf
            for pair in self.samples:
                if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                    raise SpecError(
                        f"{context}: each sample must be a [time, level] pair, "
                        f"got {pair!r}"
                    )
                time = _parse_sample_time(pair[0], context)
                level = pair[1]
                if isinstance(level, bool) or not isinstance(level, (int, float)):
                    raise SpecError(
                        f"{context}: sample levels must be numbers, got {level!r}"
                    )
                level = float(level)
                if not math.isfinite(level) or level < 0.0:
                    raise SpecError(
                        f"{context}: sample levels must be finite and "
                        f"non-negative, got {level!r}"
                    )
                if time <= previous:
                    raise SpecError(
                        f"{context}: sample times must be strictly increasing "
                        f"({time!r} after {previous!r})"
                    )
                previous = time
                parsed.append((time, level))
            object.__setattr__(self, "samples", tuple(parsed))

    def to_dict(self) -> Dict[str, Any]:
        if self.path is not None:
            return {
                "kind": "replay",
                "path": self.path,
                "trace_hash": self.trace_hash,
                "interpolation": self.interpolation,
            }
        assert self.samples is not None
        return {
            "kind": "replay",
            "samples": [[time, level] for time, level in self.samples],
            "interpolation": self.interpolation,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceSpecV1":
        context = "replay trace"
        body = {k: v for k, v in data.items() if k != "kind"}
        _check_fields(body, TRACE_FIELDS["replay"], context)
        samples = body.get("samples")
        return cls(
            path=body.get("path"),
            trace_hash=body.get("trace_hash"),
            samples=None if samples is None else tuple(
                tuple(pair) if isinstance(pair, (list, tuple)) else pair
                for pair in samples
            ),
            interpolation=str(body.get("interpolation", "hold")),
        )

    def pinned(self, trace_hash: str) -> "TraceSpecV1":
        """A copy with the content hash pinned (file references only)."""
        if self.path is None:
            return self
        return TraceSpecV1(
            path=self.path, trace_hash=trace_hash, interpolation=self.interpolation
        )


def _validate_trace_dict(data: Mapping[str, Any], context: str) -> Dict[str, Any]:
    kind = _require(data, "kind", context)
    if kind not in TRACE_FIELDS:
        raise SpecError(
            f"{context}: unknown trace kind {kind!r}; "
            f"known: {sorted(TRACE_FIELDS)}"
        )
    if kind == "replay":
        return TraceSpecV1.from_dict(data).to_dict()
    body = normalize_units(
        {k: v for k, v in data.items() if k != "kind"}, context
    )
    _check_fields(body, TRACE_FIELDS[kind], f"{context} ({kind})")
    _json_safe(dict(body), context)
    return {"kind": kind, **body}


@dataclass(frozen=True)
class HarvesterSpec:
    """Declarative energy harvester: a kind plus its parameters.

    ``params`` may nest a trace object under ``irradiance`` (solar) or a
    whole inner harvester under ``inner`` (scaled).  Treat instances as
    immutable; the dataclass is frozen and the params dict is validated
    and normalised at construction.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        context = f"harvester ({self.kind})"
        if self.kind not in HARVESTER_FIELDS:
            raise SpecError(
                f"unknown harvester kind {self.kind!r}; "
                f"known: {sorted(HARVESTER_FIELDS)}"
            )
        params = normalize_units(self.params, context)
        _check_fields(params, HARVESTER_FIELDS[self.kind], context)
        if self.kind == "solar" and "irradiance" in params:
            irradiance = params["irradiance"]
            if not isinstance(irradiance, Mapping):
                raise SpecError(f"{context}: 'irradiance' must be an object")
            params["irradiance"] = _validate_trace_dict(irradiance, context)
        if self.kind == "scaled":
            inner = _require(params, "inner", context)
            if not isinstance(inner, (Mapping, HarvesterSpec)):
                raise SpecError(f"{context}: 'inner' must be an object")
            if isinstance(inner, Mapping):
                params["inner"] = HarvesterSpec.from_dict(inner)
        _json_safe(
            {k: v for k, v in params.items() if not isinstance(v, HarvesterSpec)},
            context,
        )
        object.__setattr__(self, "params", params)

    def to_dict(self) -> Dict[str, Any]:
        body = {
            key: value.to_dict() if isinstance(value, HarvesterSpec) else value
            for key, value in self.params.items()
        }
        return {"kind": self.kind, **body}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HarvesterSpec":
        kind = _require(data, "kind", "harvester")
        return cls(
            kind=str(kind), params={k: v for k, v in data.items() if k != "kind"}
        )


#: Allowed parameter fields per booster kind (see repro.energy.booster).
BOOSTER_FIELDS: Dict[str, Tuple[str, ...]] = {
    "input": (
        "efficiency",
        "v_cold_start",
        "cold_start_efficiency",
        "bypass",
        "v_diode_drop",
        "v_charge_target",
        "min_input_voltage",
        "low_voltage_efficiency",
        "v_full_efficiency",
    ),
    "output": ("v_out", "v_in_min", "efficiency", "quiescent_power"),
}


@dataclass(frozen=True)
class BoosterSpec:
    """Declarative boost converter: ``input`` or ``output`` side."""

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        context = f"booster ({self.kind})"
        if self.kind not in BOOSTER_FIELDS:
            raise SpecError(
                f"unknown booster kind {self.kind!r}; known: "
                f"{sorted(BOOSTER_FIELDS)}"
            )
        params = normalize_units(self.params, context)
        _check_fields(params, BOOSTER_FIELDS[self.kind], context)
        _json_safe(dict(params), context)
        object.__setattr__(self, "params", params)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **self.params}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BoosterSpec":
        kind = _require(data, "kind", "booster")
        return cls(
            kind=str(kind), params={k: v for k, v in data.items() if k != "kind"}
        )


# ---------------------------------------------------------------------------
# Platform and scenario
# ---------------------------------------------------------------------------

#: System names a scenario may target (SystemKind values).
SYSTEM_NAMES = ("Pwr", "Fixed", "CB-R", "CB-P")
#: Switch polarity names (SwitchPolarity values).
POLARITY_NAMES = ("NO", "NC")


@dataclass(frozen=True)
class PlatformSpecV1:
    """Declarative platform: everything :class:`repro.core.builder.PlatformSpec`
    holds, but as plain serialisable data.

    ``banks`` order is significant: the first bank is hardwired, the
    rest sit behind switches.  ``modes`` is kept sorted by mode name so
    equal platforms are equal values.
    """

    banks: Tuple[BankSpecV1, ...]
    modes: Tuple[Tuple[str, Tuple[str, ...]], ...]
    fixed_bank: BankSpecV1
    harvester: HarvesterSpec
    switch_polarity: str = "NO"
    input_booster: Optional[BoosterSpec] = None
    output_booster: Optional[BoosterSpec] = None
    limiter_v_clamp: Optional[float] = None
    quiescent_power: float = 2e-6

    def __post_init__(self) -> None:
        if not self.banks:
            raise SpecError("platform needs at least one bank")
        if not self.modes:
            raise SpecError("platform needs at least one mode")
        if self.switch_polarity not in POLARITY_NAMES:
            raise SpecError(
                f"unknown switch polarity {self.switch_polarity!r}; "
                f"known: {list(POLARITY_NAMES)}"
            )
        names = {bank.name for bank in self.banks}
        if len(names) != len(self.banks):
            raise SpecError("bank names must be unique")
        for mode, mode_banks in self.modes:
            unknown = set(mode_banks) - names
            if unknown:
                raise SpecError(
                    f"mode {mode!r} references unknown banks {sorted(unknown)}"
                )
        object.__setattr__(
            self, "modes", tuple(sorted((m, tuple(b)) for m, b in self.modes))
        )
        if self.input_booster is not None and self.input_booster.kind != "input":
            raise SpecError("input_booster must have kind 'input'")
        if self.output_booster is not None and self.output_booster.kind != "output":
            raise SpecError("output_booster must have kind 'output'")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "banks": [bank.to_dict() for bank in self.banks],
            "modes": {mode: list(banks) for mode, banks in self.modes},
            "fixed_bank": self.fixed_bank.to_dict(),
            "harvester": self.harvester.to_dict(),
            "switch_polarity": self.switch_polarity,
            "input_booster": (
                None if self.input_booster is None else self.input_booster.to_dict()
            ),
            "output_booster": (
                None
                if self.output_booster is None
                else self.output_booster.to_dict()
            ),
            "limiter_v_clamp": self.limiter_v_clamp,
            "quiescent_power": self.quiescent_power,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpecV1":
        context = "platform"
        data = normalize_units(data, context)
        _check_fields(
            data,
            (
                "banks",
                "modes",
                "fixed_bank",
                "harvester",
                "switch_polarity",
                "input_booster",
                "output_booster",
                "limiter_v_clamp",
                "quiescent_power",
            ),
            context,
        )
        banks = _require(data, "banks", context)
        modes = _require(data, "modes", context)
        if not isinstance(modes, Mapping):
            raise SpecError(f"{context}: 'modes' must be an object")
        input_booster = data.get("input_booster")
        output_booster = data.get("output_booster")
        limiter = data.get("limiter_v_clamp")
        return cls(
            banks=tuple(BankSpecV1.from_dict(bank) for bank in banks),
            modes=tuple(
                (str(mode), tuple(str(b) for b in bank_names))
                for mode, bank_names in modes.items()
            ),
            fixed_bank=BankSpecV1.from_dict(_require(data, "fixed_bank", context)),
            harvester=HarvesterSpec.from_dict(
                _require(data, "harvester", context)
            ),
            switch_polarity=str(data.get("switch_polarity", "NO")),
            input_booster=(
                None if input_booster is None else BoosterSpec.from_dict(input_booster)
            ),
            output_booster=(
                None
                if output_booster is None
                else BoosterSpec.from_dict(output_booster)
            ),
            limiter_v_clamp=None if limiter is None else float(limiter),
            quiescent_power=float(data.get("quiescent_power", 2e-6)),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One runnable scenario: platform + target system + workload.

    ``system`` names the default :class:`~repro.core.builder.SystemKind`
    ("Pwr", "Fixed", "CB-R", "CB-P"); campaign harnesses override it per
    run.  ``workload`` is a flat JSON object naming the application
    (``"app"``) and its parameters (seed, event_count, ...).
    """

    name: str
    system: str
    platform: PlatformSpecV1
    workload: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.schema_version != SCHEMA_VERSION:
            raise SpecError(
                f"scenario {self.name!r}: unsupported schema_version "
                f"{self.schema_version!r} (this build reads {SCHEMA_VERSION})"
            )
        if self.system not in SYSTEM_NAMES:
            raise SpecError(
                f"scenario {self.name!r}: unknown system {self.system!r}; "
                f"known: {list(SYSTEM_NAMES)}"
            )
        if "app" in self.workload and not isinstance(self.workload["app"], str):
            raise SpecError(f"scenario {self.name!r}: workload 'app' must be a string")
        _json_safe(dict(self.workload), f"scenario {self.name!r} workload")

    @property
    def app(self) -> Optional[str]:
        """The application this scenario runs, if it names one."""
        app = self.workload.get("app")
        return str(app) if app is not None else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "system": self.system,
            "platform": self.platform.to_dict(),
            "workload": dict(self.workload),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        context = f"scenario {data.get('name', '?')!r}"
        _check_fields(
            data,
            ("schema_version", "name", "system", "platform", "workload"),
            context,
        )
        workload = data.get("workload", {})
        if not isinstance(workload, Mapping):
            raise SpecError(f"{context}: 'workload' must be an object")
        platform = _require(data, "platform", context)
        if not isinstance(platform, Mapping):
            raise SpecError(f"{context}: 'platform' must be an object")
        return cls(
            name=str(_require(data, "name", context)),
            system=str(_require(data, "system", context)),
            platform=PlatformSpecV1.from_dict(platform),
            workload=dict(workload),
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
        )


# ---------------------------------------------------------------------------
# Canonical form
# ---------------------------------------------------------------------------

#: Any spec class providing ``to_dict``.
Spec = Any


def canonical_json(spec: Spec) -> str:
    """Sorted-key, compact JSON — equal specs give identical bytes."""
    data = spec.to_dict() if hasattr(spec, "to_dict") else spec
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def spec_hash(spec: Spec) -> str:
    """SHA-256 over the canonical JSON bytes of *spec*."""
    return hashlib.sha256(canonical_json(spec).encode()).hexdigest()


def combined_spec_hash(specs: List[Spec]) -> str:
    """One stable hash over an ordered collection of specs."""
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec_hash(spec).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def load_scenario(text_or_path: Any) -> ScenarioSpec:
    """Parse a :class:`ScenarioSpec` from a JSON string or file path.

    Accepts a JSON document string, a ``pathlib.Path``, or a path string
    ending in ``.json``.
    """
    from pathlib import Path

    if isinstance(text_or_path, Path):
        text = text_or_path.read_text()
    elif isinstance(text_or_path, str) and text_or_path.lstrip().startswith("{"):
        text = text_or_path
    elif isinstance(text_or_path, str):
        text = Path(text_or_path).read_text()
    else:
        raise SpecError(f"cannot load a scenario from {text_or_path!r}")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SpecError(f"scenario is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise SpecError("scenario JSON must be an object")
    return ScenarioSpec.from_dict(data)


def dump_scenario(spec: ScenarioSpec, pretty: bool = True) -> str:
    """Render a scenario as JSON (pretty by default, canonical otherwise)."""
    if not pretty:
        return canonical_json(spec)
    return json.dumps(spec.to_dict(), sort_keys=True, indent=2) + "\n"
