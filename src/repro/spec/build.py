"""Bridge between declarative specs and runtime objects.

:func:`platform_from_spec` rebuilds the electrical stack — capacitor
parts, banks, harvester, boosters, limiter — from a
:class:`~repro.spec.model.PlatformSpecV1`; :func:`platform_to_spec`
extracts one back.  Round-trips are exact: JSON serialises Python floats
losslessly, so a platform rebuilt from its spec is value-identical to
the original and simulations driven by either are bit-identical.

:func:`build_scenario_app` turns a whole :class:`ScenarioSpec` into a
ready-to-run :class:`~repro.apps.base.AppInstance`, dispatching on the
workload's ``app`` name.  :class:`ScenarioBuilder` wraps that as a
picklable ``builder(kind)`` callable whose only state is the canonical
scenario JSON — which is what the process pool ships to workers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.core.builder import PlatformSpec, PowerAssembly, SystemKind, build_system
from repro.energy.bank import BankSpec
from repro.energy.booster import InputBooster, OutputBooster
from repro.energy.capacitor import CapacitorSpec
from repro.energy.environment import (
    ConstantTrace,
    DimmedLampTrace,
    OrbitTrace,
    PiecewiseTrace,
    Trace,
)
from repro.energy.harvester import (
    Harvester,
    RegulatedSupply,
    RFHarvester,
    ScaledHarvester,
    SolarPanel,
)
from repro.energy.limiter import InputVoltageLimiter
from repro.energy.switch import SwitchPolarity
from repro.errors import SpecError
from repro.spec.model import (
    BankSpecV1,
    BoosterSpec,
    HarvesterSpec,
    PartSpecV1,
    PlatformSpecV1,
    ScenarioSpec,
    canonical_json,
    load_scenario,
)

import dataclasses
import hashlib
import math

# ---------------------------------------------------------------------------
# Electrical components
# ---------------------------------------------------------------------------


def part_from_spec(spec: PartSpecV1) -> CapacitorSpec:
    """Rebuild a :class:`CapacitorSpec` (``None`` endurance -> unlimited)."""
    return CapacitorSpec(
        name=spec.name,
        technology=spec.technology,
        capacitance=spec.capacitance,
        esr=spec.esr,
        leak_resistance=spec.leak_resistance,
        rated_voltage=spec.rated_voltage,
        volume=spec.volume,
        cycle_endurance=(
            math.inf if spec.cycle_endurance is None else spec.cycle_endurance
        ),
        derating=spec.derating,
    )


def bank_from_spec(spec: BankSpecV1) -> BankSpec:
    """Rebuild a runtime :class:`BankSpec` from its declarative form."""
    return BankSpec(
        name=spec.name,
        groups=tuple(
            (part_from_spec(group.part), group.count) for group in spec.groups
        ),
    )


def trace_from_dict(data: Mapping[str, Any]) -> Trace:
    """Rebuild an environment trace from its spec dict."""
    kind = data.get("kind")
    body = {key: value for key, value in data.items() if key != "kind"}
    if kind == "constant":
        return ConstantTrace(**body)
    if kind == "dimmed_lamp":
        return DimmedLampTrace(**body)
    if kind == "orbit":
        return OrbitTrace(**body)
    if kind == "piecewise":
        return PiecewiseTrace(
            breakpoints=[
                (float(time), float(level)) for time, level in body["breakpoints"]
            ],
            initial=body.get("initial", 0.0),
        )
    if kind == "replay":
        # Imported lazily: repro.traces is only needed by trace-bearing
        # scenarios, and environment.py's record() exporters reach back
        # into it.
        from repro.spec.model import TraceSpecV1
        from repro.traces import ReplayTrace

        trace_spec = TraceSpecV1.from_dict(data)
        if trace_spec.samples is not None:
            return ReplayTrace.from_samples(
                trace_spec.samples, interpolation=trace_spec.interpolation
            )
        return ReplayTrace.open(
            trace_spec.path,
            interpolation=trace_spec.interpolation,
            expected_hash=trace_spec.trace_hash,
        )
    raise SpecError(f"unknown trace kind {kind!r}")


def harvester_from_spec(spec: HarvesterSpec) -> Harvester:
    """Rebuild a harvester (recursively, for the scaled wrapper)."""
    params = dict(spec.params)
    if spec.kind == "regulated":
        return RegulatedSupply(**params)
    if spec.kind == "solar":
        if "irradiance" in params:
            params["irradiance"] = trace_from_dict(params["irradiance"])
        return SolarPanel(**params)
    if spec.kind == "rf":
        return RFHarvester(**params)
    if spec.kind == "scaled":
        inner = params.pop("inner")
        return ScaledHarvester(inner=harvester_from_spec(inner), **params)
    raise SpecError(f"unknown harvester kind {spec.kind!r}")


def booster_from_spec(spec: BoosterSpec):
    """Rebuild an :class:`InputBooster` or :class:`OutputBooster`."""
    if spec.kind == "input":
        return InputBooster(**spec.params)
    if spec.kind == "output":
        return OutputBooster(**spec.params)
    raise SpecError(f"unknown booster kind {spec.kind!r}")


# ---------------------------------------------------------------------------
# Platforms
# ---------------------------------------------------------------------------


def platform_from_spec(spec: PlatformSpecV1) -> PlatformSpec:
    """Rebuild the runtime :class:`PlatformSpec` a declarative spec names."""
    if not isinstance(spec, PlatformSpecV1):
        raise SpecError(
            f"platform_from_spec needs a PlatformSpecV1, got {type(spec).__name__}"
        )
    return PlatformSpec(
        banks=[bank_from_spec(bank) for bank in spec.banks],
        modes={mode: list(banks) for mode, banks in spec.modes},
        fixed_bank=bank_from_spec(spec.fixed_bank),
        harvester=harvester_from_spec(spec.harvester),
        switch_polarity=SwitchPolarity(spec.switch_polarity),
        input_booster=(
            None if spec.input_booster is None else booster_from_spec(spec.input_booster)
        ),
        output_booster=(
            None
            if spec.output_booster is None
            else booster_from_spec(spec.output_booster)
        ),
        limiter=(
            None
            if spec.limiter_v_clamp is None
            else InputVoltageLimiter(v_clamp=spec.limiter_v_clamp)
        ),
        quiescent_power=spec.quiescent_power,
    )


def platform_to_spec(platform: PlatformSpec) -> PlatformSpecV1:
    """Extract the declarative spec of a runtime :class:`PlatformSpec`.

    Raises :class:`SpecError` if a component (e.g. a hand-written
    harvester class) does not support extraction.
    """
    try:
        return PlatformSpecV1.from_dict(platform.spec_dict())
    except NotImplementedError as error:
        raise SpecError(str(error)) from error


# ---------------------------------------------------------------------------
# Recorded-trace resolution
# ---------------------------------------------------------------------------


def _collect_replay_traces(spec: HarvesterSpec) -> "list[Mapping[str, Any]]":
    """Every replay-trace dict reachable from a harvester spec."""
    found: "list[Mapping[str, Any]]" = []
    if spec.kind == "solar":
        irradiance = spec.params.get("irradiance")
        if isinstance(irradiance, Mapping) and irradiance.get("kind") == "replay":
            found.append(irradiance)
    if spec.kind == "scaled":
        inner = spec.params.get("inner")
        if isinstance(inner, HarvesterSpec):
            found.extend(_collect_replay_traces(inner))
    return found


def _map_replay_traces(
    spec: HarvesterSpec,
    transform: Callable[[Mapping[str, Any]], Mapping[str, Any]],
) -> HarvesterSpec:
    """Rebuild a harvester spec with *transform* applied to replay traces."""
    params = dict(spec.params)
    changed = False
    if spec.kind == "solar":
        irradiance = params.get("irradiance")
        if isinstance(irradiance, Mapping) and irradiance.get("kind") == "replay":
            replaced = dict(transform(irradiance))
            if replaced != irradiance:
                params["irradiance"] = replaced
                changed = True
    if spec.kind == "scaled":
        inner = params.get("inner")
        if isinstance(inner, HarvesterSpec):
            rebuilt = _map_replay_traces(inner, transform)
            if rebuilt is not inner:
                params["inner"] = rebuilt
                changed = True
    if not changed:
        return spec
    return HarvesterSpec(kind=spec.kind, params=params)


def resolve_scenario_traces(scenario: ScenarioSpec) -> ScenarioSpec:
    """Verify and pin every trace file reference in *scenario*.

    For each replay trace that references a file, streams the whole file
    (bounded memory), checks every chunk checksum plus the footer digest,
    and pins the verified ``trace_hash`` into the returned scenario.  A
    missing or corrupt file — or a pinned hash the content no longer
    matches — raises :class:`~repro.errors.TraceFormatError` (a
    :class:`SpecError`, so service edges map it to a 4xx).  Scenarios
    without trace references are returned unchanged.

    This is the edge step: the service and the CLI resolve before
    computing cache keys or touching the worker pool, so every key
    downstream embeds the *actual* content hash.
    """
    from repro.spec.model import TraceSpecV1

    if not _collect_replay_traces(scenario.platform.harvester):
        return scenario

    from repro.errors import TraceFormatError
    from repro.traces import compute_trace_hash

    def pin(data: Mapping[str, Any]) -> Mapping[str, Any]:
        trace_spec = TraceSpecV1.from_dict(data)
        if trace_spec.path is None:
            return data
        verified = compute_trace_hash(trace_spec.path)
        if trace_spec.trace_hash is not None and trace_spec.trace_hash != verified:
            raise TraceFormatError(
                f"trace {trace_spec.path!r} content hash {verified} does not "
                f"match the scenario's pinned trace_hash {trace_spec.trace_hash}"
            )
        return trace_spec.pinned(verified).to_dict()

    harvester = _map_replay_traces(scenario.platform.harvester, pin)
    if harvester is scenario.platform.harvester:
        return scenario
    platform = dataclasses.replace(scenario.platform, harvester=harvester)
    return dataclasses.replace(scenario, platform=platform)


def scenario_trace_hashes(scenario: ScenarioSpec) -> "list[str]":
    """Content hashes of every recorded trace a scenario replays.

    Inline samples hash directly; pinned file references use their pin.
    An *unpinned* file reference forces a full verify of the file here —
    edges are expected to :func:`resolve_scenario_traces` first, which
    makes this lookup free.
    """
    from repro.spec.model import TraceSpecV1
    from repro.traces import compute_trace_hash, content_hash

    hashes = []
    for data in _collect_replay_traces(scenario.platform.harvester):
        trace_spec = TraceSpecV1.from_dict(data)
        if trace_spec.samples is not None:
            hashes.append(
                content_hash(
                    trace_spec.samples, interpolation=trace_spec.interpolation
                )
            )
        elif trace_spec.trace_hash is not None:
            hashes.append(trace_spec.trace_hash)
        else:
            hashes.append(compute_trace_hash(trace_spec.path))
    return hashes


def scenario_trace_hash(scenario: ScenarioSpec) -> Optional[str]:
    """One stable trace identity for cache keys and planner cohorts.

    ``None`` when the scenario replays no recorded traces (the common
    case — existing cache keys stay byte-identical); the single
    ``trace_hash`` when it replays one; a sha256 over the ordered hashes
    when it replays several.
    """
    hashes = scenario_trace_hashes(scenario)
    if not hashes:
        return None
    if len(hashes) == 1:
        return hashes[0]
    digest = hashlib.sha256()
    for value in hashes:
        digest.update(value.encode())
        digest.update(b"\n")
    return digest.hexdigest()


def assemble_from_spec(
    spec: PlatformSpecV1,
    kind: "str | SystemKind" = SystemKind.CAPY_P,
    telemetry=None,
) -> PowerAssembly:
    """Build a :class:`PowerAssembly` straight from a declarative platform."""
    return build_system(platform_from_spec(spec), kind=kind, telemetry=telemetry)


# ---------------------------------------------------------------------------
# Scenarios -> applications
# ---------------------------------------------------------------------------

#: Workload fields each application accepts beyond ``app``.
APP_WORKLOAD_FIELDS: Dict[str, Tuple[str, ...]] = {
    "temp-alarm": ("seed", "event_count", "mean_interarrival", "horizon"),
    "grc-fast": ("seed", "event_count", "mean_interarrival"),
    "grc-compact": ("seed", "event_count", "mean_interarrival"),
    "csr": ("seed", "event_count", "mean_interarrival"),
}


def _workload_kwargs(scenario: ScenarioSpec) -> Dict[str, Any]:
    app = scenario.app
    allowed = APP_WORKLOAD_FIELDS[app]
    workload = {k: v for k, v in scenario.workload.items() if k != "app"}
    unknown = sorted(set(workload) - set(allowed))
    if unknown:
        raise SpecError(
            f"scenario {scenario.name!r}: workload fields {unknown} not "
            f"accepted by app {app!r}; allowed: {sorted(allowed)}"
        )
    kwargs: Dict[str, Any] = {}
    for key, value in workload.items():
        if key in ("seed", "event_count"):
            kwargs[key] = int(value)
        else:
            kwargs[key] = float(value)
    return kwargs


def build_scenario_app(
    scenario: "ScenarioSpec | str",
    kind: "str | SystemKind | None" = None,
):
    """Assemble the :class:`~repro.apps.base.AppInstance` a scenario names.

    *scenario* may be a :class:`ScenarioSpec`, a JSON document string, or
    a path to one.  *kind* overrides the scenario's declared system (the
    campaign harness runs one scenario across all four).
    """
    if not isinstance(scenario, ScenarioSpec):
        scenario = load_scenario(scenario)
    app = scenario.app
    if app is None:
        raise SpecError(
            f"scenario {scenario.name!r} names no application (workload "
            f"'app' field); use platform_from_spec/build_system for "
            f"bare platforms"
        )
    if app not in APP_WORKLOAD_FIELDS:
        raise SpecError(
            f"scenario {scenario.name!r}: unknown app {app!r}; "
            f"known: {sorted(APP_WORKLOAD_FIELDS)}"
        )
    system = SystemKind.from_name(kind if kind is not None else scenario.system)
    platform = platform_from_spec(scenario.platform)
    kwargs = _workload_kwargs(scenario)

    # Imported here: the app modules import repro.core.builder, which in
    # turn reaches back into repro.spec for build_system's spec path.
    if app == "temp-alarm":
        from repro.apps.temp_alarm import build_temp_alarm

        return build_temp_alarm(system, platform=platform, **kwargs)
    if app in ("grc-fast", "grc-compact"):
        from repro.apps.grc import GRCVariant, build_grc

        variant = GRCVariant.FAST if app == "grc-fast" else GRCVariant.COMPACT
        return build_grc(system, variant=variant, platform=platform, **kwargs)
    from repro.apps.csr import build_csr

    return build_csr(system, platform=platform, **kwargs)


class ScenarioBuilder:
    """A picklable ``builder(kind) -> AppInstance`` closed over a scenario.

    The only state is the canonical scenario JSON string, so instances
    always pickle cleanly — the process pool ships the JSON to workers
    instead of a closure over live simulator objects.
    """

    __slots__ = ("scenario_json",)

    def __init__(self, scenario: "ScenarioSpec | str") -> None:
        if isinstance(scenario, ScenarioSpec):
            self.scenario_json = canonical_json(scenario)
        else:
            self.scenario_json = canonical_json(load_scenario(scenario))

    @property
    def scenario(self) -> ScenarioSpec:
        """The scenario this builder assembles (parsed on demand)."""
        return load_scenario(self.scenario_json)

    def __call__(self, kind: "str | SystemKind | None" = None):
        return build_scenario_app(self.scenario, kind=kind)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ScenarioBuilder)
            and self.scenario_json == other.scenario_json
        )

    def __hash__(self) -> int:
        return hash(self.scenario_json)

    def __repr__(self) -> str:
        return f"ScenarioBuilder({self.scenario.name!r})"
