"""Command-line interface.

Three subcommands drive the library without writing Python::

    python -m repro.cli list
    python -m repro.cli run-app temp-alarm --system CB-P --events 5
    python -m repro.cli experiment fig08 --scale 0.2
    python -m repro.cli experiment all --scale 0.5

``run-app`` executes one evaluation application on one power system and
prints a trace summary (optionally exporting the full trace as JSON);
``experiment`` regenerates a paper figure; ``list`` enumerates both.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.apps import GRCVariant, build_csr, build_grc, build_temp_alarm
from repro.apps.base import AppInstance
from repro.core.builder import SystemKind
from repro.sim.export import save_trace_json

#: Application name -> builder taking (kind, seed, event_count).
APP_BUILDERS: Dict[str, Callable[..., AppInstance]] = {
    "temp-alarm": lambda kind, seed, events: build_temp_alarm(
        kind, seed=seed, event_count=events
    ),
    "grc-fast": lambda kind, seed, events: build_grc(
        kind, GRCVariant.FAST, seed=seed, event_count=events
    ),
    "grc-compact": lambda kind, seed, events: build_grc(
        kind, GRCVariant.COMPACT, seed=seed, event_count=events
    ),
    "csr": lambda kind, seed, events: build_csr(
        kind, seed=seed, event_count=events
    ),
}

#: Experiment name -> module (resolved lazily to keep startup fast).
EXPERIMENT_MODULES = [
    "fig02",
    "fig03",
    "fig04",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "characterization",
    "capysat",
    "ablation",
    "checkpoint",
    "debs",
    "power-sweep",
    "versatility",
    "interrupt",
    "all",
]

_SYSTEM_BY_NAME = {kind.value: kind for kind in SystemKind}


def _cmd_list(_: argparse.Namespace) -> int:
    print("applications (run-app):")
    for name in APP_BUILDERS:
        print(f"  {name}")
    print("power systems (--system):")
    for kind in SystemKind:
        print(f"  {kind.value}")
    print("experiments (experiment):")
    for name in EXPERIMENT_MODULES:
        print(f"  {name}")
    return 0


def _cmd_run_app(args: argparse.Namespace) -> int:
    builder = APP_BUILDERS[args.app]
    kind = _SYSTEM_BY_NAME[args.system]
    instance = builder(kind, args.seed, args.events)
    horizon = (
        args.horizon if args.horizon is not None else instance.schedule.horizon + 60.0
    )
    trace = instance.run(horizon)

    print(f"{instance.name} on {kind.value}: {horizon:.0f} s simulated")
    for counter in sorted(trace.counters):
        print(f"  {counter:24s} {trace.counters[counter]}")
    print(f"  {'samples':24s} {len(trace.samples)}")
    print(f"  {'packets':24s} {len(trace.packets)}")
    reported = trace.reported_event_ids()
    print(f"  {'events reported':24s} {len(reported)} / {len(instance.schedule)}")
    if args.export:
        path = save_trace_json(trace, args.export)
        print(f"trace exported to {path}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    # Imports are local so `repro.cli list` stays instant.
    name = args.name
    if name == "fig02":
        from repro.experiments import fig02_fixed_capacity as module

        module.main()
    elif name == "fig03":
        from repro.experiments import fig03_design_space as module

        module.main()
    elif name == "fig04":
        from repro.experiments import fig04_volume as module

        module.main()
    elif name == "fig08":
        from repro.experiments import fig08_accuracy as module

        module.main(seed=args.seed, scale=args.scale)
    elif name == "fig09":
        from repro.experiments import fig09_latency as module

        module.main(seed=args.seed, scale=args.scale)
    elif name == "fig10":
        from repro.experiments import fig10_sensitivity as module

        module.main(seed=args.seed)
    elif name == "fig11":
        from repro.experiments import fig11_intersample as module

        module.main(seed=args.seed)
    elif name == "characterization":
        from repro.experiments import characterization as module

        module.main()
    elif name == "capysat":
        from repro.experiments import capysat_study as module

        module.main(seed=args.seed)
    elif name == "ablation":
        from repro.experiments import ablation as module

        module.main()
    elif name == "checkpoint":
        from repro.experiments import checkpoint_study as module

        module.main()
    elif name == "debs":
        from repro.experiments import debs_comparison as module

        module.main(seed=args.seed)
    elif name == "power-sweep":
        from repro.experiments import power_sweep as module

        module.main(seed=args.seed)
    elif name == "versatility":
        from repro.experiments import versatility as module

        module.main(seed=args.seed)
    elif name == "interrupt":
        from repro.experiments import interrupt_study as module

        module.main(seed=args.seed)
    elif name == "all":
        from repro.experiments import run_all as module

        module.main(
            seed=args.seed,
            scale=args.scale,
            jobs=1 if args.serial else args.jobs,
            use_cache=not args.no_cache,
            clear_cache=args.clear_cache,
        )
    else:  # pragma: no cover - argparse choices prevent this
        raise SystemExit(f"unknown experiment {name!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Capybara (ASPLOS 2018) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="enumerate apps and experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run-app", help="run one app on one system")
    run_parser.add_argument("app", choices=sorted(APP_BUILDERS))
    run_parser.add_argument(
        "--system",
        choices=sorted(_SYSTEM_BY_NAME),
        default=SystemKind.CAPY_P.value,
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--events", type=int, default=10)
    run_parser.add_argument(
        "--horizon", type=float, default=None, help="seconds (default: schedule + 60)"
    )
    run_parser.add_argument(
        "--export", type=str, default=None, help="write the trace to this JSON file"
    )
    run_parser.set_defaults(func=_cmd_run_app)

    exp_parser = sub.add_parser("experiment", help="regenerate a paper figure")
    exp_parser.add_argument("name", choices=EXPERIMENT_MODULES)
    exp_parser.add_argument("--seed", type=int, default=0)
    exp_parser.add_argument("--scale", type=float, default=0.25)
    exp_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for `all` (default: REPRO_JOBS or CPU count)",
    )
    exp_parser.add_argument(
        "--serial", action="store_true",
        help="force single-process execution for `all`",
    )
    exp_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache for `all`",
    )
    exp_parser.add_argument(
        "--clear-cache", action="store_true",
        help="drop cached `all` results before running",
    )
    exp_parser.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
