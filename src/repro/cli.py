"""Command-line interface.

Five subcommands drive the library without writing Python::

    python -m repro.cli list
    python -m repro.cli run-app temp-alarm --system CB-P --events 5
    python -m repro.cli run --spec scenario.json --system Fixed
    python -m repro.cli spec dump temp-alarm > scenario.json
    python -m repro.cli spec check tests/golden/specs/*.json
    python -m repro.cli experiment fig08 --scale 0.2
    python -m repro.cli experiment all --scale 0.5 --metrics-out m.jsonl

``run-app`` executes one evaluation application on one power system and
prints a trace summary (optionally exporting the full trace as JSON);
``run`` does the same from a declarative scenario JSON file
(:mod:`repro.spec`); ``spec dump`` prints the scenario an app or a
registered experiment declares, and ``spec check`` validates scenario
files; ``experiment`` regenerates a paper figure; ``list`` enumerates
everything.  The experiment names come straight from the experiment
registry (:mod:`repro.experiments.registry`) — registering a new
experiment in :mod:`repro.experiments.suite` makes it listable and
runnable here with no CLI changes.

``--metrics-out``/``--trace-out`` opt the run into the observability
layer (:mod:`repro.observability`) and dump canonical JSONL.
``--inject faults.json`` arms a :mod:`repro.faults` schedule: ``run``
and ``run-app`` apply its simulation faults (harvester blackouts,
brown-out sags, ESR/leakage spikes, stuck switches) to the instance
before running; ``experiment all`` applies its ``worker_crash`` faults
as deterministic campaign chaos.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.apps import GRCVariant, build_csr, build_grc, build_temp_alarm
from repro.apps.base import AppInstance
from repro.core.builder import SystemKind
from repro.sim.export import save_trace_json

#: Application name -> builder taking (kind, seed, event_count).
APP_BUILDERS: Dict[str, Callable[..., AppInstance]] = {
    "temp-alarm": lambda kind, seed, events: build_temp_alarm(
        kind, seed=seed, event_count=events
    ),
    "grc-fast": lambda kind, seed, events: build_grc(
        kind, GRCVariant.FAST, seed=seed, event_count=events
    ),
    "grc-compact": lambda kind, seed, events: build_grc(
        kind, GRCVariant.COMPACT, seed=seed, event_count=events
    ),
    "csr": lambda kind, seed, events: build_csr(
        kind, seed=seed, event_count=events
    ),
}

_SYSTEM_BY_NAME = {kind.value: kind for kind in SystemKind}


def _experiment_names() -> List[str]:
    """Registered experiment ids plus the ``all`` suite pseudo-name."""
    from repro.experiments.registry import REGISTRY

    return REGISTRY.ids() + ["all"]


def __getattr__(name: str):
    if name == "EXPERIMENT_MODULES":
        warnings.warn(
            "repro.cli.EXPERIMENT_MODULES is replaced by the experiment "
            "registry (repro.experiments.registry.REGISTRY.ids())",
            DeprecationWarning,
            stacklevel=2,
        )
        return _experiment_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ---------------------------------------------------------------------------
# Argument validation (fail fast with a clear message, before any work)
# ---------------------------------------------------------------------------

def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _writable_path(text: str) -> Path:
    path = Path(text)
    if not path.parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"directory {path.parent} does not exist"
        )
    return path


# ---------------------------------------------------------------------------
# Telemetry output shared by run-app and single experiments
# ---------------------------------------------------------------------------

def _dump_telemetry(telemetry, scope: str, args: argparse.Namespace) -> None:
    """Write requested JSONL outputs and a one-line summary."""
    from repro.observability.tracing import write_jsonl

    if args.metrics_out is not None:
        path = write_jsonl(telemetry.metric_records(scope=scope), args.metrics_out)
        print(f"[telemetry] metrics written to {path}")
    if args.trace_out is not None:
        path = write_jsonl(telemetry.trace_records(), args.trace_out)
        print(
            f"[telemetry] {len(telemetry.tracer.records)} trace records "
            f"written to {path}"
        )


def _wants_telemetry(args: argparse.Namespace) -> bool:
    return args.metrics_out is not None or args.trace_out is not None


def _load_inject(args: argparse.Namespace):
    """The fault schedule named by ``--inject``, or ``None``.

    Exits with a spec error (code 2) rather than a traceback when the
    file is missing or invalid — injection mistakes are user input
    errors, not crashes.
    """
    if getattr(args, "inject", None) is None:
        return None
    from repro.errors import SpecError
    from repro.faults import load_fault_schedule

    try:
        return load_fault_schedule(Path(args.inject))
    except (SpecError, OSError) as error:
        print(f"error: --inject: {error}", file=sys.stderr)
        raise SystemExit(2)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _cmd_list(_: argparse.Namespace) -> int:
    from repro.experiments.registry import REGISTRY

    print("applications (run-app):")
    for name in APP_BUILDERS:
        print(f"  {name}")
    print("power systems (--system):")
    for kind in SystemKind:
        print(f"  {kind.value}")
    print("experiments (experiment):")
    for exp in REGISTRY.all():
        print(f"  {exp.job_id:18s} {exp.title}")
    print(f"  {'all':18s} the full evaluation suite (run_all)")
    return 0


def _report_run(
    instance: AppInstance,
    kind: SystemKind,
    horizon: float,
    trace,
    args: argparse.Namespace,
) -> None:
    """Trace summary shared by ``run-app`` and ``run --spec``."""
    print(f"{instance.name} on {kind.value}: {horizon:.0f} s simulated")
    for counter in sorted(trace.counters):
        print(f"  {counter:24s} {trace.counters[counter]}")
    print(f"  {'samples':24s} {len(trace.samples)}")
    print(f"  {'packets':24s} {len(trace.packets)}")
    reported = trace.reported_event_ids()
    print(f"  {'events reported':24s} {len(reported)} / {len(instance.schedule)}")
    if args.export:
        path = save_trace_json(trace, args.export)
        print(f"trace exported to {path}")


def _cmd_run_app(args: argparse.Namespace) -> int:
    from repro.observability.telemetry import Telemetry, telemetry_scope

    builder = APP_BUILDERS[args.app]
    kind = _SYSTEM_BY_NAME[args.system]
    schedule = _load_inject(args)
    telemetry = Telemetry() if _wants_telemetry(args) else None
    scope = (
        telemetry_scope(telemetry)
        if telemetry is not None
        else contextlib.nullcontext()
    )
    with scope:
        instance = builder(kind, args.seed, args.events)
        if schedule is not None:
            from repro.faults import apply_faults

            apply_faults(instance, schedule, telemetry=telemetry)
        horizon = (
            args.horizon
            if args.horizon is not None
            else instance.schedule.horizon + 60.0
        )
        trace = instance.run(horizon)

    _report_run(instance, kind, horizon, trace, args)
    if telemetry is not None:
        _dump_telemetry(telemetry, scope=args.app, args=args)
    return 0


def _cmd_run_spec(args: argparse.Namespace) -> int:
    from repro.errors import SpecError
    from repro.observability.telemetry import Telemetry, telemetry_scope
    from repro.spec import build_scenario_app, load_scenario

    try:
        scenario = load_scenario(Path(args.spec))
    except (SpecError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    kind = SystemKind.from_name(args.system or scenario.system)
    fault_schedule = _load_inject(args)
    telemetry = Telemetry() if _wants_telemetry(args) else None
    scope = (
        telemetry_scope(telemetry)
        if telemetry is not None
        else contextlib.nullcontext()
    )
    with scope:
        instance = build_scenario_app(scenario, kind=kind)
        if fault_schedule is not None:
            from repro.faults import apply_faults

            apply_faults(instance, fault_schedule, telemetry=telemetry)
        horizon = (
            args.horizon
            if args.horizon is not None
            else instance.schedule.horizon + 60.0
        )
        trace = instance.run(horizon)

    _report_run(instance, kind, horizon, trace, args)
    if telemetry is not None:
        _dump_telemetry(telemetry, scope=scenario.name, args=args)
    return 0


def _scenario_for_name(name: str, seed: int, scale: float) -> List:
    """Scenarios declared by an app name or a registered experiment."""
    from repro.errors import SpecError

    if name in APP_BUILDERS:
        from repro.apps import csr, grc, temp_alarm
        from repro.apps.grc import GRCVariant

        factories = {
            "temp-alarm": lambda: temp_alarm.scenario(seed=seed),
            "grc-fast": lambda: grc.scenario(variant=GRCVariant.FAST, seed=seed),
            "grc-compact": lambda: grc.scenario(
                variant=GRCVariant.COMPACT, seed=seed
            ),
            "csr": lambda: csr.scenario(seed=seed),
        }
        return [factories[name]()]

    from repro.experiments.registry import REGISTRY

    if name in REGISTRY:
        exp = REGISTRY.get(name)
        if exp.scenarios is None:
            raise SpecError(
                f"experiment {name!r} declares no scenarios (analytic or "
                f"sweep-style experiments have no single system description)"
            )
        return list(exp.scenarios(seed, scale))
    raise SpecError(
        f"unknown app or experiment {name!r}; apps: "
        f"{sorted(APP_BUILDERS)}; see `repro list` for experiments"
    )


def _cmd_spec(args: argparse.Namespace) -> int:
    import json

    from repro.errors import SpecError
    from repro.spec import dump_scenario, load_scenario, spec_hash

    if args.spec_command == "dump":
        try:
            scenarios = _scenario_for_name(args.name, args.seed, args.scale)
        except SpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.index is not None:
            if not 0 <= args.index < len(scenarios):
                print(
                    f"error: --index {args.index} out of range "
                    f"(0..{len(scenarios) - 1})",
                    file=sys.stderr,
                )
                return 2
            scenarios = [scenarios[args.index]]
        if len(scenarios) == 1:
            text = dump_scenario(scenarios[0])
        else:
            text = (
                json.dumps(
                    [scenario.to_dict() for scenario in scenarios],
                    sort_keys=True,
                    indent=2,
                )
                + "\n"
            )
        if args.out is not None:
            Path(args.out).write_text(text)
            print(f"wrote {args.out}")
        else:
            print(text, end="")
        return 0

    # spec check
    backend = getattr(args, "backend", "scalar")
    failures = 0
    for name in args.files:
        try:
            scenario = load_scenario(Path(name))
        except (SpecError, OSError, ValueError) as error:
            print(f"FAIL {name}: {error}")
            failures += 1
            continue
        if backend == "vec":
            from repro.vec import check_scenario

            reasons = check_scenario(scenario)
            if reasons:
                listing = "; ".join(reasons)
                print(f"FAIL {name}: vec backend cannot run this scenario: {listing}")
                failures += 1
                continue
        print(f"ok   {name}  {scenario.name}  sha256:{spec_hash(scenario)[:12]}")
    if failures:
        print(f"{failures}/{len(args.files)} scenario files failed validation")
        return 1
    return 0


def _cmd_vec_info(_: argparse.Namespace) -> int:
    """Print the vectorized backend's feature matrix."""
    from repro.vec import vec_capabilities

    info = vec_capabilities()
    print(f"backend: {info['backend']}")
    print("harvesters:")
    for kind, text in info["harvesters"].items():
        print(f"  {kind:10s} {text}")
    print("systems:")
    for kind, text in info["systems"].items():
        print(f"  {kind:10s} {text}")
    for key in ("boosters", "limiter", "reconfiguration", "faults", "workloads"):
        print(f"{key}: {info[key]}")
    print(
        "\nroutable experiments (repro experiment NAME --backend vec): "
        "fig03, fig04, ablation, power-sweep"
    )
    print("spec validation: repro spec check --backend vec FILE...")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "all":
        from repro.experiments import run_all

        run_all.main(
            seed=args.seed,
            scale=args.scale,
            jobs=1 if args.serial else args.jobs,
            use_cache=not args.no_cache,
            clear_cache=args.clear_cache,
            metrics_out=args.metrics_out,
            trace_out=args.trace_out,
            inject=args.inject,
            backend=args.backend,
        )
        return 0

    from repro.errors import ConfigurationError
    from repro.experiments.registry import run_experiment
    from repro.observability.telemetry import Telemetry

    telemetry = Telemetry() if _wants_telemetry(args) else None
    try:
        text = run_experiment(
            name,
            seed=args.seed,
            scale=args.scale,
            telemetry=telemetry,
            backend=args.backend,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(text, end="" if text.endswith("\n") else "\n")
    if telemetry is not None:
        _dump_telemetry(telemetry, scope=name, args=args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Capybara (ASPLOS 2018) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="enumerate apps and experiments")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run-app", help="run one app on one system")
    run_parser.add_argument("app", choices=sorted(APP_BUILDERS))
    run_parser.add_argument(
        "--system",
        choices=sorted(_SYSTEM_BY_NAME),
        default=SystemKind.CAPY_P.value,
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--events", type=int, default=10)
    run_parser.add_argument(
        "--horizon", type=float, default=None, help="seconds (default: schedule + 60)"
    )
    run_parser.add_argument(
        "--export", type=str, default=None, help="write the trace to this JSON file"
    )
    run_parser.add_argument(
        "--inject", type=str, default=None, metavar="FILE",
        help="fault schedule JSON to apply before running (repro.faults)",
    )
    run_parser.add_argument(
        "--metrics-out", type=_writable_path, default=None, metavar="FILE",
        help="write run metrics as JSONL to FILE",
    )
    run_parser.add_argument(
        "--trace-out", type=_writable_path, default=None, metavar="FILE",
        help="write structured trace records as JSONL to FILE",
    )
    run_parser.set_defaults(func=_cmd_run_app)

    spec_run = sub.add_parser(
        "run", help="run a declarative scenario spec (JSON file)"
    )
    spec_run.add_argument(
        "--spec", required=True, metavar="FILE",
        help="scenario JSON produced by `spec dump` or written by hand",
    )
    spec_run.add_argument(
        "--system", default=None, metavar="KIND",
        help="override the spec's system (Pwr, Fixed, CB-R, CB-P)",
    )
    spec_run.add_argument(
        "--horizon", type=float, default=None, help="seconds (default: schedule + 60)"
    )
    spec_run.add_argument(
        "--export", type=str, default=None, help="write the trace to this JSON file"
    )
    spec_run.add_argument(
        "--inject", type=str, default=None, metavar="FILE",
        help="fault schedule JSON to apply before running (repro.faults)",
    )
    spec_run.add_argument(
        "--metrics-out", type=_writable_path, default=None, metavar="FILE",
        help="write run metrics as JSONL to FILE",
    )
    spec_run.add_argument(
        "--trace-out", type=_writable_path, default=None, metavar="FILE",
        help="write structured trace records as JSONL to FILE",
    )
    spec_run.set_defaults(func=_cmd_run_spec)

    spec_parser = sub.add_parser(
        "spec", help="inspect and validate scenario specs"
    )
    spec_sub = spec_parser.add_subparsers(dest="spec_command", required=True)
    dump_parser = spec_sub.add_parser(
        "dump", help="print the scenario an app or experiment declares"
    )
    dump_parser.add_argument(
        "name", help="app name (see `repro list`) or experiment id"
    )
    dump_parser.add_argument("--seed", type=int, default=0)
    dump_parser.add_argument(
        "--scale", type=float, default=0.25,
        help="event-count scale for experiment scenarios",
    )
    dump_parser.add_argument(
        "--index", type=int, default=None,
        help="pick one scenario when the experiment declares several",
    )
    dump_parser.add_argument(
        "--out", type=_writable_path, default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )
    dump_parser.set_defaults(func=_cmd_spec)
    check_parser = spec_sub.add_parser(
        "check", help="validate scenario JSON files"
    )
    check_parser.add_argument("files", nargs="+", metavar="FILE")
    check_parser.add_argument(
        "--backend", choices=["scalar", "vec"], default="scalar",
        help="also require support by this simulation backend",
    )
    check_parser.set_defaults(func=_cmd_spec)

    vec_info_parser = sub.add_parser(
        "vec-info", help="show the vectorized backend's supported features"
    )
    vec_info_parser.set_defaults(func=_cmd_vec_info)

    exp_parser = sub.add_parser("experiment", help="regenerate a paper figure")
    exp_parser.add_argument("name", choices=_experiment_names())
    exp_parser.add_argument("--seed", type=int, default=0)
    exp_parser.add_argument("--scale", type=float, default=0.25)
    exp_parser.add_argument(
        "--backend", choices=["scalar", "vec"], default="scalar",
        help="simulation engine for backend-routable experiments "
        "(fig03, fig04, ablation, power-sweep; see `repro vec-info`)",
    )
    exp_parser.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="worker processes for `all`, >= 1 (default: REPRO_JOBS or CPU count)",
    )
    exp_parser.add_argument(
        "--serial", action="store_true",
        help="force single-process execution for `all`",
    )
    exp_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache for `all`",
    )
    exp_parser.add_argument(
        "--clear-cache", action="store_true",
        help="drop cached `all` results before running",
    )
    exp_parser.add_argument(
        "--inject", type=Path, default=None, metavar="FILE",
        help="fault schedule JSON; `all` injects its worker_crash faults "
        "as campaign chaos",
    )
    exp_parser.add_argument(
        "--metrics-out", type=_writable_path, default=None, metavar="FILE",
        help="write metrics as JSONL to FILE",
    )
    exp_parser.add_argument(
        "--trace-out", type=_writable_path, default=None, metavar="FILE",
        help="write structured trace records as JSONL to FILE",
    )
    exp_parser.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
