"""Command-line interface.

The verbs share one flag vocabulary (``--spec``, ``--inject``,
``--backend``, ``--jobs``, ``--metrics-out``/``--trace-out``) through
common argparse parents, so a flag means the same thing everywhere it
appears::

    python -m repro.cli list
    python -m repro.cli info                     # version + backend matrix
    python -m repro.cli info --check specs/*.json --backend vec
    python -m repro.cli run-app temp-alarm --system CB-P --events 5
    python -m repro.cli run --spec scenario.json --system Fixed
    python -m repro.cli spec dump temp-alarm > scenario.json
    python -m repro.cli trace record --spec scenario.json --out env.rtrc \
        --duration 2h --dt 50ms
    python -m repro.cli trace info env.rtrc
    python -m repro.cli trace replay env.rtrc --at 0 30min 1h
    python -m repro.cli experiment fig08 --scale 0.2
    python -m repro.cli experiment all --scale 0.5 --metrics-out m.jsonl
    python -m repro.cli run-all --resume            # continue after a kill
    python -m repro.cli campaign report .repro-cache/campaign.ckpt
    python -m repro.cli serve --port 8787 --jobs 4
    python -m repro.cli submit --spec scenario.json --url http://host:8787

``run-app`` executes one evaluation application on one power system;
``run`` does the same from a declarative scenario JSON file
(:mod:`repro.spec`); ``experiment`` regenerates a paper figure;
``serve`` boots the long-lived job service (:mod:`repro.service`) and
``submit`` sends a scenario to one — printing the byte-identical
summary a local ``run --spec`` would; ``info`` reports the API version
and per-backend capability matrix (absorbing the older ``vec-info`` and
``spec check`` spellings, which still work with a deprecation notice);
``spec dump`` prints the scenario an app or experiment declares;
``trace record``/``info``/``replay`` sample synthetic environments into
checksummed trace files (:mod:`repro.traces`), verify them, and read
them back — a recorded file slots into any scenario as a
``{"kind": "replay", ...}`` irradiance trace; ``list`` enumerates
everything.

``--metrics-out``/``--trace-out`` opt any run into the observability
layer and dump canonical JSONL.  ``--inject faults.json`` arms a
:mod:`repro.faults` schedule: simulation faults for single runs,
``worker_crash`` campaign chaos for ``experiment all`` and ``serve``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.apps import GRCVariant, build_csr, build_grc, build_temp_alarm
from repro.apps.base import AppInstance
from repro.core.builder import SystemKind

#: Application name -> builder taking (kind, seed, event_count).
APP_BUILDERS: Dict[str, Callable[..., AppInstance]] = {
    "temp-alarm": lambda kind, seed, events: build_temp_alarm(
        kind, seed=seed, event_count=events
    ),
    "grc-fast": lambda kind, seed, events: build_grc(
        kind, GRCVariant.FAST, seed=seed, event_count=events
    ),
    "grc-compact": lambda kind, seed, events: build_grc(
        kind, GRCVariant.COMPACT, seed=seed, event_count=events
    ),
    "csr": lambda kind, seed, events: build_csr(
        kind, seed=seed, event_count=events
    ),
}

_SYSTEM_BY_NAME = {kind.value: kind for kind in SystemKind}

#: Default URL `submit` talks to (the `serve` default port).
DEFAULT_SERVICE_URL = "http://127.0.0.1:8787"


def _experiment_names() -> List[str]:
    """Registered experiment ids plus the ``all`` suite pseudo-name."""
    from repro.experiments.registry import REGISTRY

    return REGISTRY.ids() + ["all"]


def __getattr__(name: str):
    if name == "EXPERIMENT_MODULES":
        warnings.warn(
            "repro.cli.EXPERIMENT_MODULES is replaced by the experiment "
            "registry (repro.experiments.registry.REGISTRY.ids())",
            DeprecationWarning,
            stacklevel=2,
        )
        return _experiment_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ---------------------------------------------------------------------------
# Argument validation (fail fast with a clear message, before any work)
# ---------------------------------------------------------------------------

def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _writable_path(text: str) -> Path:
    path = Path(text)
    if not path.parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"directory {path.parent} does not exist"
        )
    return path


def _duration(text: str) -> float:
    """Seconds, with unit-suffix sugar (``50ms``, ``90min``, ``2h``)."""
    from repro.units import parse_duration

    try:
        return parse_duration(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))


# ---------------------------------------------------------------------------
# Shared flag vocabulary (argparse parents)
# ---------------------------------------------------------------------------

def _telemetry_parent() -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--metrics-out", type=_writable_path, default=None, metavar="FILE",
        help="write run metrics as JSONL to FILE",
    )
    parent.add_argument(
        "--trace-out", type=_writable_path, default=None, metavar="FILE",
        help="write structured trace records as JSONL to FILE",
    )
    return parent


def _inject_parent(help_text: Optional[str] = None) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--inject", type=str, default=None, metavar="FILE",
        help=help_text
        or "fault schedule JSON to apply before running (repro.faults)",
    )
    return parent


def _backend_parent(help_text: Optional[str] = None) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--backend", choices=["scalar", "vec"], default="scalar",
        help=help_text or "simulation engine (see `repro info`)",
    )
    return parent


def _jobs_parent(help_text: Optional[str] = None) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--jobs", type=_positive_int, default=None,
        help=help_text
        or "worker processes, >= 1 (default: REPRO_JOBS or CPU count)",
    )
    return parent


def _spec_parent(required: bool = True) -> argparse.ArgumentParser:
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--spec", required=required, metavar="FILE",
        help="scenario JSON produced by `spec dump` or written by hand",
    )
    return parent


# ---------------------------------------------------------------------------
# Telemetry output shared by run-app and single experiments
# ---------------------------------------------------------------------------

def _dump_telemetry(telemetry, scope: str, args: argparse.Namespace) -> None:
    """Write requested JSONL outputs and a one-line summary."""
    from repro.observability.tracing import write_jsonl

    if args.metrics_out is not None:
        path = write_jsonl(telemetry.metric_records(scope=scope), args.metrics_out)
        print(f"[telemetry] metrics written to {path}")
    if args.trace_out is not None:
        path = write_jsonl(telemetry.trace_records(), args.trace_out)
        print(
            f"[telemetry] {len(telemetry.tracer.records)} trace records "
            f"written to {path}"
        )


def _wants_telemetry(args: argparse.Namespace) -> bool:
    return args.metrics_out is not None or args.trace_out is not None


def _load_inject(args: argparse.Namespace):
    """The fault schedule named by ``--inject``, or ``None``.

    Exits with a spec error (code 2) rather than a traceback when the
    file is missing or invalid — injection mistakes are user input
    errors, not crashes.
    """
    if getattr(args, "inject", None) is None:
        return None
    from repro.errors import SpecError
    from repro.faults import load_fault_schedule

    try:
        return load_fault_schedule(Path(args.inject))
    except (SpecError, OSError) as error:
        print(f"error: --inject: {error}", file=sys.stderr)
        raise SystemExit(2)


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------

def _cmd_list(_: argparse.Namespace) -> int:
    from repro.experiments.registry import REGISTRY

    print("applications (run-app):")
    for name in APP_BUILDERS:
        print(f"  {name}")
    print("power systems (--system):")
    for kind in SystemKind:
        print(f"  {kind.value}")
    print("experiments (experiment):")
    for exp in REGISTRY.all():
        print(f"  {exp.job_id:18s} {exp.title}")
    print(f"  {'all':18s} the full evaluation suite (run_all)")
    return 0


def _report_run(
    instance: AppInstance,
    kind: SystemKind,
    horizon: float,
    trace,
    args: argparse.Namespace,
) -> None:
    """Trace summary shared by ``run-app`` and ``run --spec``."""
    from repro.service.runner import format_run_summary
    from repro.sim.export import save_trace_json

    print(format_run_summary(instance, kind, horizon, trace), end="")
    if args.export:
        path = save_trace_json(trace, args.export)
        print(f"trace exported to {path}")


def _cmd_run_app(args: argparse.Namespace) -> int:
    from repro.observability.telemetry import Telemetry, telemetry_scope

    if args.backend != "scalar":
        print(
            f"error: run-app is a single-device scalar path; the "
            f"{args.backend!r} backend routes grid experiments "
            f"(`repro experiment ... --backend {args.backend}`)",
            file=sys.stderr,
        )
        return 2
    builder = APP_BUILDERS[args.app]
    kind = _SYSTEM_BY_NAME[args.system]
    schedule = _load_inject(args)
    telemetry = Telemetry() if _wants_telemetry(args) else None
    scope = (
        telemetry_scope(telemetry)
        if telemetry is not None
        else contextlib.nullcontext()
    )
    with scope:
        instance = builder(kind, args.seed, args.events)
        if schedule is not None:
            from repro.faults import apply_faults

            apply_faults(instance, schedule, telemetry=telemetry)
        horizon = (
            args.horizon
            if args.horizon is not None
            else instance.schedule.horizon + 60.0
        )
        trace = instance.run(horizon)

    _report_run(instance, kind, horizon, trace, args)
    if telemetry is not None:
        _dump_telemetry(telemetry, scope=args.app, args=args)
    return 0


def _cmd_run_spec(args: argparse.Namespace) -> int:
    """``run --spec``: one scenario through the shared service runner.

    Routing through :func:`repro.service.runner.run_scenario_job` — the
    exact function service workers execute — is what keeps CLI output
    and HTTP job results byte-identical for the same
    spec/fault/backend.
    """
    from repro.errors import SpecError
    from repro.service.runner import run_scenario_job
    from repro.spec import canonical_json, load_scenario

    try:
        scenario = load_scenario(Path(args.spec))
        faults_json = None
        schedule = _load_inject(args)
        if schedule is not None:
            from repro.faults import dump_fault_schedule

            faults_json = dump_fault_schedule(schedule, pretty=False)
        collect = _wants_telemetry(args)
        result = run_scenario_job(
            canonical_json(scenario),
            system=args.system,
            horizon=args.horizon,
            faults_json=faults_json,
            backend=args.backend,
            collect=collect,
        )
    except (SpecError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result["summary"], end="")
    if args.export:
        path = Path(args.export)
        with path.open("w") as handle:
            json.dump(result["trace"], handle, indent=1)
        print(f"trace exported to {path}")
    if collect:
        from repro.observability.telemetry import Telemetry

        telemetry = Telemetry()
        telemetry.merge_snapshot(result["telemetry"] or {})
        _dump_telemetry(telemetry, scope=result["scenario"], args=args)
    return 0


def _scenario_for_name(name: str, seed: int, scale: float) -> List:
    """Scenarios declared by an app name or a registered experiment."""
    from repro.errors import SpecError

    if name in APP_BUILDERS:
        from repro.apps import csr, grc, temp_alarm
        from repro.apps.grc import GRCVariant

        factories = {
            "temp-alarm": lambda: temp_alarm.scenario(seed=seed),
            "grc-fast": lambda: grc.scenario(variant=GRCVariant.FAST, seed=seed),
            "grc-compact": lambda: grc.scenario(
                variant=GRCVariant.COMPACT, seed=seed
            ),
            "csr": lambda: csr.scenario(seed=seed),
        }
        return [factories[name]()]

    from repro.experiments.registry import REGISTRY

    if name in REGISTRY:
        exp = REGISTRY.get(name)
        if exp.scenarios is None:
            raise SpecError(
                f"experiment {name!r} declares no scenarios (analytic or "
                f"sweep-style experiments have no single system description)"
            )
        return list(exp.scenarios(seed, scale))
    raise SpecError(
        f"unknown app or experiment {name!r}; apps: "
        f"{sorted(APP_BUILDERS)}; see `repro list` for experiments"
    )


def _check_spec_files(files: List[str], backend: str) -> int:
    """Validate scenario files (shared by `info --check` / `spec check`)."""
    from repro.errors import SpecError
    from repro.spec import load_scenario, spec_hash

    failures = 0
    for name in files:
        try:
            scenario = load_scenario(Path(name))
        except (SpecError, OSError, ValueError) as error:
            print(f"FAIL {name}: {error}")
            failures += 1
            continue
        if backend == "vec":
            from repro.vec import check_scenario

            reasons = check_scenario(scenario)
            if reasons:
                listing = "; ".join(reasons)
                print(f"FAIL {name}: vec backend cannot run this scenario: {listing}")
                failures += 1
                continue
        print(f"ok   {name}  {scenario.name}  sha256:{spec_hash(scenario)[:12]}")
    if failures:
        print(f"{failures}/{len(files)} scenario files failed validation")
        return 1
    return 0


def _cmd_spec(args: argparse.Namespace) -> int:
    from repro.errors import SpecError
    from repro.spec import dump_scenario

    if args.spec_command == "dump":
        try:
            scenarios = _scenario_for_name(args.name, args.seed, args.scale)
        except SpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if args.index is not None:
            if not 0 <= args.index < len(scenarios):
                print(
                    f"error: --index {args.index} out of range "
                    f"(0..{len(scenarios) - 1})",
                    file=sys.stderr,
                )
                return 2
            scenarios = [scenarios[args.index]]
        if len(scenarios) == 1:
            text = dump_scenario(scenarios[0])
        else:
            text = (
                json.dumps(
                    [scenario.to_dict() for scenario in scenarios],
                    sort_keys=True,
                    indent=2,
                )
                + "\n"
            )
        if args.out is not None:
            Path(args.out).write_text(text)
            print(f"wrote {args.out}")
        else:
            print(text, end="")
        return 0

    # spec check (deprecated spelling of `repro info --check`)
    print(
        "note: `repro spec check` is deprecated; use "
        "`repro info --check FILE... [--backend vec]`",
        file=sys.stderr,
    )
    return _check_spec_files(args.files, getattr(args, "backend", "scalar"))


def _print_backend_matrix() -> None:
    """The per-backend capability matrix `info` and `vec-info` print."""
    print(
        "backends:\n"
        "  scalar     full simulation engine: every app, experiment, "
        "and fault kind"
    )
    try:
        from repro.vec import vec_capabilities
    except ImportError:  # pragma: no cover - numpy-less installs
        print("  vec        unavailable (numpy not installed)")
        return
    info = vec_capabilities()
    print(f"  {info['backend']:10s} struct-of-arrays fleet kernel:")
    print("    harvesters:")
    for kind, text in info["harvesters"].items():
        print(f"      {kind:10s} {text}")
    print("    systems:")
    for kind, text in info["systems"].items():
        print(f"      {kind:10s} {text}")
    for key in ("boosters", "limiter", "reconfiguration", "faults", "workloads"):
        print(f"    {key}: {info[key]}")
    print(
        "\nroutable experiments (repro experiment NAME --backend vec): "
        "fig03, fig04, ablation, power-sweep, fleet"
    )
    print(
        "campaign batching (repro run-all --backend vec): plans "
        "vec-routable jobs into fleet cohorts (see docs/performance.md)"
    )


def _cmd_info(args: argparse.Namespace) -> int:
    """Version, API generation, backend matrix, optional spec checks."""
    import repro

    if getattr(args, "check", None):
        return _check_spec_files(args.check, args.backend)
    print(f"repro {repro.__version__} — public API {repro.__api_version__}")
    _print_backend_matrix()
    _print_trace_info()
    print("spec validation: repro info --check FILE... [--backend vec]")
    print(f"service: repro serve / repro submit (default {DEFAULT_SERVICE_URL})")
    return 0


def _print_trace_info() -> None:
    """Registered trace kinds + the on-disk format version."""
    from repro.spec.model import TRACE_FIELDS
    from repro.traces import TRACE_FORMAT_VERSION

    kinds = ", ".join(sorted(TRACE_FIELDS))
    print(
        f"environment traces: kinds {kinds}; file format "
        f"v{TRACE_FORMAT_VERSION} (repro trace record|replay|info)"
    )


def _cmd_vec_info(args: argparse.Namespace) -> int:
    """Deprecated spelling of ``repro info``."""
    print(
        "note: `repro vec-info` is deprecated; use `repro info`",
        file=sys.stderr,
    )
    print("harvesters, systems and the rest of the vec feature matrix:")
    return _cmd_info(args)


# ---------------------------------------------------------------------------
# Environment traces (repro trace record|info|replay)
# ---------------------------------------------------------------------------

def _trace_source(args: argparse.Namespace):
    """The environment trace named by ``--env`` / ``--spec``, plus a label."""
    from repro.errors import SpecError
    from repro.spec import load_scenario
    from repro.spec.build import harvester_from_spec, trace_from_dict

    if (args.env is None) == (args.spec is None):
        raise SpecError(
            "trace record samples exactly one source: --env JSON "
            "or --spec FILE"
        )
    if args.env is not None:
        try:
            data = json.loads(args.env)
        except ValueError as error:
            raise SpecError(f"--env is not valid JSON: {error}")
        if not isinstance(data, dict) or "kind" not in data:
            raise SpecError(
                '--env must be a trace object like '
                '\'{"kind": "orbit", "period": 5400, ...}\''
            )
        return trace_from_dict(data), str(data["kind"])
    scenario = load_scenario(Path(args.spec))
    harvester = harvester_from_spec(scenario.platform.harvester)
    while hasattr(harvester, "inner"):  # unwrap the scaled wrapper
        harvester = harvester.inner
    if not hasattr(harvester, "irradiance"):
        raise SpecError(
            f"scenario {scenario.name!r} harvests from "
            f"{type(harvester).__name__}, which has no irradiance "
            f"environment to record"
        )
    return harvester.irradiance, f"{scenario.name}:irradiance"


def _cmd_trace_record(args: argparse.Namespace) -> int:
    """Sample a synthetic environment into a chunked trace file."""
    from repro.errors import SpecError
    from repro.traces import DEFAULT_CHUNK_SAMPLES, record_trace

    try:
        source, label = _trace_source(args)
        replay = record_trace(
            source,
            args.out,
            duration=args.duration,
            dt=args.dt,
            t0=args.t0,
            units=args.units,
            metadata={"source": label},
            chunk_samples=(
                args.chunk_samples
                if args.chunk_samples is not None
                else DEFAULT_CHUNK_SAMPLES
            ),
        )
    except (SpecError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        reader = replay._reader
        print(
            f"recorded {reader.n_samples} samples "
            f"({reader.n_chunks} chunks) from {label} to {args.out}"
        )
        print(f"  span [{reader.t0:g}, {reader.t_end:g}] s  dt {reader.dt:g} s")
        print(f"  trace_hash {replay.trace_hash}")
    finally:
        replay.close()
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    """Verify trace files and print their headers (CI golden gate)."""
    from repro.errors import SpecError
    from repro.traces import TraceReader

    failures = 0
    for name in args.files:
        try:
            with TraceReader(name) as reader:
                reader.verify()
                dt = "timestamped" if reader.dt is None else f"{reader.dt:g} s"
                print(
                    f"ok   {name}  {reader.n_samples} samples / "
                    f"{reader.n_chunks} chunks  dt {dt}  "
                    f"[{reader.t0:g}, {reader.t_end:g}] s  "
                    f"{reader.interpolation}  {reader.units}"
                )
                print(f"     trace_hash {reader.trace_hash}")
        except (SpecError, OSError) as error:
            print(f"FAIL {name}: {error}")
            failures += 1
    if failures:
        print(f"{failures}/{len(args.files)} trace files failed validation")
        return 1
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    """Replay a trace file: sample it at the requested times."""
    from repro.errors import SpecError
    from repro.traces import ReplayTrace

    try:
        trace = ReplayTrace.open(
            args.file,
            interpolation=args.interpolation,
            expected_hash=args.expect_hash,
        )
    except (SpecError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        reader = trace._reader
        print(
            f"{args.file}: {reader.n_samples} samples  "
            f"[{reader.t0:g}, {reader.t_end:g}] s  "
            f"{trace.interpolation}  {reader.units}"
        )
        times = args.at
        if not times:
            span = reader.t_end - reader.t0
            times = [reader.t0 + span * i / 4.0 for i in range(5)]
        for time in times:
            print(f"  t={time:g} s  level={trace(time):.17g}")
    finally:
        trace.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        return _cmd_trace_record(args)
    if args.trace_command == "info":
        return _cmd_trace_info(args)
    return _cmd_trace_replay(args)


def _cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "all":
        from repro.experiments import run_all

        from repro.errors import ConfigurationError

        try:
            run_all.main(
                seed=args.seed,
                scale=args.scale,
                jobs=1 if args.serial else args.jobs,
                use_cache=not args.no_cache,
                clear_cache=args.clear_cache,
                metrics_out=args.metrics_out,
                trace_out=args.trace_out,
                inject=Path(args.inject) if args.inject is not None else None,
                backend=args.backend,
                resume=getattr(args, "resume", False),
            )
        except ConfigurationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        return 0

    from repro.errors import ConfigurationError
    from repro.experiments.registry import run_experiment
    from repro.observability.telemetry import Telemetry

    telemetry = Telemetry() if _wants_telemetry(args) else None
    try:
        text = run_experiment(
            name,
            seed=args.seed,
            scale=args.scale,
            telemetry=telemetry,
            backend=args.backend,
        )
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(text, end="" if text.endswith("\n") else "\n")
    if telemetry is not None:
        _dump_telemetry(telemetry, scope=name, args=args)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    """``repro run-all``: the experiment campaign as a first-class verb.

    Identical to ``repro experiment all``; with ``--backend vec`` the
    campaign's vec-routable experiments run through the batching
    planner (:mod:`repro.experiments.plan`).
    """
    args.name = "all"
    return _cmd_experiment(args)


def _cmd_campaign(args: argparse.Namespace) -> int:
    """``repro campaign report``: analyse checkpoint files.

    Prints each checkpoint's campaign summary plus the same critical
    path / utilization / suggested ``--jobs`` report ``run-all`` ends
    with — straight from the state file, no registry needed.  A
    missing, corrupt, or malformed checkpoint is a FAIL line and exit
    code 1, which is what lets CI pin the on-disk format with a golden
    file.
    """
    from repro.errors import SpecError
    from repro.experiments.dag import CheckpointStore, report_from_state

    jobs = args.jobs if args.jobs is not None else 1
    failures = 0
    for name in args.files:
        store = CheckpointStore(Path(name))
        try:
            state = store.load()
        except SpecError as error:  # CheckpointError
            print(f"FAIL {name}: {error}")
            failures += 1
            continue
        if state is None:
            print(f"FAIL {name}: no such checkpoint file")
            failures += 1
            continue
        try:
            report = report_from_state(state, jobs=jobs)
        except SpecError as error:
            print(f"FAIL {name}: {error}")
            failures += 1
            continue
        campaign = state.campaign
        print(
            f"ok   {name}  campaign {str(campaign.get('name', '?'))!r}  "
            f"{len(state.completed)}/{len(campaign.get('nodes', {}))} "
            f"task(s) completed"
        )
        print(report.format())
    if failures:
        print(f"{failures}/{len(args.files)} checkpoint files failed validation")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the long-lived job service (blocks until interrupted)."""
    from repro.experiments.parallel import RetryPolicy
    from repro.service.app import ServiceConfig
    from repro.service.http import run_service

    chaos = None
    schedule = _load_inject(args)
    if schedule is not None:
        from repro.faults import build_injector

        chaos = build_injector(schedule).worker_chaos()
        if chaos is None:
            print(
                f"[faults] note: schedule {schedule.name!r} arms no "
                f"worker_crash faults; serving runs clean",
            )
    config = ServiceConfig(
        jobs=args.jobs if args.jobs is not None else 1,
        queue_limit=args.queue_limit,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        cache_dir=Path(args.cache_dir) if args.cache_dir is not None else None,
        use_cache=not args.no_cache,
        retry=RetryPolicy(seed=args.seed),
        chaos=chaos,
        job_ttl=args.job_ttl,
        batch_window=args.batch_window,
    )
    run_service(
        config,
        host=args.host,
        port=args.port,
        ready=lambda port: print(
            f"[service] listening on http://{args.host}:{port} "
            f"(jobs={config.jobs}, queue={config.queue_limit}, "
            f"quota={config.quota_rate}/s burst {config.quota_burst})",
            flush=True,
        ),
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit a scenario to a running service and print its summary."""
    import time
    import urllib.error
    import urllib.request

    from repro.errors import SpecError
    from repro.spec import load_scenario

    try:
        scenario = load_scenario(Path(args.spec))
    except (SpecError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload: Dict[str, object] = {"scenario": scenario.to_dict()}
    if args.system is not None:
        payload["system"] = args.system
    if args.horizon is not None:
        payload["horizon"] = args.horizon
    if args.backend != "scalar":
        payload["backend"] = args.backend
    schedule = _load_inject(args)
    if schedule is not None:
        payload["faults"] = schedule.to_dict()

    base = args.url.rstrip("/")

    def _call(url: str, data: Optional[bytes] = None) -> Dict[str, object]:
        request = urllib.request.Request(
            url,
            data=data,
            headers={
                "content-type": "application/json",
                "x-client-id": args.client_id,
            },
            method="POST" if data is not None else "GET",
        )
        with urllib.request.urlopen(request, timeout=args.timeout) as response:
            return json.loads(response.read().decode())

    try:
        status = _call(f"{base}/v1/jobs", json.dumps(payload).encode())
        job_id = status["job_id"]
        deadline = time.monotonic() + args.timeout
        while status.get("state") not in ("done", "failed"):
            if time.monotonic() >= deadline:
                print(
                    f"error: job {job_id} still {status.get('state')!r} "
                    f"after {args.timeout}s",
                    file=sys.stderr,
                )
                return 3
            time.sleep(0.05)
            status = _call(f"{base}/v1/jobs/{job_id}")
        if status.get("state") == "failed":
            print(
                f"error: job {job_id} failed: {status.get('detail', '?')}",
                file=sys.stderr,
            )
            return 1
        result = _call(f"{base}/v1/jobs/{job_id}/result")
    except urllib.error.HTTPError as error:
        detail = error.read().decode(errors="replace")
        print(f"error: service returned {error.code}: {detail}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as error:
        print(f"error: cannot reach service at {base}: {error}", file=sys.stderr)
        return 1

    body = result.get("result") or {}
    print(body.get("summary", ""), end="")
    if args.metrics_out is not None or args.trace_out is not None:
        from repro.observability.telemetry import Telemetry

        telemetry = Telemetry()
        telemetry.merge_snapshot(body.get("telemetry") or {})
        _dump_telemetry(telemetry, scope=body.get("scenario", "job"), args=args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Capybara (ASPLOS 2018) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    telemetry_parent = _telemetry_parent()
    inject_parent = _inject_parent()
    backend_parent = _backend_parent()

    list_parser = sub.add_parser("list", help="enumerate apps and experiments")
    list_parser.set_defaults(func=_cmd_list)

    info_parser = sub.add_parser(
        "info",
        parents=[_backend_parent("backend the --check validation targets")],
        help="version, API generation, and per-backend capabilities",
    )
    info_parser.add_argument(
        "--check", nargs="+", default=None, metavar="FILE",
        help="validate scenario JSON files instead of printing capabilities",
    )
    info_parser.set_defaults(func=_cmd_info)

    run_parser = sub.add_parser(
        "run-app",
        parents=[inject_parent, backend_parent, telemetry_parent],
        help="run one app on one system",
    )
    run_parser.add_argument("app", choices=sorted(APP_BUILDERS))
    run_parser.add_argument(
        "--system",
        choices=sorted(_SYSTEM_BY_NAME),
        default=SystemKind.CAPY_P.value,
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--events", type=int, default=10)
    run_parser.add_argument(
        "--horizon", type=float, default=None, help="seconds (default: schedule + 60)"
    )
    run_parser.add_argument(
        "--export", type=str, default=None, help="write the trace to this JSON file"
    )
    run_parser.set_defaults(func=_cmd_run_app)

    spec_run = sub.add_parser(
        "run",
        parents=[_spec_parent(), inject_parent, backend_parent, telemetry_parent],
        help="run a declarative scenario spec (JSON file)",
    )
    spec_run.add_argument(
        "--system", default=None, metavar="KIND",
        help="override the spec's system (Pwr, Fixed, CB-R, CB-P)",
    )
    spec_run.add_argument(
        "--horizon", type=float, default=None, help="seconds (default: schedule + 60)"
    )
    spec_run.add_argument(
        "--export", type=str, default=None, help="write the trace to this JSON file"
    )
    spec_run.set_defaults(func=_cmd_run_spec)

    spec_parser = sub.add_parser(
        "spec", help="inspect and validate scenario specs"
    )
    spec_sub = spec_parser.add_subparsers(dest="spec_command", required=True)
    dump_parser = spec_sub.add_parser(
        "dump", help="print the scenario an app or experiment declares"
    )
    dump_parser.add_argument(
        "name", help="app name (see `repro list`) or experiment id"
    )
    dump_parser.add_argument("--seed", type=int, default=0)
    dump_parser.add_argument(
        "--scale", type=float, default=0.25,
        help="event-count scale for experiment scenarios",
    )
    dump_parser.add_argument(
        "--index", type=int, default=None,
        help="pick one scenario when the experiment declares several",
    )
    dump_parser.add_argument(
        "--out", type=_writable_path, default=None, metavar="FILE",
        help="write to FILE instead of stdout",
    )
    dump_parser.set_defaults(func=_cmd_spec)
    check_parser = spec_sub.add_parser(
        "check",
        parents=[_backend_parent("also require support by this backend")],
        help="validate scenario JSON files (deprecated: repro info --check)",
    )
    check_parser.add_argument("files", nargs="+", metavar="FILE")
    check_parser.set_defaults(func=_cmd_spec)

    vec_info_parser = sub.add_parser(
        "vec-info",
        parents=[_backend_parent("ignored (kept for flag compatibility)")],
        help="deprecated: use `repro info`",
    )
    vec_info_parser.set_defaults(func=_cmd_vec_info, check=None)

    trace_parser = sub.add_parser(
        "trace", help="record, inspect, and replay environment traces"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_record = trace_sub.add_parser(
        "record",
        parents=[_spec_parent(required=False)],
        help="sample a synthetic environment into a chunked trace file",
    )
    trace_record.add_argument(
        "--env", default=None, metavar="JSON",
        help='inline trace object, e.g. \'{"kind": "orbit", "period": 5400, '
        '"irradiance": 1100, "eclipse_fraction": 0.35}\' '
        '(alternative to --spec, which records the scenario\'s irradiance)',
    )
    trace_record.add_argument(
        "--out", required=True, type=_writable_path, metavar="FILE",
        help="trace file to write",
    )
    trace_record.add_argument(
        "--duration", required=True, type=_duration, metavar="SECONDS",
        help="recorded span; accepts unit suffixes (90min, 2h)",
    )
    trace_record.add_argument(
        "--dt", required=True, type=_duration, metavar="SECONDS",
        help="sample period; accepts unit suffixes (50ms)",
    )
    trace_record.add_argument(
        "--t0", type=_duration, default=0.0, metavar="SECONDS",
        help="time of the first sample (default: 0)",
    )
    trace_record.add_argument(
        "--units", default="W/m^2", help="level units recorded in the header"
    )
    trace_record.add_argument(
        "--chunk-samples", type=_positive_int, default=None,
        help="samples per checksummed chunk (default: 4096)",
    )
    trace_record.set_defaults(func=_cmd_trace)
    trace_info = trace_sub.add_parser(
        "info",
        help="verify trace files end to end and print their headers",
    )
    trace_info.add_argument("files", nargs="+", metavar="FILE")
    trace_info.set_defaults(func=_cmd_trace)
    trace_replay = trace_sub.add_parser(
        "replay", help="sample a recorded trace at chosen times"
    )
    trace_replay.add_argument("file", metavar="FILE")
    trace_replay.add_argument(
        "--at", nargs="+", type=_duration, default=None, metavar="TIME",
        help="times to sample (default: five points across the span); "
        "accepts unit suffixes",
    )
    trace_replay.add_argument(
        "--interpolation", choices=["hold", "linear"], default=None,
        help="override the recorded interpolation policy",
    )
    trace_replay.add_argument(
        "--expect-hash", default=None, metavar="SHA256",
        help="fail unless the file's content digest matches",
    )
    trace_replay.set_defaults(func=_cmd_trace)

    exp_parser = sub.add_parser(
        "experiment",
        parents=[
            _inject_parent(
                "fault schedule JSON; `all` injects its worker_crash "
                "faults as campaign chaos"
            ),
            _backend_parent(
                "simulation engine for backend-routable experiments "
                "(fig03, fig04, ablation, power-sweep, fleet; see "
                "`repro info`)"
            ),
            _jobs_parent("worker processes for `all`, >= 1"),
            telemetry_parent,
        ],
        help="regenerate a paper figure",
    )
    exp_parser.add_argument("name", choices=_experiment_names())
    exp_parser.add_argument("--seed", type=int, default=0)
    exp_parser.add_argument("--scale", type=float, default=0.25)
    exp_parser.add_argument(
        "--serial", action="store_true",
        help="force single-process execution for `all`",
    )
    exp_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache for `all`",
    )
    exp_parser.add_argument(
        "--clear-cache", action="store_true",
        help="drop cached `all` results before running",
    )
    exp_parser.add_argument(
        "--resume", action="store_true",
        help="for `all`: skip tasks the campaign checkpoint records as "
        "complete (requires the cache)",
    )
    exp_parser.set_defaults(func=_cmd_experiment)

    run_all_parser = sub.add_parser(
        "run-all",
        parents=[
            _inject_parent(
                "fault schedule JSON; its worker_crash faults become "
                "deterministic campaign chaos"
            ),
            _backend_parent(
                "simulation engine for the campaign's backend-routable "
                "experiments; vec routes them through the batching planner"
            ),
            _jobs_parent("worker processes, >= 1"),
            telemetry_parent,
        ],
        help="run the whole experiment campaign (alias of `experiment all`)",
    )
    run_all_parser.add_argument("--seed", type=int, default=0)
    run_all_parser.add_argument("--scale", type=float, default=0.25)
    run_all_parser.add_argument(
        "--serial", action="store_true",
        help="force single-process execution",
    )
    run_all_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    run_all_parser.add_argument(
        "--clear-cache", action="store_true",
        help="drop cached results before running",
    )
    run_all_parser.add_argument(
        "--resume", action="store_true",
        help="skip tasks the campaign checkpoint records as complete "
        "(requires the cache)",
    )
    run_all_parser.set_defaults(func=_cmd_run_all)

    campaign_parser = sub.add_parser(
        "campaign",
        help="inspect campaign checkpoints (critical path, utilization)",
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )
    campaign_report = campaign_sub.add_parser(
        "report",
        parents=[
            _jobs_parent(
                "worker count the utilization model assumes (default: 1)"
            )
        ],
        help="verify checkpoint files and print their campaign reports",
    )
    campaign_report.add_argument("files", nargs="+", metavar="FILE")
    campaign_report.set_defaults(func=_cmd_campaign)

    serve_parser = sub.add_parser(
        "serve",
        parents=[
            _inject_parent(
                "fault schedule JSON; its worker_crash faults become "
                "deterministic chaos against served jobs"
            ),
            _jobs_parent("service worker processes (default: 1)"),
        ],
        help="boot the long-lived simulation job service (repro.service)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8787)
    serve_parser.add_argument(
        "--queue-limit", type=_positive_int, default=16,
        help="maximum queued jobs before 503s (default: 16)",
    )
    serve_parser.add_argument(
        "--quota-rate", type=float, default=32.0,
        help="per-client requests/second before 429s (<= 0 disables)",
    )
    serve_parser.add_argument(
        "--quota-burst", type=float, default=64.0,
        help="per-client burst allowance (default: 64)",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache location (default: .repro-cache or REPRO_CACHE_DIR)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve_parser.add_argument(
        "--seed", type=int, default=0, help="retry-jitter seed"
    )
    serve_parser.add_argument(
        "--job-ttl", type=float, default=None, metavar="SECONDS",
        help="evict finished jobs after this many seconds "
        "(polling them answers 410; default: keep forever)",
    )
    serve_parser.add_argument(
        "--batch-window", type=float, default=0.0, metavar="SECONDS",
        help="linger after each dequeue to coalesce queued vec jobs "
        "into one fleet batch (default: 0, no batching)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit",
        parents=[
            _spec_parent(),
            inject_parent,
            backend_parent,
            telemetry_parent,
        ],
        help="submit a scenario to a running service and print the result",
    )
    submit_parser.add_argument(
        "--url", default=DEFAULT_SERVICE_URL,
        help=f"service base URL (default: {DEFAULT_SERVICE_URL})",
    )
    submit_parser.add_argument(
        "--system", default=None, metavar="KIND",
        help="override the spec's system (Pwr, Fixed, CB-R, CB-P)",
    )
    submit_parser.add_argument(
        "--horizon", type=float, default=None, help="seconds (default: schedule + 60)"
    )
    submit_parser.add_argument(
        "--client-id", default="cli", help="x-client-id header (quota identity)"
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="seconds to wait for completion (default: 120)",
    )
    submit_parser.set_defaults(func=_cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
