"""Deterministic fault injection: declarative adversarial conditions.

The faults layer makes failure a first-class, replayable simulation
input — the substrate every robustness test stands on:

* :mod:`repro.faults.model` — :class:`FaultScheduleSpec`: a versioned,
  canonical-JSON-hashable description of harvester blackouts, brown-out
  sags, ESR/leakage spikes, stuck bank switches, and campaign worker
  crashes;
* :mod:`repro.faults.inject` — :func:`build_injector` /
  :func:`apply_faults`: compile a schedule into the hooks the energy,
  simulation, and campaign layers consult, bit-identically for a fixed
  seed.

Typical use::

    from repro.faults import load_fault_schedule, apply_faults

    schedule = load_fault_schedule("faults.json")
    app = build_temp_alarm(SystemKind.CAPY_P, seed=1)
    apply_faults(app, schedule)
    app.run(600.0)

or, from the command line::

    python -m repro.cli run --spec scenario.json --inject faults.json
    python -m repro.cli experiment all --inject faults.json
"""

from repro.faults.model import (
    CAMPAIGN_FAULT_KINDS,
    FAULT_SCHEMA_VERSION,
    SIM_FAULT_KINDS,
    FaultScheduleSpec,
    FaultSpec,
    dump_fault_schedule,
    fault_schedule_hash,
    load_fault_schedule,
)
from repro.faults.inject import (
    FaultInjector,
    WorkerChaos,
    apply_faults,
    build_injector,
    record_fault_events,
)

__all__ = [
    "CAMPAIGN_FAULT_KINDS",
    "FAULT_SCHEMA_VERSION",
    "SIM_FAULT_KINDS",
    "FaultInjector",
    "FaultScheduleSpec",
    "FaultSpec",
    "WorkerChaos",
    "apply_faults",
    "build_injector",
    "dump_fault_schedule",
    "fault_schedule_hash",
    "load_fault_schedule",
    "record_fault_events",
]
