"""Deterministic fault injection: turning a schedule into runtime hooks.

:func:`build_injector` compiles a
:class:`~repro.faults.model.FaultScheduleSpec` into a
:class:`FaultInjector` — the object the energy and simulation layers
consult on their hot paths:

* :class:`~repro.energy.harvester.FaultyHarvester` asks
  :meth:`FaultInjector.transform_output` (blackouts, brown-out sags);
* :class:`~repro.energy.reservoir.ReconfigurableReservoir` asks for
  switch stuck-at overrides, the ESR multiplier, the leakage
  multiplier, and — crucially — :meth:`FaultInjector.next_transition`,
  which bounds its active-set cache so cached aggregates never leak
  across a fault-window boundary;
* :meth:`repro.sim.engine.Simulator.install_fault_events` asks for
  :meth:`FaultInjector.sim_event_records` to emit exactly one trace
  event per injected fault.

Everything here is a pure function of the schedule (plus its seed for
worker crashes): no wall clock, no global RNG, no hidden state.  That
is what makes a faulted replay bit-identical and lets the golden tests
compare crashed-and-retried campaigns byte-for-byte against fault-free
runs.

:class:`WorkerChaos` is the campaign-level face: a picklable value
object the process pool ships to workers, whose
:meth:`~WorkerChaos.injected_failure` decides — deterministically per
``(job label, attempt)`` — whether to crash that attempt.  A bounded
``max_crashes`` budget guarantees a retried job eventually runs clean.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    FaultSpecError,
    InjectedWorkerCrash,
    InjectedWorkerTimeout,
)
from repro.faults.model import FaultScheduleSpec, FaultSpec
from repro.observability.telemetry import Telemetry, resolve_telemetry


def _unit_draw(seed: int, label: str, attempt: int) -> float:
    """Deterministic draw in [0, 1) from (seed, label, attempt).

    SHA-256 based so the value is stable across processes, platforms,
    and Python hash randomisation — the property that lets parent and
    worker processes agree on which attempts crash without sharing
    state.
    """
    digest = hashlib.sha256(f"{seed}:{label}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class WorkerChaos:
    """Picklable worker crash/timeout injection policy.

    Attributes:
        seed: the schedule seed all draws derive from.
        probability: per-attempt chance an attempt is killed.
        max_crashes: injection budget per job label; after this many
            injected failures the job runs clean, so any retry policy
            with ``max_attempts > max_crashes`` is guaranteed to finish.
        mode: "crash" (:class:`InjectedWorkerCrash`) or "timeout"
            (:class:`InjectedWorkerTimeout`).
        only_label: when set, draws apply only to the job with exactly
            this label; every other job runs clean.  This is the
            surgical strike the DAG-resume differential tests use to
            kill a campaign at one chosen task boundary.
    """

    seed: int
    probability: float = 1.0
    max_crashes: int = 1
    mode: str = "crash"
    only_label: Optional[str] = None

    def injected_failure(self, label: str, attempt: int) -> Optional[str]:
        """The failure mode to inject for *attempt* of *label*, if any.

        Pure function: replays of the same (seed, label, attempt) always
        agree, whichever process asks.
        """
        if self.probability <= 0.0 or self.max_crashes <= 0:
            return None
        if self.only_label is not None and label != self.only_label:
            return None
        injected_before = 0
        for earlier in range(1, attempt):
            if injected_before >= self.max_crashes:
                return None
            if _unit_draw(self.seed, label, earlier) < self.probability:
                injected_before += 1
        if injected_before >= self.max_crashes:
            return None
        if _unit_draw(self.seed, label, attempt) < self.probability:
            return self.mode
        return None

    def raise_if_injected(self, label: str, attempt: int) -> None:
        """Raise the injected failure for this attempt, if one is due."""
        mode = self.injected_failure(label, attempt)
        if mode == "timeout":
            raise InjectedWorkerTimeout(
                f"injected worker timeout: job {label!r} attempt {attempt}"
            )
        if mode is not None:
            raise InjectedWorkerCrash(
                f"injected worker crash: job {label!r} attempt {attempt}"
            )


class FaultInjector:
    """Compiled runtime view of one fault schedule.

    All query methods are pure in simulation time; the injector holds no
    mutable state, so sharing one instance between the harvester wrapper
    and the reservoir is safe and keeps the two layers consistent.
    """

    __slots__ = (
        "schedule",
        "_blackouts",
        "_sags",
        "_esr_spikes",
        "_leak_spikes",
        "_stuck",
        "_transitions",
    )

    def __init__(self, schedule: FaultScheduleSpec) -> None:
        self.schedule = schedule
        sim_faults = schedule.sim_faults()
        self._blackouts = tuple(
            fault for fault in sim_faults if fault.kind == "harvester_blackout"
        )
        self._sags = tuple(
            fault for fault in sim_faults if fault.kind == "brownout_sag"
        )
        self._esr_spikes = tuple(
            fault for fault in sim_faults if fault.kind == "esr_spike"
        )
        self._leak_spikes = tuple(
            fault for fault in sim_faults if fault.kind == "leakage_spike"
        )
        self._stuck = tuple(
            fault for fault in sim_faults if fault.kind == "switch_stuck"
        )
        boundaries = set()
        for fault in sim_faults:
            boundaries.add(fault.start)
            boundaries.add(fault.end)
        self._transitions: Tuple[float, ...] = tuple(sorted(boundaries))

    # ------------------------------------------------------------------
    # Harvester-side faults
    # ------------------------------------------------------------------

    def transform_output(
        self, time: float, voltage: float, power: float
    ) -> Tuple[float, float]:
        """Harvester ``(voltage, power)`` after blackout/sag windows."""
        for fault in self._blackouts:
            if fault.active(time):
                return 0.0, 0.0
        for fault in self._sags:
            if fault.active(time):
                voltage *= float(fault.params["voltage_scale"])
                power *= float(fault.params["power_scale"])
        return voltage, power

    # ------------------------------------------------------------------
    # Reservoir-side faults
    # ------------------------------------------------------------------

    def esr_multiplier(self, time: float) -> float:
        """Factor applied to the active set's combined ESR at *time*."""
        factor = 1.0
        for fault in self._esr_spikes:
            if fault.active(time):
                factor *= float(fault.params["factor"])
        return factor

    def leak_multiplier(self, time: float) -> float:
        """Factor applied to leakage integration durations at *time*."""
        factor = 1.0
        for fault in self._leak_spikes:
            if fault.active(time):
                factor *= float(fault.params["factor"])
        return factor

    def switch_overrides(self, time: float) -> Dict[str, bool]:
        """Stuck-at overrides active at *time*: bank name -> closed."""
        overrides: Dict[str, bool] = {}
        for fault in self._stuck:
            if fault.active(time):
                overrides[str(fault.params["bank"])] = (
                    fault.params["stuck"] == "closed"
                )
        return overrides

    def stuck_bank_names(self) -> Tuple[str, ...]:
        """Every bank any stuck-at fault references (validation hook)."""
        return tuple(str(fault.params["bank"]) for fault in self._stuck)

    def next_transition(self, time: float) -> float:
        """First fault-window boundary strictly after *time* (or inf).

        Cached aggregates (the reservoir's active-set entry) must not
        outlive this boundary: a multiplier or override may change there.
        """
        for boundary in self._transitions:
            if boundary > time:
                return boundary
        return math.inf

    # ------------------------------------------------------------------
    # Campaign-side faults
    # ------------------------------------------------------------------

    def worker_chaos(self) -> Optional[WorkerChaos]:
        """The crash policy the campaign layer should apply, if any.

        Multiple ``worker_crash`` faults fold into one policy: the
        highest probability, the summed budget, and "timeout" mode if
        any fault asks for it (a timeout exercises the same retry path).
        """
        faults = self.schedule.campaign_faults()
        if not faults:
            return None
        probability = max(float(f.params["probability"]) for f in faults)
        budget = sum(int(f.params["max_crashes"]) for f in faults)
        mode = (
            "timeout"
            if any(f.params["mode"] == "timeout" for f in faults)
            else "crash"
        )
        return WorkerChaos(
            seed=self.schedule.seed,
            probability=probability,
            max_crashes=budget,
            mode=mode,
        )

    # ------------------------------------------------------------------
    # Trace integration
    # ------------------------------------------------------------------

    def sim_event_records(self) -> List[Tuple[float, str, Dict[str, Any]]]:
        """One ``(time, name, fields)`` record per simulation fault.

        The contract tests lean on: every injected fault appears exactly
        once, at its window start, in (start, declaration) order.
        """
        records: List[Tuple[float, str, Dict[str, Any]]] = []
        for fault in self.schedule.sim_faults():
            fields: Dict[str, Any] = {
                key: value
                for key, value in fault.params.items()
                if isinstance(value, (int, float, str, bool))
            }
            records.append((fault.start, fault.kind, fields))
        return records


def build_injector(
    schedule: "FaultScheduleSpec | FaultInjector",
) -> FaultInjector:
    """Compile *schedule* (pass-through for ready injectors)."""
    if isinstance(schedule, FaultInjector):
        return schedule
    return FaultInjector(schedule)


def apply_faults(
    instance: Any,
    schedule: "FaultScheduleSpec | FaultInjector",
    telemetry: Optional[Telemetry] = None,
) -> FaultInjector:
    """Arm an :class:`~repro.apps.base.AppInstance` with *schedule*.

    Wraps the power system's harvester in a
    :class:`~repro.energy.harvester.FaultyHarvester`, points the
    reservoir at the injector, and records one ``fault`` trace event per
    simulation fault (plus ``faults.injected`` counters) on the resolved
    telemetry.  Idempotent wiring is *not* attempted: arm an instance
    once, before running it.

    Raises:
        FaultSpecError: if a ``switch_stuck`` fault names a bank the
            instance's reservoir does not have (or one that is
            hardwired, hence switchless).
    """
    from repro.energy.harvester import FaultyHarvester

    injector = build_injector(schedule)
    executor = instance.executor
    power = getattr(executor, "power_system", None)
    if power is None:
        power = executor.board.power_system
    reservoir = getattr(power, "reservoir", None)
    if reservoir is not None:
        switched = set(reservoir.bank_names) - set(reservoir.hardwired_names)
        unknown = sorted(set(injector.stuck_bank_names()) - switched)
        if unknown:
            raise FaultSpecError(
                f"fault schedule {injector.schedule.name!r}: switch_stuck "
                f"references banks without switches {unknown}; "
                f"switched banks: {sorted(switched)}"
            )
        reservoir.set_fault_injector(injector)
    power.harvester = FaultyHarvester(inner=power.harvester, injector=injector)
    record_fault_events(injector, telemetry)
    return injector


def record_fault_events(
    injector: FaultInjector, telemetry: Optional[Telemetry] = None
) -> int:
    """Emit the schedule's fault events and counters onto *telemetry*.

    Returns the number of fault events recorded (0 when telemetry is
    disabled).  Used directly by executor-driven apps, which have no
    event queue to schedule emission through; Simulator-driven runs use
    :meth:`repro.sim.engine.Simulator.install_fault_events` instead so
    events interleave with the run at their fault times.
    """
    telemetry = resolve_telemetry(telemetry)
    if not telemetry.enabled:
        return 0
    records = injector.sim_event_records()
    for time, name, fields in records:
        telemetry.event(time, "fault", name, **fields)
        telemetry.inc("faults.injected")
        telemetry.inc(f"faults.injected.{name}")
    return len(records)
