"""Declarative, versioned fault-schedule specs.

A *fault schedule* describes the adversarial conditions a run must
survive — harvester blackouts, brown-out voltage sags, ESR/leakage
spikes, bank switches stuck open or closed, and campaign-level worker
crashes — as plain, JSON-serialisable data.  Schedules follow the same
serialisation contract as :mod:`repro.spec`:

* ``to_dict`` emits every field in base SI units;
* ``from_dict`` rejects unknown fields and accepts unit-suffix sugar
  (``duration_ms``, ...);
* :func:`repro.spec.canonical_json` / :func:`repro.spec.spec_hash`
  render the canonical bytes and the SHA-256 the result cache keys on.

Determinism is the design centre: a schedule plus its ``seed`` fully
determines every injected fault.  Timed faults carry explicit windows;
stochastic faults (worker crashes) are resolved by pure functions of
``(seed, job label, attempt)`` — no global RNG state — so a faulted run
is replayable bit-for-bit and a crashed-and-retried campaign produces
results byte-identical to a fault-free one.

``fault_schema_version`` is explicit in every serialised schedule and
versioned independently of the scenario schema; loaders reject versions
they do not know.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.errors import FaultSpecError
from repro.spec.model import (
    _check_fields,
    _json_safe,
    _require,
    canonical_json,
    normalize_units,
    spec_hash,
)

#: The fault-schedule schema version this module reads and writes.
FAULT_SCHEMA_VERSION = 1

#: Fault kinds injected inside the simulation (they change physics).
SIM_FAULT_KINDS = (
    "harvester_blackout",
    "brownout_sag",
    "esr_spike",
    "leakage_spike",
    "switch_stuck",
)
#: Fault kinds injected around the campaign harness (they must *not*
#: change results — only exercise retry/degradation machinery).
CAMPAIGN_FAULT_KINDS = ("worker_crash",)

#: Allowed parameter fields per fault kind.
FAULT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "harvester_blackout": ("start", "duration"),
    "brownout_sag": ("start", "duration", "voltage_scale", "power_scale"),
    "esr_spike": ("start", "duration", "factor"),
    "leakage_spike": ("start", "duration", "factor"),
    "switch_stuck": ("start", "duration", "bank", "stuck"),
    "worker_crash": ("probability", "max_crashes", "mode"),
}

#: Defaults applied per kind when a field is omitted.
_FAULT_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "brownout_sag": {"voltage_scale": 0.5, "power_scale": 0.25},
    "esr_spike": {"factor": 10.0},
    "leakage_spike": {"factor": 10.0},
    "worker_crash": {"probability": 1.0, "max_crashes": 1, "mode": "crash"},
}

#: Stuck-at states a switch fault may force.
STUCK_STATES = ("open", "closed")
#: Worker failure modes a crash fault may inject.
CRASH_MODES = ("crash", "timeout")


def _positive(value: Any, name: str, context: str) -> float:
    value = float(value)
    if not value > 0.0:
        raise FaultSpecError(f"{context}: {name} must be > 0, got {value}")
    return value


def _non_negative(value: Any, name: str, context: str) -> float:
    value = float(value)
    if value < 0.0:
        raise FaultSpecError(f"{context}: {name} must be >= 0, got {value}")
    return value


def _fraction(value: Any, name: str, context: str) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise FaultSpecError(
            f"{context}: {name} must be in [0, 1], got {value}"
        )
    return value


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: a kind plus validated parameters.

    Timed kinds carry a ``[start, start + duration)`` activity window in
    simulation seconds; the ``worker_crash`` kind instead carries a
    per-attempt ``probability``, an injection budget ``max_crashes``
    (the cap that guarantees a retried job eventually completes), and a
    failure ``mode`` ("crash" or "timeout").
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        context = f"fault ({self.kind})"
        if self.kind not in FAULT_FIELDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {sorted(FAULT_FIELDS)}"
            )
        params = normalize_units(self.params, context)
        _check_fields(params, FAULT_FIELDS[self.kind], context)
        merged = dict(_FAULT_DEFAULTS.get(self.kind, {}))
        merged.update(params)
        params = merged
        if self.kind in SIM_FAULT_KINDS:
            params["start"] = _non_negative(
                _require(params, "start", context), "start", context
            )
            params["duration"] = _positive(
                _require(params, "duration", context), "duration", context
            )
        if self.kind == "brownout_sag":
            params["voltage_scale"] = _fraction(
                params["voltage_scale"], "voltage_scale", context
            )
            params["power_scale"] = _fraction(
                params["power_scale"], "power_scale", context
            )
        elif self.kind in ("esr_spike", "leakage_spike"):
            factor = float(params["factor"])
            if factor < 1.0:
                raise FaultSpecError(
                    f"{context}: factor must be >= 1 (a spike), got {factor}"
                )
            params["factor"] = factor
        elif self.kind == "switch_stuck":
            bank = _require(params, "bank", context)
            if not isinstance(bank, str) or not bank:
                raise FaultSpecError(f"{context}: bank must be a non-empty string")
            stuck = _require(params, "stuck", context)
            if stuck not in STUCK_STATES:
                raise FaultSpecError(
                    f"{context}: stuck must be one of {list(STUCK_STATES)}, "
                    f"got {stuck!r}"
                )
        elif self.kind == "worker_crash":
            params["probability"] = _fraction(
                params["probability"], "probability", context
            )
            max_crashes = int(params["max_crashes"])
            if max_crashes < 0:
                raise FaultSpecError(
                    f"{context}: max_crashes must be >= 0, got {max_crashes}"
                )
            params["max_crashes"] = max_crashes
            if params["mode"] not in CRASH_MODES:
                raise FaultSpecError(
                    f"{context}: mode must be one of {list(CRASH_MODES)}, "
                    f"got {params['mode']!r}"
                )
        _json_safe(dict(params), context)
        object.__setattr__(self, "params", params)

    # ------------------------------------------------------------------
    # Window helpers (timed kinds only)
    # ------------------------------------------------------------------

    @property
    def is_sim_fault(self) -> bool:
        return self.kind in SIM_FAULT_KINDS

    @property
    def start(self) -> float:
        return float(self.params["start"])

    @property
    def end(self) -> float:
        return self.start + float(self.params["duration"])

    def active(self, time: float) -> bool:
        """Whether a timed fault's window covers *time*."""
        return self.start <= time < self.end

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, **self.params}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        kind = _require(data, "kind", "fault")
        return cls(
            kind=str(kind),
            params={k: v for k, v in data.items() if k != "kind"},
        )


@dataclass(frozen=True)
class FaultScheduleSpec:
    """A named, seeded collection of faults — one adversarial condition.

    ``seed`` drives every stochastic decision the schedule implies
    (worker-crash draws); timed faults are fully explicit.  Equal
    schedules produce identical canonical JSON and therefore identical
    :func:`~repro.spec.spec_hash` values — the hash the result cache
    embeds so faulted and fault-free runs never share entries.
    """

    name: str
    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    fault_schema_version: int = FAULT_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if self.fault_schema_version != FAULT_SCHEMA_VERSION:
            raise FaultSpecError(
                f"fault schedule {self.name!r}: unsupported "
                f"fault_schema_version {self.fault_schema_version!r} "
                f"(this build reads {FAULT_SCHEMA_VERSION})"
            )
        if not self.name:
            raise FaultSpecError("fault schedule needs a non-empty name")
        if self.seed < 0:
            raise FaultSpecError(
                f"fault schedule {self.name!r}: seed must be >= 0"
            )
        object.__setattr__(self, "faults", tuple(self.faults))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def sim_faults(self) -> Tuple[FaultSpec, ...]:
        """Faults injected inside the simulation, in (start, index) order."""
        timed = [fault for fault in self.faults if fault.is_sim_fault]
        return tuple(sorted(timed, key=lambda fault: fault.start))

    def campaign_faults(self) -> Tuple[FaultSpec, ...]:
        """Faults injected around the campaign harness."""
        return tuple(
            fault for fault in self.faults if fault.kind in CAMPAIGN_FAULT_KINDS
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fault_schema_version": self.fault_schema_version,
            "name": self.name,
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultScheduleSpec":
        context = f"fault schedule {data.get('name', '?')!r}"
        _check_fields(
            data,
            ("fault_schema_version", "name", "seed", "faults"),
            context,
        )
        faults = data.get("faults", ())
        if not isinstance(faults, (list, tuple)):
            raise FaultSpecError(f"{context}: 'faults' must be a list")
        return cls(
            name=str(_require(data, "name", context)),
            faults=tuple(FaultSpec.from_dict(fault) for fault in faults),
            seed=int(data.get("seed", 0)),
            fault_schema_version=int(
                data.get("fault_schema_version", FAULT_SCHEMA_VERSION)
            ),
        )


def fault_schedule_hash(schedule: FaultScheduleSpec) -> str:
    """SHA-256 over the canonical JSON of *schedule* (cache-key form)."""
    return spec_hash(schedule)


def load_fault_schedule(text_or_path: Any) -> FaultScheduleSpec:
    """Parse a :class:`FaultScheduleSpec` from a JSON string or file path."""
    from pathlib import Path

    if isinstance(text_or_path, Path):
        text = text_or_path.read_text()
    elif isinstance(text_or_path, str) and text_or_path.lstrip().startswith("{"):
        text = text_or_path
    elif isinstance(text_or_path, str):
        text = Path(text_or_path).read_text()
    else:
        raise FaultSpecError(
            f"cannot load a fault schedule from {text_or_path!r}"
        )
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise FaultSpecError(
            f"fault schedule is not valid JSON: {error}"
        ) from error
    if not isinstance(data, dict):
        raise FaultSpecError("fault schedule JSON must be an object")
    return FaultScheduleSpec.from_dict(data)


def dump_fault_schedule(schedule: FaultScheduleSpec, pretty: bool = True) -> str:
    """Render a schedule as JSON (pretty by default, canonical otherwise)."""
    if not pretty:
        return canonical_json(schedule)
    return json.dumps(schedule.to_dict(), sort_keys=True, indent=2) + "\n"
