"""Chain-style task-based intermittent programming model.

Applications are decomposed into *tasks* — function-like units that are
the grain of atomicity: a power failure mid-task restarts the task from
its beginning with its channel writes discarded (Chain's task-atomic
update semantics).  Control flows between tasks at completion via a
``next task`` value, mirroring the paper's ``nexttask`` statement.

A task body is a Python generator taking a :class:`TaskContext`.  It
*yields* hardware operations and receives their results::

    def sense(ctx):
        value = yield Sample("tmp36")
        ctx.write("latest", value)
        return "proc"                      # nexttask proc

    Task("sense", sense, ConfigAnnotation("mode-small"))

Yielding an operation models the task's energy and time; the executor
charges the board's reservoir and, on brownout, abandons the generator
(volatile state vanishes with it — exactly the semantics of SRAM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Union,
)

from repro.errors import TaskGraphError
from repro.kernel.annotations import Annotation, NoAnnotation
from repro.kernel.memory import NonVolatileStore


# ---------------------------------------------------------------------------
# Operations a task can yield
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Compute:
    """Execute *ops* ALU operations."""

    ops: float

    def __post_init__(self) -> None:
        if self.ops < 0.0:
            raise TaskGraphError("ops must be non-negative")


@dataclass(frozen=True)
class Sample:
    """Acquire *samples* readings from a named sensor.

    The executor resolves the reading through the application's sensor
    binding and sends it back into the task generator.
    """

    sensor: str
    samples: int = 1

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise TaskGraphError("samples must be >= 1")


@dataclass(frozen=True)
class Transmit:
    """Transmit a packet.

    Attributes:
        payload: logical payload label recorded by the sniffer.
        size_bytes: payload size (sets airtime and energy).
        event_id: ground-truth event this packet reports, for accuracy
            accounting.
    """

    payload: str
    size_bytes: int
    event_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 1:
            raise TaskGraphError("size_bytes must be >= 1")


@dataclass(frozen=True)
class Sleep:
    """Hold the MCU in memory-retaining sleep for *duration* seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0.0:
            raise TaskGraphError("duration must be non-negative")


@dataclass(frozen=True)
class WaitForInterrupt:
    """Sleep until a sensor's wake-up interrupt fires.

    Models threshold-interrupt pins (APDS proximity interrupts,
    magnetometer threshold engines): the MCU sleeps at its retention
    draw while the armed sensor watches the world, and wakes the moment
    the line asserts — the asynchronous external events of the paper's
    Section 2.1.1, without burning energy polling.

    The executor resolves the wake time through the application's
    interrupt source; the operation's result is the
    :class:`~repro.kernel.executor.SensorReading` at the wake instant.

    Attributes:
        line: interrupt line name (usually the sensor's).
        timeout: optional bound, seconds; on expiry the result is the
            reading at timeout (value may indicate "nothing").
        sentinel_power: standing draw of the armed sensor's wake
            comparator, watts (tiny, but not free).
    """

    line: str
    timeout: Optional[float] = None
    sentinel_power: float = 5e-6

    def __post_init__(self) -> None:
        if not self.line:
            raise TaskGraphError("interrupt line name must be non-empty")
        if self.timeout is not None and self.timeout <= 0.0:
            raise TaskGraphError("timeout must be positive when given")
        if self.sentinel_power < 0.0:
            raise TaskGraphError("sentinel_power must be non-negative")


Operation = Union[Compute, Sample, Transmit, Sleep, WaitForInterrupt]
TaskBody = Callable[["TaskContext"], Generator[Operation, Any, Optional[str]]]


# ---------------------------------------------------------------------------
# Tasks and the task graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Task:
    """A named task with an energy-mode annotation.

    Attributes:
        name: unique task name.
        body: generator function implementing the task.
        annotation: energy requirement (config / burst / preburst / none).
    """

    name: str
    body: TaskBody
    annotation: Annotation = field(default_factory=NoAnnotation)

    def __post_init__(self) -> None:
        if not self.name:
            raise TaskGraphError("task name must be non-empty")


class TaskGraph:
    """An application: a set of tasks and an entry point.

    Transition targets are dynamic (a task returns the next task's
    name), so full validation happens at run time; the graph checks
    names it *can* check at construction.
    """

    def __init__(self, tasks: List[Task], entry: str) -> None:
        self._tasks: Dict[str, Task] = {}
        for task in tasks:
            if task.name in self._tasks:
                raise TaskGraphError(f"duplicate task name {task.name!r}")
            self._tasks[task.name] = task
        if entry not in self._tasks:
            raise TaskGraphError(f"entry task {entry!r} is not in the graph")
        self.entry = entry

    def task(self, name: str) -> Task:
        if name not in self._tasks:
            raise TaskGraphError(f"unknown task {name!r}")
        return self._tasks[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    @property
    def task_names(self) -> List[str]:
        return list(self._tasks)

    def annotations(self) -> Dict[str, Annotation]:
        """Task name -> annotation (provisioning input)."""
        return {name: task.annotation for name, task in self._tasks.items()}


class TaskContext:
    """The view a task body has of the system: channels and the clock.

    Channel reads return *committed* values — a restarted task re-reads
    its inputs exactly as Chain prescribes; channel writes are staged
    and commit atomically when the task completes.
    """

    def __init__(self, nv: NonVolatileStore, now: Callable[[], float]) -> None:
        self._nv = nv
        self._now = now

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now()

    def read(self, channel: str, default: Any = None) -> Any:
        """Read a channel's committed value."""
        return self._nv.get(channel, default)

    def write(self, channel: str, value: Any) -> None:
        """Stage a channel write (commits at task completion)."""
        self._nv.stage(channel, value)

    def read_staged(self, channel: str, default: Any = None) -> Any:
        """Read-your-writes variant (non-Chain convenience, used by
        code that intentionally wants within-task visibility)."""
        return self._nv.staged_get(channel, default)
