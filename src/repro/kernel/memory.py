"""Volatile and non-volatile memory with power-failure semantics.

Intermittent devices lose volatile state at every power failure and
retain non-volatile (FRAM) state.  Chain-style runtimes keep forward
progress consistent by making task side effects transactional: writes
go to a shadow buffer and commit atomically when the task completes, so
a task that restarts after a power failure re-reads the pre-task values
(Section 2's memory-consistency background, and the paper's note that
the Capybara runtime "ensures that all operations are robust to power
failures by careful use of non-volatile memory").
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.errors import NonVolatileAccessError


class VolatileStore:
    """SRAM-like storage: cleared by :meth:`power_fail`."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}

    def __setitem__(self, key: str, value: Any) -> None:
        self._data[key] = value

    def __getitem__(self, key: str) -> Any:
        if key not in self._data:
            raise NonVolatileAccessError(
                f"volatile read of {key!r}: state was lost at the last "
                "power failure (or never written)"
            )
        return self._data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def power_fail(self) -> None:
        """Lose everything, as SRAM does when the rail collapses."""
        self._data.clear()


class NonVolatileStore:
    """FRAM-like storage with transactional (shadow-buffered) writes.

    Two write disciplines coexist:

    * :meth:`put` — immediate durable write, used by the runtime's own
      state machine, which is carefully ordered to be idempotent;
    * :meth:`stage` / :meth:`commit` / :meth:`abort` — transactional
      writes used for task channel data, giving Chain's task-atomic
      update semantics.

    A power failure (:meth:`power_fail`) discards staged writes and
    keeps committed ones.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self._staged: Dict[str, Any] = {}
        self._commits = 0
        self._aborts = 0

    # ------------------------------------------------------------------
    # Durable writes (runtime state machine)
    # ------------------------------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Immediately durable write."""
        self._data[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        """Read the *committed* value (staged writes are invisible)."""
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    # ------------------------------------------------------------------
    # Transactional writes (task channels)
    # ------------------------------------------------------------------

    def stage(self, key: str, value: Any) -> None:
        """Buffer a write; visible only after :meth:`commit`."""
        self._staged[key] = value

    def staged_get(self, key: str, default: Any = None) -> Any:
        """Read-your-writes within the current transaction."""
        if key in self._staged:
            return self._staged[key]
        return self._data.get(key, default)

    @property
    def has_staged(self) -> bool:
        return bool(self._staged)

    def staged_items(self) -> Dict[str, Any]:
        """Copy of the pending (uncommitted) writes.

        Checkpointing runtimes persist these inside their snapshots so a
        restored execution resumes with its in-flight channel state.
        """
        return dict(self._staged)

    def commit(self) -> int:
        """Atomically apply all staged writes.

        Returns the number of keys committed.
        """
        count = len(self._staged)
        self._data.update(self._staged)
        self._staged.clear()
        if count:
            self._commits += 1
        return count

    def abort(self) -> int:
        """Discard all staged writes (task restart path).

        Returns the number of keys discarded.
        """
        count = len(self._staged)
        self._staged.clear()
        if count:
            self._aborts += 1
        return count

    # ------------------------------------------------------------------
    # Power failures & introspection
    # ------------------------------------------------------------------

    def power_fail(self) -> None:
        """Model a power failure: committed data survives, staged
        writes (which lived in volatile buffers) are lost."""
        self._staged.clear()

    @property
    def commit_count(self) -> int:
        return self._commits

    @property
    def abort_count(self) -> int:
        return self._aborts

    def keys(self) -> List[str]:
        return list(self._data)

    def items(self) -> Iterator[Tuple[str, Any]]:
        return iter(self._data.items())

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the committed state (test/debug helper)."""
        return dict(self._data)
