"""Energy-mode task annotations (Section 4).

The programmer declares a task's power-system demand with one of:

* :class:`ConfigAnnotation` — ``config (mode)``: run this task with the
  reservoir configured for *mode* (capacity or temporal constraint);
* :class:`BurstAnnotation` — ``burst (mode)``: the task needs *mode*'s
  energy **immediately**, from banks pre-charged ahead of time;
* :class:`PreburstAnnotation` — ``preburst (bmode, emode)``: before this
  task runs (in *emode*), charge *bmode*'s banks and park them, paying
  the burst task's recharge latency in advance;
* :class:`NoAnnotation` — an ordinary intermittent task, indifferent to
  the configuration it runs under.

Annotations are pure declarations; the Capybara runtime
(:mod:`repro.kernel.capybara`) interprets them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EnergyModeError


@dataclass(frozen=True)
class NoAnnotation:
    """An intermittent task with no declared energy requirement."""


@dataclass(frozen=True)
class ConfigAnnotation:
    """``config (mode)``: execute under the named reservoir configuration."""

    mode: str

    def __post_init__(self) -> None:
        if not self.mode:
            raise EnergyModeError("config annotation requires a mode name")


@dataclass(frozen=True)
class BurstAnnotation:
    """``burst (mode)``: spend pre-charged *mode* banks immediately."""

    mode: str

    def __post_init__(self) -> None:
        if not self.mode:
            raise EnergyModeError("burst annotation requires a mode name")


@dataclass(frozen=True)
class PreburstAnnotation:
    """``preburst (bmode, emode)``: pre-charge *bmode* for a future burst,
    then execute this task under *emode*."""

    burst_mode: str
    exec_mode: str

    def __post_init__(self) -> None:
        if not self.burst_mode or not self.exec_mode:
            raise EnergyModeError(
                "preburst annotation requires burst and exec mode names"
            )
        if self.burst_mode == self.exec_mode:
            raise EnergyModeError(
                "preburst burst_mode and exec_mode must differ (a shared "
                "mode would drain the pre-charge while executing)"
            )


Annotation = object  # union of the four classes above; kept loose for typing
