"""Dynamic-checkpointing intermittent execution (prior-work substrate).

The paper's related work contrasts Capybara's task-based model with
*dynamic checkpointing* systems — Hibernus checkpoints volatile state
when the supply voltage crosses a threshold; QuickRecall/Mementos
checkpoint periodically — and notes they are "less amenable to use with
Capybara because checkpoints occur arbitrarily, on energy changes".

This module implements that substrate so the claim can be studied:

* :class:`CheckpointingExecutor` runs the same generator-based task
  bodies as the task-based executor, but a power failure resumes from
  the **last checkpoint inside the task** instead of the task boundary.
  Checkpoints snapshot the operation index plus every value previously
  sent into the generator; on restore the body is re-instantiated and
  replayed to the checkpoint *for free* (state restoration), then
  execution continues normally.
* Two policies from the literature: voltage-threshold (Hibernus-style,
  checkpoint when the buffer droops past a set point) and periodic
  (QuickRecall-style, checkpoint every N operations).

What this buys — and what it costs — is measured by
:mod:`repro.experiments.checkpoint_study`: checkpointing makes forward
progress through atomic regions *larger than the energy buffer* (where
task-based execution livelocks), but pays checkpoint overhead on every
cycle and, crucially, offers no natural boundary at which to reconfigure
the reservoir, which is why Capybara pairs with task-based models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional

import numpy as np

from repro.device.board import Board, LoadPoint
from repro.errors import ConfigurationError, ProvisioningError, TaskGraphError
from repro.kernel.executor import SensorBinding, _default_binding
from repro.kernel.memory import NonVolatileStore, VolatileStore
from repro.kernel.tasks import (
    Compute,
    Sample,
    Sleep,
    TaskContext,
    TaskGraph,
    Transmit,
)
from repro.observability.telemetry import Telemetry, resolve_telemetry
from repro.sim.trace import Trace

_TIME_EPSILON = 1e-9

#: NV keys of the checkpoint machinery.
CHECKPOINT_KEY = "checkpoint/state"
TASK_KEY = "checkpoint/task-pointer"


class CheckpointPolicy(enum.Enum):
    """When to take a checkpoint."""

    #: Hibernus-style: checkpoint when the buffer voltage droops below a
    #: threshold (one checkpoint per discharge cycle, just in time).
    VOLTAGE_THRESHOLD = "voltage"
    #: QuickRecall/Mementos-style: checkpoint every N operations.
    PERIODIC = "periodic"


@dataclass
class CheckpointRecord:
    """A durable mid-task execution snapshot.

    Attributes:
        task: the task being executed.
        ops_completed: operations already performed.
        sent_values: the value sent into the generator after each
            completed operation (replayed verbatim on restore).
        staged: the task's staged channel writes at checkpoint time.
    """

    task: str
    ops_completed: int
    sent_values: List[Any]
    staged: dict


@dataclass(frozen=True)
class CheckpointCost:
    """The energy/time price of writing or restoring a snapshot.

    Defaults model an FRAM volatile-state copy of a few kilobytes.
    """

    write_time: float = 4e-3
    write_power: float = 5e-3
    restore_time: float = 2e-3
    restore_power: float = 5e-3

    def write_load(self) -> LoadPoint:
        return LoadPoint(self.write_time, self.write_power)

    def restore_load(self) -> LoadPoint:
        return LoadPoint(self.restore_time, self.restore_power)


class CheckpointingExecutor:
    """Charge / boot / restore / run loop with dynamic checkpoints.

    Unlike :class:`~repro.kernel.executor.IntermittentExecutor`, there is
    no Capybara runtime: dynamic checkpointing has no task boundaries at
    which to plan reconfiguration, so the reservoir stays in whatever
    configuration it was built with (use a single-bank Fixed system).

    Args:
        board: the hardware platform.
        graph: the application (same DSL as the task-based executor).
        policy: when to checkpoint.
        checkpoint_threshold: buffer voltage triggering a
            VOLTAGE_THRESHOLD checkpoint.
        checkpoint_period_ops: operation count between PERIODIC
            checkpoints.
        cost: energy/time of snapshot writes and restores.
    """

    def __init__(
        self,
        board: Board,
        graph: TaskGraph,
        policy: CheckpointPolicy = CheckpointPolicy.VOLTAGE_THRESHOLD,
        checkpoint_threshold: float = 1.1,
        checkpoint_period_ops: int = 8,
        cost: CheckpointCost = CheckpointCost(),
        trace: Optional[Trace] = None,
        sensor_binding: SensorBinding = _default_binding,
        rng: Optional[np.random.Generator] = None,
        max_cycles_without_progress: int = 10_000,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.telemetry = resolve_telemetry(telemetry)
        if checkpoint_threshold <= 0.0:
            raise ConfigurationError("checkpoint_threshold must be positive")
        if checkpoint_period_ops < 1:
            raise ConfigurationError("checkpoint_period_ops must be >= 1")
        self.board = board
        self.graph = graph
        self.policy = policy
        self.checkpoint_threshold = checkpoint_threshold
        self.checkpoint_period_ops = checkpoint_period_ops
        self.cost = cost
        self.trace = trace if trace is not None else Trace()
        self.sensor_binding = sensor_binding
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.max_cycles_without_progress = max_cycles_without_progress

        self.now = 0.0
        self.nv = NonVolatileStore()
        self.volatile = VolatileStore()
        self._cycles_without_progress = 0
        # Hibernus takes one snapshot per discharge cycle: arm the
        # trigger at boot, disarm after it fires.
        self._checkpoint_armed = True

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    @property
    def power_system(self):
        return self.board.power_system

    def run(self, horizon: float) -> Trace:
        """Run until simulation time *horizon*; returns the trace."""
        if horizon < self.now:
            raise TaskGraphError(
                f"horizon {horizon} precedes current time {self.now}"
            )
        while self.now < horizon - _TIME_EPSILON:
            self._cycle(horizon)
        return self.trace

    def _cycle(self, horizon: float) -> None:
        if not self._charge_full(horizon):
            return
        self.trace.record_state(self.now, "booting")
        if not self._run_load(self.board.boot_load(), horizon):
            self._power_failure()
            return
        self.trace.record_state(self.now, "running")
        while self.now < horizon - _TIME_EPSILON:
            if not self._execute_current_task(horizon):
                return

    # ------------------------------------------------------------------
    # Task execution with checkpoint/restore
    # ------------------------------------------------------------------

    def _execute_current_task(self, horizon: float) -> bool:
        task_name = self.nv.get(TASK_KEY, self.graph.entry)
        task = self.graph.task(task_name)
        record: Optional[CheckpointRecord] = self.nv.get(CHECKPOINT_KEY)
        if record is not None and record.task != task.name:
            record = None  # stale snapshot from a different task

        context = TaskContext(self.nv, lambda: self.now)
        generator = task.body(context)
        sent_values: List[Any] = []
        ops_completed = 0

        if record is not None:
            # Restore: pay the restore cost, then replay the recorded
            # prefix for free (state is being copied, not recomputed).
            if not self._run_load(self.cost.restore_load(), horizon):
                self._power_failure()
                return False
            self.trace.bump("checkpoint_restores")
            if self.telemetry.enabled:
                self.telemetry.inc("kernel.checkpoint_restores")
                self.telemetry.event(
                    self.now, "kernel", "checkpoint_restore", task=task.name
                )
            try:
                replayed = self._replay(generator, record)
            except StopIteration:
                replayed = None
            if replayed is None:
                # Body shorter than the snapshot (graph changed?): drop it.
                self.nv.delete(CHECKPOINT_KEY)
                return True
            for key, value in record.staged.items():
                self.nv.stage(key, value)
            sent_values = list(record.sent_values)
            ops_completed = record.ops_completed

        to_send = sent_values[-1] if sent_values else None
        first = ops_completed == 0
        while True:
            if self.now >= horizon - _TIME_EPSILON:
                self.nv.abort()
                return False
            try:
                operation = (
                    generator.send(None)
                    if first
                    else generator.send(to_send)
                )
            except StopIteration as stop:
                return self._complete(task, stop.value)
            first = False
            outcome = self._perform(operation, horizon)
            if outcome is _FAILED:
                self.nv.abort()
                self._power_failure()
                self._note_no_progress(task, ops_completed)
                return False
            to_send = outcome
            sent_values.append(to_send)
            ops_completed += 1
            self._cycles_without_progress = 0
            self._maybe_checkpoint(task, ops_completed, sent_values, horizon)

    def _replay(self, generator, record: CheckpointRecord):
        """Fast-forward a fresh generator to the snapshot point."""
        operation = generator.send(None)
        for index in range(record.ops_completed):
            if index == record.ops_completed - 1:
                return operation
            operation = generator.send(record.sent_values[index])
        return operation

    def _complete(self, task, next_name: Optional[str]) -> bool:
        self.nv.commit()
        self.nv.delete(CHECKPOINT_KEY)
        target = next_name if next_name is not None else task.name
        if target not in self.graph:
            raise TaskGraphError(
                f"task {task.name!r} transitioned to unknown task {target!r}"
            )
        self.nv.put(TASK_KEY, target)
        self.trace.bump(f"task_done:{task.name}")
        return True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _maybe_checkpoint(
        self,
        task,
        ops_completed: int,
        sent_values: List[Any],
        horizon: float,
    ) -> None:
        if self.policy is CheckpointPolicy.VOLTAGE_THRESHOLD:
            voltage = self.power_system.reservoir.active_voltage(self.now)
            due = self._checkpoint_armed and voltage <= self.checkpoint_threshold
        else:
            due = ops_completed % self.checkpoint_period_ops == 0
        if not due:
            return
        if not self._run_load(self.cost.write_load(), horizon):
            # Died while writing the snapshot: the old one (if any)
            # remains valid — exactly the double-buffering real systems
            # use.
            self._power_failure()
            return
        record = CheckpointRecord(
            task=task.name,
            ops_completed=ops_completed,
            sent_values=list(sent_values),
            staged=self.nv.staged_items(),
        )
        self.nv.put(CHECKPOINT_KEY, record)
        self.trace.bump("checkpoints")
        if self.telemetry.enabled:
            self.telemetry.inc("kernel.checkpoints")
            self.telemetry.event(
                self.now,
                "kernel",
                "checkpoint",
                task=task.name,
                ops_completed=ops_completed,
            )
        self._checkpoint_armed = False

    # ------------------------------------------------------------------
    # Operations and energy plumbing (shared semantics with the
    # task-based executor)
    # ------------------------------------------------------------------

    def _perform(self, operation, horizon: float):
        if isinstance(operation, Compute):
            load = self.board.compute_load(operation.ops)
            return None if self._run_load(load, horizon) else _FAILED
        if isinstance(operation, Sample):
            load = self.board.sense_load(operation.sensor, operation.samples)
            if not self._run_load(load, horizon):
                return _FAILED
            reading = self.sensor_binding(operation.sensor, self.now)
            self.trace.record_sample(
                self.now, operation.sensor, reading.value, reading.event_id
            )
            return reading
        if isinstance(operation, Transmit):
            load = self.board.transmit_load(operation.size_bytes)
            if not self._run_load(load, horizon):
                return _FAILED
            delivered = True
            radio = self.board.radio
            if radio is not None and radio.loss_rate > 0.0:
                delivered = self.rng.random() >= radio.loss_rate
            if delivered:
                self.trace.record_packet(
                    self.now,
                    operation.payload,
                    operation.size_bytes,
                    operation.event_id,
                )
            return delivered
        if isinstance(operation, Sleep):
            load = self.board.sleep_load(operation.duration)
            return None if self._run_load(load, horizon) else _FAILED
        raise TaskGraphError(f"unknown operation {operation!r}")

    def _run_load(self, load: LoadPoint, horizon: float) -> bool:
        duration = min(load.duration, max(0.0, horizon - self.now))
        result = self.power_system.discharge(self.now, load.power, duration)
        self.now += result.elapsed
        return result.elapsed >= duration - _TIME_EPSILON

    def _charge_full(self, horizon: float) -> bool:
        self.trace.record_state(self.now, "charging")
        ps = self.power_system
        start = self.now
        while not ps.is_charged(self.now):
            if self.now >= horizon - _TIME_EPSILON:
                return False
            result = ps.charge(self.now, min(120.0, horizon - self.now))
            self.now += result.elapsed
            if result.reached_target:
                break
        self.trace.bump("charge_cycles")
        self.trace.record_duration("charge", self.now - start)
        self._checkpoint_armed = True
        return True

    def _power_failure(self) -> None:
        self.trace.bump("power_failures")
        if self.telemetry.enabled:
            self.telemetry.inc("kernel.power_failures")
            self.telemetry.event(self.now, "kernel", "power_failure")
        self.volatile.power_fail()
        self.nv.power_fail()
        self.trace.record_state(self.now, "off", "power failure")

    def _note_no_progress(self, task, ops_completed: int) -> None:
        record: Optional[CheckpointRecord] = self.nv.get(CHECKPOINT_KEY)
        anchored = record.ops_completed if record and record.task == task.name else 0
        if ops_completed <= anchored:
            self._cycles_without_progress += 1
        else:
            self._cycles_without_progress = 0
        if self._cycles_without_progress > self.max_cycles_without_progress:
            raise ProvisioningError(
                f"task {task.name!r} makes no forward progress between "
                "checkpoints; the buffer cannot fund even one operation "
                "plus a checkpoint"
            )


class _Failed:
    """Sentinel: an operation ended in a power failure."""


_FAILED = _Failed()
