"""Intermittent-computing runtime.

This package is the software half of Capybara: a Chain-style task-based
intermittent programming model (:mod:`repro.kernel.tasks`), crash-
consistent non-volatile memory (:mod:`repro.kernel.memory`), the energy
mode annotations of Section 4 (:mod:`repro.kernel.annotations`), the
Capybara runtime state machine (:mod:`repro.kernel.capybara`), and the
intermittent executor that drives a board through charge / boot / run /
power-failure cycles (:mod:`repro.kernel.executor`), plus the paper's
baselines (:mod:`repro.kernel.baselines`).
"""

from repro.kernel.annotations import (
    BurstAnnotation,
    ConfigAnnotation,
    NoAnnotation,
    PreburstAnnotation,
)
from repro.kernel.capybara import CapybaraRuntime, RuntimeVariant
from repro.kernel.checkpoint import (
    CheckpointCost,
    CheckpointingExecutor,
    CheckpointPolicy,
)
from repro.kernel.executor import DeviceState, IntermittentExecutor
from repro.kernel.baselines import ContinuousExecutor
from repro.kernel.memory import NonVolatileStore, VolatileStore
from repro.kernel.tasks import (
    Compute,
    Sample,
    Sleep,
    Task,
    TaskContext,
    TaskGraph,
    Transmit,
    WaitForInterrupt,
)

__all__ = [
    "NonVolatileStore",
    "VolatileStore",
    "Task",
    "TaskGraph",
    "TaskContext",
    "Compute",
    "Sample",
    "Transmit",
    "Sleep",
    "WaitForInterrupt",
    "NoAnnotation",
    "ConfigAnnotation",
    "BurstAnnotation",
    "PreburstAnnotation",
    "CapybaraRuntime",
    "RuntimeVariant",
    "IntermittentExecutor",
    "ContinuousExecutor",
    "DeviceState",
    "CheckpointingExecutor",
    "CheckpointPolicy",
    "CheckpointCost",
]
