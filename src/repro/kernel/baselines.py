"""Execution baselines.

The paper compares Capybara against two baselines:

* **Continuous power** ("Pwr") — the same application code on a bench
  supply: no charging, no power failures.  :class:`ContinuousExecutor`
  runs the task graph with operations consuming only time (their energy
  is unconstrained).
* **Fixed capacity** ("Fixed") — a statically-provisioned single bank.
  That baseline needs no special executor: build a power system whose
  reservoir has one hardwired bank and run the ordinary
  :class:`~repro.kernel.executor.IntermittentExecutor` with the
  ``FIXED`` runtime variant (see :mod:`repro.core.builder`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import TaskGraphError
from repro.device.board import Board
from repro.kernel.executor import SensorBinding, _default_binding
from repro.kernel.memory import NonVolatileStore
from repro.kernel.tasks import (
    Compute,
    Sample,
    Sleep,
    TaskContext,
    TaskGraph,
    Transmit,
    WaitForInterrupt,
)
from repro.observability.telemetry import Telemetry, resolve_telemetry
from repro.sim.trace import Trace

_TIME_EPSILON = 1e-9


class ContinuousExecutor:
    """Run a task graph on continuous power (the "Pwr" baseline).

    Operations take their real durations (so latency comparisons are
    fair) but never brown out.  Energy consumed is tallied in the trace
    counters for reference.
    """

    def __init__(
        self,
        board: Board,
        graph: TaskGraph,
        trace: Optional[Trace] = None,
        sensor_binding: SensorBinding = _default_binding,
        interrupt_source=None,
        rng: Optional[np.random.Generator] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.board = board
        self.graph = graph
        self.telemetry = resolve_telemetry(telemetry)
        self.trace = trace if trace is not None else Trace()
        self.sensor_binding = sensor_binding
        self.interrupt_source = interrupt_source
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.nv = NonVolatileStore()
        self.now = 0.0
        self.energy_consumed = 0.0
        self._irq_consumed = {}

    def run(self, horizon: float) -> Trace:
        """Run until simulation time *horizon*; returns the trace."""
        if horizon < self.now:
            raise TaskGraphError(
                f"horizon {horizon} precedes current time {self.now}"
            )
        self.trace.record_state(self.now, "running", "continuous power")
        task_name = self.graph.entry
        while self.now < horizon - _TIME_EPSILON:
            task = self.graph.task(task_name)
            context = TaskContext(self.nv, lambda: self.now)
            generator = task.body(context)
            to_send = None
            completed = True
            while True:
                if self.now >= horizon - _TIME_EPSILON:
                    completed = False
                    break
                try:
                    operation = generator.send(to_send)
                except StopIteration as stop:
                    next_name = stop.value if stop.value is not None else task.name
                    if next_name not in self.graph:
                        raise TaskGraphError(
                            f"task {task.name!r} transitioned to unknown "
                            f"task {next_name!r}"
                        )
                    self.nv.commit()
                    self.trace.bump(f"task_done:{task.name}")
                    if self.telemetry.enabled:
                        self.telemetry.inc("kernel.tasks_completed")
                        self.telemetry.inc(f"kernel.tasks_completed.{task.name}")
                    task_name = next_name
                    break
                to_send = self._perform(operation, horizon)
            if not completed:
                self.nv.abort()
        return self.trace

    # ------------------------------------------------------------------

    def _perform(self, operation, horizon: float):
        if isinstance(operation, Compute):
            load = self.board.compute_load(operation.ops)
            self._advance(load.duration, load.power, horizon)
            return None
        if isinstance(operation, Sample):
            load = self.board.sense_load(operation.sensor, operation.samples)
            self._advance(load.duration, load.power, horizon)
            reading = self.sensor_binding(operation.sensor, self.now)
            self.trace.record_sample(
                self.now, operation.sensor, reading.value, reading.event_id
            )
            return reading
        if isinstance(operation, Transmit):
            load = self.board.transmit_load(operation.size_bytes)
            self._advance(load.duration, load.power, horizon)
            delivered = True
            radio = self.board.radio
            if radio is not None and radio.loss_rate > 0.0:
                delivered = self.rng.random() >= radio.loss_rate
            if delivered:
                self.trace.record_packet(
                    self.now,
                    operation.payload,
                    operation.size_bytes,
                    operation.event_id,
                )
            else:
                self.trace.bump("packets_lost_rf")
            return delivered
        if isinstance(operation, Sleep):
            load = self.board.sleep_load(operation.duration)
            self._advance(load.duration, load.power, horizon)
            return None
        if isinstance(operation, WaitForInterrupt):
            # Latched edge-triggered semantics, mirroring the
            # intermittent executor (each edge wakes exactly one wait).
            consumed = self._irq_consumed.get(operation.line, float("-inf"))
            edge = None
            if self.interrupt_source is not None:
                query_from = (
                    consumed + 1e-9 if consumed != float("-inf") else 0.0
                )
                edge = self.interrupt_source(operation.line, query_from)
            deadline = (
                self.now + operation.timeout
                if operation.timeout is not None
                else float("inf")
            )
            until = min(edge if edge is not None else float("inf"), deadline)
            if until == float("inf"):
                raise TaskGraphError(
                    f"WaitForInterrupt({operation.line!r}) would sleep "
                    "forever: no interrupt edge remains and no timeout "
                    "was given"
                )
            self._advance(
                max(0.0, until - self.now),
                self.board.mcu.sleep_power + operation.sentinel_power,
                horizon,
            )
            if edge is not None and edge <= until + 1e-12:
                self._irq_consumed[operation.line] = edge
            reading = self.sensor_binding(operation.line, self.now)
            self.trace.record_sample(
                self.now, operation.line, reading.value, reading.event_id
            )
            return reading
        raise TaskGraphError(f"task yielded unknown operation {operation!r}")

    def _advance(self, duration: float, power: float, horizon: float) -> None:
        step = min(duration, max(0.0, horizon - self.now))
        self.now += step
        self.energy_consumed += power * step
