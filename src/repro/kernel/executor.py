"""The intermittent executor.

Drives a :class:`~repro.device.board.Board` through the intermittent
execution model of Section 2: the device is **off while charging**,
boots only once the active buffer is full, executes tasks until the
buffer empties (a power failure), and repeats.  The executor also
performs the Capybara runtime's power plans — reconfiguration steps and
deliberate charge pauses — between tasks.

The executor owns the experiment clock (`now`, seconds) and advances it
by exact analytic segments (charge durations from the power system's
integrator, load durations from the board's load points), so runs are
deterministic given the RNG seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ProvisioningError, TaskGraphError
from repro.device.board import Board, LoadPoint
from repro.kernel.capybara import CapybaraRuntime, Charge, Reconfigure
from repro.kernel.memory import VolatileStore
from repro.kernel.tasks import (
    Compute,
    Sample,
    Sleep,
    Task,
    TaskContext,
    TaskGraph,
    Transmit,
    WaitForInterrupt,
)
from repro.observability.telemetry import Telemetry, resolve_telemetry
from repro.sim.trace import Trace

#: Non-volatile key holding the current task pointer.
TASK_POINTER_KEY = "kernel/task-pointer"

#: Executor-internal chunk for charge calls, so the trace reflects
#: charging progress and the horizon is honoured.
_CHARGE_CHUNK = 120.0

_TIME_EPSILON = 1e-9


class DeviceState(enum.Enum):
    """Coarse device state recorded in the trace."""

    CHARGING = "charging"
    BOOTING = "booting"
    RUNNING = "running"
    OFF = "off"


@dataclass(frozen=True)
class SensorReading:
    """What a sensor binding returns for one acquisition.

    Attributes:
        value: the physical reading.
        event_id: ground-truth event observed, if the rig says one was
            in progress at sampling time.
    """

    value: float
    event_id: Optional[int] = None


#: An application's binding from (sensor name, time) to a reading —
#: the simulated analogue of wiring a rig to the board's sensors.
SensorBinding = Callable[[str, float], SensorReading]

#: An application's interrupt wiring: (line name, time) -> the next
#: instant at or after *time* when the line asserts, or ``None`` if it
#: never will.  The simulated analogue of a sensor's wake-up comparator.
InterruptSource = Callable[[str, float], Optional[float]]


def _default_binding(sensor: str, time: float) -> SensorReading:
    return SensorReading(value=0.0, event_id=None)


class IntermittentExecutor:
    """Charge / boot / run / power-fail loop for one board.

    Args:
        board: the hardware platform.
        graph: the application task graph.
        runtime: the Capybara runtime (any variant).
        trace: destination for records; a fresh one is made if omitted.
        sensor_binding: resolves :class:`~repro.kernel.tasks.Sample`
            operations against the environment.
        rng: randomness for radio loss; defaults to a fixed seed.
        max_power_failures_per_task: safety valve detecting tasks that
            can never complete under the current provisioning.
    """

    def __init__(
        self,
        board: Board,
        graph: TaskGraph,
        runtime: CapybaraRuntime,
        trace: Optional[Trace] = None,
        sensor_binding: SensorBinding = _default_binding,
        interrupt_source: Optional[InterruptSource] = None,
        rng: Optional[np.random.Generator] = None,
        max_power_failures_per_task: int = 10_000,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.board = board
        self.graph = graph
        self.runtime = runtime
        self.telemetry = resolve_telemetry(telemetry)
        self.trace = trace if trace is not None else Trace()
        self.sensor_binding = sensor_binding
        self.interrupt_source = interrupt_source
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.max_power_failures_per_task = max_power_failures_per_task

        self.now = 0.0
        self.nv = runtime.nv
        self.volatile = VolatileStore()
        self.state = DeviceState.OFF
        self._consecutive_failures = 0
        self._last_voltage_record = (-1.0, -1.0)
        #: Minimum spacing of voltage trace records, seconds.  Keeps the
        #: trace at plot resolution instead of one record per operation.
        self.voltage_record_interval = 0.02

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def power_system(self):
        return self.board.power_system

    def current_task_name(self) -> str:
        return self.nv.get(TASK_POINTER_KEY, self.graph.entry)

    def run(self, horizon: float) -> Trace:
        """Run the device until simulation time *horizon*.

        Returns the trace (also available as ``self.trace``).
        """
        if horizon < self.now:
            raise TaskGraphError(
                f"horizon {horizon} precedes current time {self.now}"
            )
        while self.now < horizon - _TIME_EPSILON:
            self._cycle(horizon)
        return self.trace

    # ------------------------------------------------------------------
    # One charge/boot/run cycle
    # ------------------------------------------------------------------

    def _cycle(self, horizon: float) -> None:
        # Phase 1: charge the active configuration to full.
        if not self._charge_to(None, horizon, reason="recharge"):
            return  # horizon reached while charging
        # Phase 2: boot.
        if not self._boot(horizon):
            return
        # Phase 3: run tasks until power failure or horizon.
        self._run_tasks(horizon)

    def _boot(self, horizon: float) -> bool:
        """Boot the device; returns True if it came up."""
        self._record_state(DeviceState.BOOTING)
        outcome = self._run_load(self.board.boot_load(), horizon)
        if outcome is _HORIZON:
            return False
        if outcome is _POWER_FAILED:
            self.trace.bump("boot_failures")
            if self.telemetry.enabled:
                self.telemetry.inc("kernel.boot_failures")
            self._on_power_failure()
            return False
        if self.telemetry.enabled:
            self.telemetry.inc("kernel.reboots")
            self.telemetry.event(self.now, "kernel", "reboot")
        return True

    def _run_tasks(self, horizon: float) -> None:
        self._record_state(DeviceState.RUNNING)
        while self.now < horizon - _TIME_EPSILON:
            task = self.graph.task(self.current_task_name())
            if not self._execute_plan(task, horizon):
                return  # power failure or horizon during the plan
            if not self._execute_task(task, horizon):
                return  # power failure or horizon during the task

    # ------------------------------------------------------------------
    # Power plans
    # ------------------------------------------------------------------

    def _execute_plan(self, task: Task, horizon: float) -> bool:
        """Perform the runtime's plan for *task*.

        Returns True if the device is powered and ready to run the task.
        """
        plan = self.runtime.plan_for_task(task, self.now)
        for step in plan:
            if self.now >= horizon - _TIME_EPSILON:
                return False
            if isinstance(step, Reconfigure):
                toggle_energy = self.power_system.reservoir.configure(
                    step.config, self.now
                )
                if toggle_energy > 0.0:
                    self.power_system.reservoir.extract(toggle_energy, self.now)
                self.runtime.note_reconfigured(step.config)
                self.trace.bump("reconfigurations")
                self._record_voltage()
            elif isinstance(step, Charge):
                # A deliberate pause: the device powers down, charges the
                # newly configured buffer, and boots again (Section 4.1:
                # "After the reservoir charges, the device boots, and the
                # runtime executes the task").
                self.volatile.power_fail()
                target = (
                    self.power_system.charge_target_voltage(self.now)
                    - step.voltage_offset
                )
                if not self._charge_to(target, horizon, reason=step.reason):
                    return False
                if step.mark_precharged_mode is not None:
                    self.runtime.mark_precharged(
                        step.mark_precharged_mode,
                        self.power_system.reservoir.active_voltage(self.now),
                        time=self.now,
                    )
                if not self._boot(horizon):
                    return False
                self._record_state(DeviceState.RUNNING)
            else:  # pragma: no cover - plans only contain the two kinds
                raise TaskGraphError(f"unknown plan step {step!r}")
        return True

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------

    def _execute_task(self, task: Task, horizon: float) -> bool:
        """Run *task* to completion.

        Returns True if it completed and the device remains powered.  A
        horizon interruption aborts the in-flight transaction without
        counting a power failure — on the next :meth:`run` the task
        restarts, exactly the task-atomic semantics a real pause has.
        """
        context = TaskContext(self.nv, lambda: self.now)
        generator = task.body(context)
        to_send = None
        while True:
            if self.now >= horizon - _TIME_EPSILON:
                self.nv.abort()
                return False
            try:
                operation = generator.send(to_send)
            except StopIteration as stop:
                return self._complete_task(task, stop.value)
            to_send = self._perform(operation, horizon)
            if to_send is _HORIZON:
                self.nv.abort()
                return False
            if to_send is _POWER_FAILED:
                self.nv.abort()
                if self.telemetry.enabled:
                    self.telemetry.inc("kernel.task_restarts")
                    self.telemetry.event(
                        self.now, "kernel", "task_restart", task=task.name
                    )
                self._on_power_failure()
                self._check_livelock(task)
                return False
        # unreachable

    def _complete_task(self, task: Task, next_name: Optional[str]) -> bool:
        self.nv.commit()
        self.runtime.note_task_complete(task)
        self.trace.bump(f"task_done:{task.name}")
        if self.telemetry.enabled:
            self.telemetry.inc("kernel.tasks_completed")
            self.telemetry.inc(f"kernel.tasks_completed.{task.name}")
        self._consecutive_failures = 0
        target = next_name if next_name is not None else task.name
        if target not in self.graph:
            raise TaskGraphError(
                f"task {task.name!r} transitioned to unknown task {target!r}"
            )
        self.nv.put(TASK_POINTER_KEY, target)
        return True

    def _perform(self, operation, horizon: float):
        """Execute one yielded operation; returns the value to send back
        into the task generator, or the :data:`_POWER_FAILED` /
        :data:`_HORIZON` sentinels."""
        if isinstance(operation, Compute):
            load = self.board.compute_load(operation.ops)
            return self._load_outcome(self._run_load(load, horizon), None)
        if isinstance(operation, Sample):
            load = self.board.sense_load(operation.sensor, operation.samples)
            outcome = self._run_load(load, horizon)
            if outcome is not _DONE:
                return outcome
            reading = self.sensor_binding(operation.sensor, self.now)
            self.trace.record_sample(
                self.now, operation.sensor, reading.value, reading.event_id
            )
            return reading
        if isinstance(operation, Transmit):
            load = self.board.transmit_load(operation.size_bytes)
            outcome = self._run_load(load, horizon)
            if outcome is _POWER_FAILED:
                self.trace.bump("tx_failures")
                return outcome
            if outcome is _HORIZON:
                return outcome
            delivered = True
            radio = self.board.radio
            if radio is not None and radio.loss_rate > 0.0:
                delivered = self.rng.random() >= radio.loss_rate
            if delivered:
                self.trace.record_packet(
                    self.now,
                    operation.payload,
                    operation.size_bytes,
                    operation.event_id,
                )
            else:
                self.trace.bump("packets_lost_rf")
            return delivered
        if isinstance(operation, Sleep):
            load = self.board.sleep_load(operation.duration)
            return self._load_outcome(self._run_load(load, horizon), None)
        if isinstance(operation, WaitForInterrupt):
            return self._perform_wait(operation, horizon)
        raise TaskGraphError(f"task yielded unknown operation {operation!r}")

    def _perform_wait(self, operation: WaitForInterrupt, horizon: float):
        """Sleep until the interrupt line's next edge (or the timeout).

        Edges are latched and consumed exactly once (the flag-register
        behaviour of real interrupt controllers): an edge that asserted
        while the device was busy or powered off wakes the next wait
        immediately; a consumed edge never re-fires, so a still-
        asserting level cannot storm the MCU.  Consumption is tracked in
        non-volatile memory — a power failure must not replay edges.
        """
        consumed_key = f"kernel/irq-consumed:{operation.line}"
        consumed = self.nv.get(consumed_key, float("-inf"))
        edge: Optional[float] = None
        if self.interrupt_source is not None:
            query_from = consumed + 1e-9 if consumed != float("-inf") else float("-inf")
            edge = self.interrupt_source(
                operation.line, max(query_from, 0.0)
            )
        deadline = (
            self.now + operation.timeout
            if operation.timeout is not None
            else float("inf")
        )
        until = min(edge if edge is not None else float("inf"), deadline)
        if until == float("inf"):
            raise TaskGraphError(
                f"WaitForInterrupt({operation.line!r}) would sleep forever: "
                "no interrupt edge remains and no timeout was given"
            )
        duration = max(0.0, until - self.now)
        load = LoadPoint(
            duration,
            self.board.mcu.sleep_power + operation.sentinel_power,
        )
        outcome = self._run_load(load, horizon)
        if outcome is not _DONE:
            return outcome
        if edge is not None and edge <= until + 1e-12:
            # The edge (not the watchdog) ended the wait: consume it.
            self.nv.put(consumed_key, edge)
        reading = self.sensor_binding(operation.line, self.now)
        self.trace.record_sample(
            self.now, operation.line, reading.value, reading.event_id
        )
        self.trace.bump("interrupt_wakes")
        return reading

    @staticmethod
    def _load_outcome(outcome, value):
        return value if outcome is _DONE else outcome

    # ------------------------------------------------------------------
    # Energy plumbing
    # ------------------------------------------------------------------

    def _run_load(self, load: LoadPoint, horizon: float):
        """Drain *load* from the reservoir.

        Returns :data:`_DONE` when the load ran to completion,
        :data:`_POWER_FAILED` on brownout, or :data:`_HORIZON` when the
        run horizon interrupted it (the partial drain is real; the
        operation's side effect is not).
        """
        duration = min(load.duration, max(0.0, horizon - self.now))
        truncated = duration < load.duration - _TIME_EPSILON
        result = self.power_system.discharge(self.now, load.power, duration)
        self.now += result.elapsed
        self._record_voltage()
        if result.elapsed < duration - _TIME_EPSILON:
            # Browning out exactly at the end still counts as finishing.
            return _POWER_FAILED
        return _HORIZON if truncated else _DONE

    def _charge_to(
        self, target: Optional[float], horizon: float, reason: str
    ) -> bool:
        """Charge the active set to *target* volts (None = full).

        Returns True when the target is reached before the horizon.
        """
        start = self.now
        self._record_state(DeviceState.CHARGING, detail=reason)
        self._record_voltage()
        ps = self.power_system
        while True:
            resolved = (
                ps.charge_target_voltage(self.now) if target is None else target
            )
            if ps.reservoir.active_voltage(self.now) >= resolved - 1e-9:
                break
            if self.now >= horizon - _TIME_EPSILON:
                self.trace.record_duration(f"charge_incomplete:{reason}", self.now - start)
                return False
            chunk = min(_CHARGE_CHUNK, horizon - self.now)
            result = ps.charge(self.now, chunk, target_voltage=resolved)
            self.now += result.elapsed
            self._record_voltage()
            if result.reached_target:
                break
        self.trace.bump("charge_cycles")
        self.trace.record_duration(f"charge:{reason}", self.now - start)
        self.trace.record_duration("charge", self.now - start)
        if self.telemetry.enabled:
            self.telemetry.inc("kernel.charge_cycles")
            self.telemetry.observe("kernel.charge_seconds", self.now - start)
            self.telemetry.span(
                start, self.now, "kernel", "charge", reason=reason
            )
        return True

    def _on_power_failure(self) -> None:
        self.trace.bump("power_failures")
        if self.telemetry.enabled:
            self.telemetry.inc("kernel.power_failures")
            self.telemetry.event(self.now, "kernel", "power_failure")
        self.volatile.power_fail()
        self.nv.power_fail()
        self.runtime.note_power_failure()
        self._record_state(DeviceState.OFF, detail="power failure")
        self.state = DeviceState.OFF

    def _check_livelock(self, task: Task) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures > self.max_power_failures_per_task:
            raise ProvisioningError(
                f"task {task.name!r} failed {self._consecutive_failures} "
                "consecutive times; the active configuration cannot "
                "complete it (misprovisioned system)"
            )

    # ------------------------------------------------------------------
    # Trace helpers
    # ------------------------------------------------------------------

    def _record_state(self, state: DeviceState, detail: str = "") -> None:
        self.state = state
        self.trace.record_state(self.now, state.value, detail)

    def _record_voltage(self) -> None:
        voltage = self.power_system.reservoir.active_voltage(self.now)
        last_time, last_voltage = self._last_voltage_record
        if (
            self.now - last_time < self.voltage_record_interval
            and abs(voltage - last_voltage) < 0.01
        ):
            return
        self._last_voltage_record = (self.now, voltage)
        self.trace.record_voltage(self.now, voltage)


class _Outcome:
    """Sentinel type for load outcomes (see :meth:`_run_load`)."""

    def __init__(self, label: str) -> None:
        self._label = label

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<outcome {self._label}>"


_DONE = _Outcome("done")
_POWER_FAILED = _Outcome("power-failed")
_HORIZON = _Outcome("horizon")
