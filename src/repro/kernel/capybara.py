"""The Capybara runtime (Sections 4.2-4.3).

The runtime interprets task annotations and turns them into *power
plans*: ordered sequences of reconfiguration and charge steps the
intermittent executor performs before running a task.

Three variants reproduce the paper's evaluation systems:

* **Capy-P** — the complete system: ``config``, ``burst`` and
  ``preburst`` all honoured; burst banks are pre-charged ahead of time
  (to ~0.3 V below the normal target, the switch-circuit limitation of
  Section 6.4) and spent with zero recharge latency.
* **Capy-R** — reconfiguration only: ``burst`` degrades to ``config``
  (recharge on the critical path) and ``preburst`` degrades to a plain
  ``config`` of its exec mode.
* **Fixed** — the statically-provisioned baseline: annotations are
  ignored entirely; the reservoir is whatever single bank the designer
  soldered down.

The runtime is crash-robust by construction: plans are recomputed from
scratch on every boot, and each step is idempotent (re-closing a closed
switch is free; charging a charged bank returns immediately).  A
non-volatile marker records a completed pre-charge so the expensive
phase is skipped when the banks still hold their charge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Union

from repro.errors import EnergyModeError
from repro.core.modes import ModeRegistry
from repro.energy.reservoir import ReconfigurableReservoir, ReservoirConfig
from repro.kernel.annotations import (
    BurstAnnotation,
    ConfigAnnotation,
    NoAnnotation,
    PreburstAnnotation,
)
from repro.kernel.memory import NonVolatileStore
from repro.kernel.tasks import Task
from repro.observability.telemetry import Telemetry, resolve_telemetry


class RuntimeVariant(enum.Enum):
    """Which of the paper's evaluated systems the runtime behaves as."""

    CAPY_P = "CB-P"
    CAPY_R = "CB-R"
    FIXED = "Fixed"

    @classmethod
    def from_name(cls, name: "str | RuntimeVariant") -> "RuntimeVariant":
        """Resolve a variant from its value (``"CB-P"``), its enum name
        (``"CAPY_P"``), or a case-insensitive spelling of either."""
        if isinstance(name, cls):
            return name
        for variant in cls:
            if name in (variant.value, variant.name):
                return variant
        folded = str(name).replace("-", "_").casefold()
        for variant in cls:
            if folded in (
                variant.value.replace("-", "_").casefold(),
                variant.name.casefold(),
            ):
                return variant
        raise ValueError(
            f"unknown runtime variant {name!r}; "
            f"known: {[variant.value for variant in cls]}"
        )


@dataclass(frozen=True)
class Reconfigure:
    """Plan step: switch the reservoir to *config*."""

    config: ReservoirConfig


@dataclass(frozen=True)
class Charge:
    """Plan step: power down and charge the active set to the charge
    target minus *voltage_offset* (the pre-charge penalty when the banks
    are destined for deactivation)."""

    voltage_offset: float = 0.0
    #: Label for tracing ("mode charge", "pre-charge", ...).
    reason: str = "charge"
    #: When set, the executor records a completed pre-charge of this
    #: mode in non-volatile memory once the charge finishes.
    mark_precharged_mode: Optional[str] = None


PlanStep = Union[Reconfigure, Charge]

#: NV key prefix recording a completed pre-charge of a burst mode.
_PRECHARGE_KEY = "capybara/precharged:"
#: NV key holding the runtime's believed active configuration.
_BELIEF_KEY = "capybara/believed-config"
#: NV flag set by a power failure: the configuration may have silently
#: reverted and must be re-commanded before trusting it.
_SUSPECT_KEY = "capybara/config-suspect"


class CapybaraRuntime:
    """Interprets annotations against a reservoir and mode registry."""

    def __init__(
        self,
        reservoir: ReconfigurableReservoir,
        modes: ModeRegistry,
        nv: NonVolatileStore,
        variant: RuntimeVariant = RuntimeVariant.CAPY_P,
        precharge_ttl: float = float("inf"),
        suspect_on_failure: bool = True,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if precharge_ttl <= 0.0:
            raise EnergyModeError("precharge_ttl must be positive")
        self.telemetry = resolve_telemetry(telemetry)
        self.reservoir = reservoir
        self.modes = modes
        self.nv = nv
        self.variant = variant
        #: Seconds after which a pre-charge marker is assumed leaked
        #: away and redone.  A parked bank has no sense line, but the
        #: runtime *can* keep a coarse non-volatile timestamp and budget
        #: for leakage; ``inf`` trusts the marker until the burst fails.
        self.precharge_ttl = precharge_ttl
        #: Whether a power failure marks the configuration suspect
        #: (forcing a re-issue of the reconfiguration on the next plan).
        #: Disabling this models a naive runtime that always trusts its
        #: belief — the runtime that falls into Section 5.2's indefinite
        #: retry cycle on normally-open switches.
        self.suspect_on_failure = suspect_on_failure

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan_for_task(self, task: Task, time: float) -> List[PlanStep]:
        """Power steps to perform before running *task* at *time*.

        All decisions are made against the runtime's *believed*
        configuration (tracked in non-volatile memory), never the actual
        switch state: Section 5.2 rules out switch introspection, so a
        latch reversion during a long blackout is invisible here and
        surfaces only as a failed execution attempt.
        """
        annotation = task.annotation
        if self.variant is RuntimeVariant.FIXED:
            return []
        if isinstance(annotation, NoAnnotation):
            return []
        if isinstance(annotation, ConfigAnnotation):
            return self._plan_config(annotation.mode, time)
        if isinstance(annotation, BurstAnnotation):
            return self._plan_burst(annotation.mode, time)
        if isinstance(annotation, PreburstAnnotation):
            return self._plan_preburst(annotation, time)
        raise EnergyModeError(
            f"task {task.name!r} has unknown annotation {annotation!r}"
        )

    def note_task_complete(self, task: Task) -> None:
        """Post-task bookkeeping.

        A completed burst consumed its pre-charge; any completion also
        proves the configuration sufficient, clearing the suspect flag a
        power failure may have set.
        """
        annotation = task.annotation
        if isinstance(annotation, BurstAnnotation):
            self.nv.delete(_PRECHARGE_KEY + annotation.mode)
        self.nv.delete(_SUSPECT_KEY)

    def note_reconfigured(self, config: ReservoirConfig) -> None:
        """Record (durably) the configuration the runtime just commanded."""
        self.nv.put(_BELIEF_KEY, sorted(config.bank_names))

    def note_power_failure(self) -> None:
        """A power failure interrupted execution.

        The runtime cannot tell whether the buffered energy was merely
        insufficient or a latch reversion silently shrank the reservoir,
        so it marks the configuration suspect; the next plan re-issues
        the reconfiguration (idempotent on intact switches, corrective
        after a reversion).  A naive runtime (``suspect_on_failure
        False``) skips this and keeps trusting its belief.
        """
        if self.suspect_on_failure:
            self.nv.put(_SUSPECT_KEY, True)

    def believed_banks(self) -> Optional[FrozenSet[str]]:
        """The bank set the runtime believes is active, or ``None``."""
        stored = self.nv.get(_BELIEF_KEY)
        if stored is None:
            return None
        return frozenset(stored)

    # ------------------------------------------------------------------
    # Per-annotation plans
    # ------------------------------------------------------------------

    def _config_matches(self, banks: FrozenSet[str]) -> bool:
        """Whether the believed configuration is exactly *banks* and is
        not suspect."""
        if self.nv.get(_SUSPECT_KEY, False):
            return False
        return self.believed_banks() == banks

    def _plan_config(self, mode_name: str, time: float) -> List[PlanStep]:
        mode = self.modes.get(mode_name)
        if self._config_matches(mode.banks):
            # Already configured; run on whatever energy remains — this
            # is what lets a small-mode sense loop take back-to-back
            # samples without recharging (Figure 11).
            return []
        return [Reconfigure(mode.to_config()), Charge(reason=f"config:{mode_name}")]

    def _plan_burst(self, mode_name: str, time: float) -> List[PlanStep]:
        mode = self.modes.get(mode_name)
        if self.variant is RuntimeVariant.CAPY_R:
            # Capy-R excludes burst support: recharge on the critical path.
            return [
                Reconfigure(mode.to_config()),
                Charge(reason=f"burst-as-config:{mode_name}"),
            ]
        # Capy-P: activate the pre-charged banks and run immediately.  If
        # the pre-charge was lost (leakage, never performed), the task
        # simply runs on what is there and, on brownout, the executor
        # recharges in this configuration and retries — the paper's
        # "some events require charging despite pre-charge".
        return [Reconfigure(mode.to_config())]

    def _plan_preburst(
        self, annotation: PreburstAnnotation, time: float
    ) -> List[PlanStep]:
        burst_mode = self.modes.get(annotation.burst_mode)
        exec_mode = self.modes.get(annotation.exec_mode)
        if self.variant is RuntimeVariant.CAPY_R:
            return self._plan_config(annotation.exec_mode, time)

        steps: List[PlanStep] = []
        if not self._precharge_intact(burst_mode.name, time):
            penalty = self.reservoir.precharge_voltage_penalty
            steps.append(Reconfigure(burst_mode.to_config()))
            steps.append(
                Charge(
                    voltage_offset=penalty,
                    reason=f"pre-charge:{burst_mode.name}",
                    mark_precharged_mode=burst_mode.name,
                )
            )
        # Switch to the exec mode (parking the burst banks) and top up.
        if steps or not self._config_matches(exec_mode.banks):
            steps.append(Reconfigure(exec_mode.to_config()))
            steps.append(Charge(reason=f"config:{exec_mode.name}"))
        return steps

    # ------------------------------------------------------------------
    # Pre-charge tracking
    # ------------------------------------------------------------------

    def mark_precharged(
        self, mode_name: str, voltage: float, time: float = 0.0
    ) -> None:
        """Record (durably) that *mode_name*'s banks were pre-charged."""
        self.nv.put(_PRECHARGE_KEY + mode_name, (voltage, time))
        if self.telemetry.enabled:
            self.telemetry.inc("kernel.precharges")
            self.telemetry.event(
                time, "kernel", "precharge", mode=mode_name, voltage=voltage
            )

    def _precharge_intact(self, mode_name: str, time: float) -> bool:
        """Whether a previous pre-charge of *mode_name* still holds.

        Only the non-volatile marker (and its age against
        ``precharge_ttl``) is consulted: parked banks have no sense
        lines (they would leak the charge away, Section 5.2), so a
        pre-charge lost to leakage or a latch reversion is discovered
        only when the burst browns out and retries after a recharge —
        the paper's "some events require charging, despite pre-charge".
        """
        record = self.nv.get(_PRECHARGE_KEY + mode_name)
        if record is None:
            return False
        _voltage, marked_at = record
        return (time - marked_at) <= self.precharge_ttl

    def precharge_target_recorded(self, mode_name: str) -> Optional[float]:
        """The voltage recorded at the last pre-charge, if any."""
        record = self.nv.get(_PRECHARGE_KEY + mode_name)
        return None if record is None else record[0]
