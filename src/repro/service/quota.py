"""Per-client token-bucket quotas.

Admission control is the difference between graceful degradation and
collapse: a client that exceeds its rate gets a 429 with a honest
``Retry-After`` while everyone else keeps being served.  The bucket is
the classic shape — ``burst`` capacity, ``rate`` tokens/second refill —
with an injectable clock so the unit tests are deterministic (no sleeps,
no flakes).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError


@dataclass
class TokenBucket:
    """One client's bucket: ``capacity`` tokens, refilled at ``rate``/s."""

    rate: float
    capacity: float
    tokens: float = 0.0
    updated: float = 0.0

    def __post_init__(self) -> None:
        self.tokens = self.capacity

    def take(self, now: float) -> Tuple[bool, float]:
        """Try to consume one token at time *now*.

        Returns ``(allowed, retry_after_seconds)`` — the second value is
        0 when allowed, else the time until one token accrues.
        """
        if now > self.updated:
            self.tokens = min(
                self.capacity, self.tokens + (now - self.updated) * self.rate
            )
            self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate <= 0.0:  # pragma: no cover - guarded at construction
            return False, math.inf
        return False, (1.0 - self.tokens) / self.rate


@dataclass
class QuotaRegistry:
    """Token buckets keyed by client id.

    ``rate <= 0`` disables quotas entirely (every request admitted) —
    the switch load tests use to isolate queue behaviour.
    """

    rate: float = 32.0
    burst: float = 64.0
    clock: Callable[[], float] = time.monotonic
    _buckets: Dict[str, TokenBucket] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rate > 0.0 and self.burst < 1.0:
            raise ConfigurationError(
                f"quota burst must be >= 1 token, got {self.burst}"
            )

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def allow(self, client: str) -> Tuple[bool, float]:
        """Admit one request from *client*; ``(allowed, retry_after)``."""
        if not self.enabled:
            return True, 0.0
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                rate=self.rate, capacity=self.burst
            )
            bucket.updated = self.clock()
        return bucket.take(self.clock())

    def snapshot(self) -> Dict[str, float]:
        """Config the health endpoint reports."""
        return {
            "rate_per_second": self.rate,
            "burst": self.burst,
            "clients_seen": float(len(self._buckets)),
        }
