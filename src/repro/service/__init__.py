"""Simulation-as-a-service: a long-lived async job service.

The spec layer (:mod:`repro.spec`) was built to be a wire format; this
package puts a service in front of it.  Canonical
ScenarioSpec/FaultScheduleSpec JSON goes in over HTTP, is validated and
hashed at the edge, and either replays instantly from the shared result
cache or queues onto a persistent worker pool — the same
:mod:`repro.experiments.parallel` machinery, RetryPolicy and
WorkerChaos included, that the campaign layer already trusts.

* :class:`~repro.service.app.ServiceApp` — the ASGI-3 application
  (job store, quotas, queue, worker loop).
* :class:`~repro.service.app.ServiceConfig` — its knobs.
* :mod:`repro.service.http` — the stdlib asyncio HTTP host behind
  ``repro serve``, plus :class:`~repro.service.http.BackgroundServer`
  for in-process testing.
* :class:`~repro.service.jobs.JobRequest` / ``JobStatus`` /
  ``JobResult`` — the wire format (also exported at the ``repro`` top
  level as part of the frozen v1 facade).
* :mod:`repro.service.loadgen` — the N-concurrent-clients load
  generator behind ``scripts/load_gen.py`` and the service benchmark.
"""

from repro.service.app import API_VERSION, ServiceApp, ServiceConfig
from repro.service.jobs import JOB_STATES, JobRequest, JobResult, JobStatus
from repro.service.runner import format_run_summary, run_scenario_job

__all__ = [
    "API_VERSION",
    "JOB_STATES",
    "JobRequest",
    "JobResult",
    "JobStatus",
    "ServiceApp",
    "ServiceConfig",
    "format_run_summary",
    "run_scenario_job",
]
