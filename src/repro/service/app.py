"""Simulation-as-a-service: the asyncio job service as an ASGI app.

One long-lived process replaces a CLI invocation per run: the result
cache, the worker pool, and the telemetry plane stay warm across
requests.  The app is a standard ASGI-3 callable (any ASGI server can
host it; :mod:`repro.service.http` is the zero-dependency stdlib one),
with these endpoints under ``/v1``:

========================  =================================================
``GET  /v1/health``       liveness + capability matrix (``repro info`` as
                          JSON: API version, backends, queue/pool/quota)
``POST /v1/jobs``         submit canonical ScenarioSpec(+FaultScheduleSpec)
                          JSON; validated and hashed at the edge; cache
                          hits complete instantly, misses are queued
``GET  /v1/jobs/{id}``    poll status
``GET  /v1/jobs/{id}/result``  fetch the completed payload
``GET  /v1/jobs/{id}/stream``  live progress + metrics as JSONL, straight
                          off the Telemetry plane
========================  =================================================

Degradation is graceful and explicit: a client over its token-bucket
quota gets **429** with ``Retry-After``; a full job queue gets **503**;
invalid specs get **400** before touching any shared resource.  Every
response carries an ``X-Request-Id`` for trace correlation, and the
service's own telemetry (request counters, latency histogram, cache
hits) is visible through the health endpoint and the CLI's
``--metrics-out``.

The job store is bounded and duplicate-free: terminal jobs expire after
``job_ttl`` seconds (polling an evicted id answers **410 Gone**), and a
submit whose result key matches a job still in flight attaches to it
instead of queueing duplicate work.  With ``batch_window > 0`` a worker
lingers briefly after each dequeue and coalesces queued vec-compatible
jobs into one fleet batch (:mod:`repro.experiments.plan`) whose
per-job payloads are byte-identical to solo execution.

Submissions may form a DAG: ``"after": ["job-1", ...]`` parks a job
until the named predecessors settle (unknown ids are a 400 at the
edge; a failed predecessor fails the dependent with the blocking id in
its detail, transitively).  ``after`` is scheduling metadata only — it
never joins the result key, so a dependent still serves from cache
instantly when its own inputs were computed before.

Jobs execute on a persistent :class:`~repro.experiments.parallel.WorkerPool`
under the campaign layer's :class:`RetryPolicy`, and — because serving
must be chaos-testable like everything else here — an armed
:class:`~repro.faults.inject.WorkerChaos` kills worker attempts
deterministically while results stay byte-identical to an undisturbed
run.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SpecError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RetryPolicy, WorkerPool
from repro.faults.inject import WorkerChaos
from repro.observability.telemetry import Telemetry
from repro.service.jobs import JobRequest, JobResult, JobStatus
from repro.service.runner import run_scenario_job

#: The frozen public API generation this service speaks.
API_VERSION = "v1"


@dataclass
class ServiceConfig:
    """Knobs for one service instance (CLI flags map 1:1 onto these)."""

    jobs: int = 1
    queue_limit: int = 16
    quota_rate: float = 32.0
    quota_burst: float = 64.0
    cache_dir: Optional[Path] = None
    use_cache: bool = True
    collect: bool = True
    retry: Optional[RetryPolicy] = None
    chaos: Optional[WorkerChaos] = None
    #: Seconds a terminal (done/failed) job stays pollable before the
    #: store evicts it; ``None`` keeps every job forever (the pre-TTL
    #: behaviour).  Evicted ids answer 410 Gone, not 404.
    job_ttl: Optional[float] = None
    #: Seconds a worker lingers after dequeuing a job to coalesce other
    #: queued vec-compatible jobs into one fleet batch; ``0`` executes
    #: strictly one job per dequeue.
    batch_window: float = 0.0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.queue_limit < 1:
            raise ConfigurationError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.job_ttl is not None and self.job_ttl <= 0:
            raise ConfigurationError(
                f"job_ttl must be > 0 seconds (or None), got {self.job_ttl}"
            )
        if self.batch_window < 0:
            raise ConfigurationError(
                f"batch_window must be >= 0 seconds, got {self.batch_window}"
            )


@dataclass
class _Job:
    """Internal record: request + status + stream buffer."""

    request: JobRequest
    status: JobStatus
    result: Optional[JobResult] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    changed: Optional[asyncio.Condition] = None
    #: Coalesced duplicates: jobs with this job's result key submitted
    #: while it was still in flight.  They settle when this job does.
    followers: List["_Job"] = field(default_factory=list)
    #: Predecessor job ids still outstanding; the job queues only once
    #: this drains (the app's ``_waiting`` index is the reverse edge).
    waiting_on: set = field(default_factory=set)

    async def emit(self, event: str, **fields: Any) -> None:
        record: Dict[str, Any] = {
            "seq": len(self.events),
            "job_id": self.status.job_id,
            "event": event,
        }
        record.update(fields)
        async with self.changed:
            self.events.append(record)
            self.changed.notify_all()


class ServiceApp:
    """The ASGI callable plus the job store and worker loop behind it."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        from repro.service.quota import QuotaRegistry

        self.config = config if config is not None else ServiceConfig()
        self.quotas = QuotaRegistry(
            rate=self.config.quota_rate, burst=self.config.quota_burst
        )
        cache_kwargs = (
            {"root": self.config.cache_dir}
            if self.config.cache_dir is not None
            else {}
        )
        self.cache = ResultCache(**cache_kwargs)
        self.cache.enabled = self.config.use_cache
        self.pool = WorkerPool(jobs=self.config.jobs)
        self.telemetry = Telemetry()
        self.jobs: Dict[str, _Job] = {}
        self.started_at = time.time()
        #: result_key -> job_id of the in-flight leader for that key;
        #: duplicate submissions attach to it instead of queueing.
        self._inflight: Dict[str, str] = {}
        #: predecessor job_id -> jobs parked until it settles.
        self._waiting: Dict[str, List[_Job]] = {}
        #: Highest job sequence number ever issued; ids at or below it
        #: that are missing from the store were evicted (410, not 404).
        self._last_job_seq = 0
        self._ids = itertools.count(1)
        self._requests = itertools.count(1)
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def startup(self) -> None:
        """Create the queue and worker tasks on the running loop."""
        if self._queue is not None:
            return
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker_loop())
            for _ in range(self.config.jobs)
        ]

    async def shutdown(self) -> None:
        """Stop workers and release the pool (idempotent, like the pool)."""
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers = []
        self._queue = None
        self.pool.shutdown()

    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            job: _Job = await self._queue.get()
            group = [job]
            window = self.config.batch_window
            if window > 0.0:
                # Linger briefly to coalesce queued compatible jobs into
                # one fleet batch (the campaign planner's cohort rule,
                # applied to whatever the window drains).
                deadline = time.monotonic() + window
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    try:
                        group.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            try:
                for batch in self._group_batch(group):
                    if len(batch) == 1:
                        await self._execute(batch[0])
                    else:
                        await self._execute_batch(batch)
            finally:
                for _ in group:
                    self._queue.task_done()

    def _group_batch(self, group: List[_Job]) -> List[List[_Job]]:
        """Partition drained jobs into executable batches.

        Vec jobs sharing a resolved horizon form one batch (they were
        capability-checked at admission, so the horizon is the only
        remaining cohort key); scalar jobs execute one by one.  Order of
        first appearance is preserved.
        """
        from repro.experiments.plan import DEFAULT_VEC_HORIZON

        batches: List[List[_Job]] = []
        vec_batches: Dict[float, List[_Job]] = {}
        for job in group:
            request = job.request
            if request.backend != "vec":
                batches.append([job])
                continue
            horizon = (
                request.horizon
                if request.horizon is not None
                else DEFAULT_VEC_HORIZON
            )
            batch = vec_batches.get(horizon)
            if batch is None:
                batch = vec_batches[horizon] = []
                batches.append(batch)
            batch.append(job)
        return batches

    async def _execute(self, job: _Job) -> None:
        request = job.request
        job.status.state = "running"
        await job.emit("running")
        try:
            payload, timing = await asyncio.to_thread(
                self.pool.run_task,
                run_scenario_job,
                (
                    request.scenario_json,
                    request.system,
                    request.horizon,
                    request.faults_json,
                    request.backend,
                    self.config.collect,
                ),
                f"service:{job.status.result_key[:12]}",
                self.config.retry,
                self.config.chaos,
                self.telemetry,
            )
        except Exception as error:
            job.status.state = "failed"
            job.status.detail = repr(error)
            job.status.finished_at = time.time()
            self.telemetry.inc("service.jobs_failed")
            await job.emit("failed", error=repr(error))
            await self._settle(job)
            return
        job.status.attempts = timing.attempts
        self.cache.put(job.status.result_key, payload)
        job.result = JobResult(
            job_id=job.status.job_id,
            result_key=job.status.result_key,
            cached=False,
            payload=payload,
        )
        job.status.state = "done"
        job.status.finished_at = time.time()
        self.telemetry.inc("service.jobs_completed")
        self.telemetry.observe("service.job_seconds", timing.seconds)
        await job.emit(
            "done", attempts=timing.attempts, seconds=round(timing.seconds, 6)
        )
        await self._settle(job)

    async def _execute_batch(self, batch: List[_Job]) -> None:
        """Run window-coalesced vec jobs as ONE fleet batch.

        One :func:`run_fleet_batch` call on the pool; the per-job
        payloads it splits out are byte-identical to solo execution, so
        each job completes exactly as if it had run alone.
        """
        from repro.experiments.plan import CampaignJob, run_fleet_batch

        for job in batch:
            job.status.state = "running"
            await job.emit("running", batched=len(batch))
        campaign = tuple(
            CampaignJob.from_request(job.request) for job in batch
        )
        try:
            payloads, timing = await asyncio.to_thread(
                self.pool.run_task,
                run_fleet_batch,
                (campaign, self.config.collect),
                f"service:batch:{len(batch)}",
                self.config.retry,
                self.config.chaos,
                self.telemetry,
            )
        except Exception as error:
            for job in batch:
                job.status.state = "failed"
                job.status.detail = repr(error)
                job.status.finished_at = time.time()
                self.telemetry.inc("service.jobs_failed")
                await job.emit("failed", error=repr(error))
                await self._settle(job)
            return
        self.telemetry.inc("service.jobs_batched", len(batch))
        self.telemetry.observe("service.job_seconds", timing.seconds)
        for job, payload in zip(batch, payloads):
            job.status.attempts = timing.attempts
            self.cache.put(job.status.result_key, payload)
            job.result = JobResult(
                job_id=job.status.job_id,
                result_key=job.status.result_key,
                cached=False,
                payload=payload,
            )
            job.status.state = "done"
            job.status.finished_at = time.time()
            self.telemetry.inc("service.jobs_completed")
            await job.emit(
                "done", attempts=timing.attempts, batched=len(batch)
            )
            await self._settle(job)

    async def _settle(self, job: _Job) -> None:
        """Propagate a terminal job to its coalesced followers and
        release (or fail) anything parked on it."""
        if self._inflight.get(job.status.result_key) == job.status.job_id:
            del self._inflight[job.status.result_key]
        followers, job.followers = job.followers, []
        for follower in followers:
            follower.status.state = job.status.state
            follower.status.detail = job.status.detail
            follower.status.attempts = job.status.attempts
            follower.status.finished_at = job.status.finished_at
            if job.result is not None:
                follower.result = JobResult(
                    job_id=follower.status.job_id,
                    result_key=follower.status.result_key,
                    cached=False,
                    payload=job.result.payload,
                )
                await follower.emit("done", coalesced_with=job.status.job_id)
            else:
                await follower.emit(
                    "failed", error=job.status.detail,
                    coalesced_with=job.status.job_id,
                )
            await self._on_terminal(follower)
        await self._on_terminal(job)

    async def _on_terminal(self, job: _Job) -> None:
        """Wake the jobs parked on *job*: queue the ready, fail the
        blocked (transitively, via their own ``_settle``)."""
        dependents = self._waiting.pop(job.status.job_id, [])
        for dep in dependents:
            dep.waiting_on.discard(job.status.job_id)
            if dep.status.state != "queued":
                # Already failed through another predecessor.
                continue
            if job.status.state == "failed":
                dep.waiting_on.clear()
                dep.status.state = "failed"
                dep.status.detail = f"predecessor {job.status.job_id} failed"
                dep.status.finished_at = time.time()
                dep.status.waiting_on = ()
                self.telemetry.inc("service.jobs_blocked")
                await dep.emit(
                    "failed", error=dep.status.detail,
                    blocked_by=job.status.job_id,
                )
                await self._settle(dep)
                continue
            if dep.waiting_on:
                dep.status.waiting_on = tuple(sorted(dep.waiting_on))
                continue
            dep.status.waiting_on = ()
            assert self._queue is not None
            try:
                self._queue.put_nowait(dep)
            except asyncio.QueueFull:
                # Parked jobs never reserved queue capacity; degrade the
                # same way an over-full submit would, but per job.
                dep.status.state = "failed"
                dep.status.detail = "job queue full when dependencies released"
                dep.status.finished_at = time.time()
                self.telemetry.inc("service.rejected_queue")
                await dep.emit("failed", error=dep.status.detail)
                await self._settle(dep)
                continue
            self.telemetry.inc("service.jobs_released")
            await dep.emit("queued", released_by=job.status.job_id)

    def _was_issued(self, job_id: str) -> bool:
        """Whether an id missing from the store was once a real job.

        Ids are sequential (``job-1`` …), so any well-formed id at or
        below the highest issued sequence must have existed — and, being
        absent now, was evicted.  Keeps 410-vs-404 precise without an
        unbounded evicted-id set.
        """
        if not job_id.startswith("job-"):
            return False
        try:
            seq = int(job_id[4:])
        except ValueError:
            return False
        return 1 <= seq <= self._last_job_seq

    def _evict_expired(self, now: Optional[float] = None) -> int:
        """Drop terminal jobs older than the TTL; count what went.

        *now* is injectable so tests can advance time synthetically.
        Returns the number of evicted jobs (also counted on
        ``service.jobs_evicted``).
        """
        ttl = self.config.job_ttl
        if ttl is None:
            return 0
        if now is None:
            now = time.time()
        expired = [
            job_id
            for job_id, job in self.jobs.items()
            if job.status.state in ("done", "failed")
            and job.status.finished_at is not None
            and now - job.status.finished_at >= ttl
        ]
        for job_id in expired:
            del self.jobs[job_id]
        if expired:
            self.telemetry.inc("service.jobs_evicted", len(expired))
        return len(expired)

    # ------------------------------------------------------------------
    # ASGI surface
    # ------------------------------------------------------------------

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws etc.
            return
        await self.startup()  # lazily, for servers without lifespan
        started = time.perf_counter()
        request_id = self._request_id(scope)
        self.telemetry.inc("service.requests")
        try:
            await self._dispatch(scope, receive, send, request_id)
        finally:
            self.telemetry.observe(
                "service.request_seconds", time.perf_counter() - started
            )

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await self.startup()
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await self.shutdown()
                await send({"type": "lifespan.shutdown.complete"})
                return

    def _request_id(self, scope) -> str:
        for name, value in scope.get("headers") or ():
            if name == b"x-request-id":
                return value.decode("latin-1")[:64]
        return f"req-{next(self._requests)}"

    def _client_id(self, scope) -> str:
        for name, value in scope.get("headers") or ():
            if name == b"x-client-id":
                return value.decode("latin-1")[:64]
        client = scope.get("client")
        return client[0] if client else "anonymous"

    async def _dispatch(self, scope, receive, send, request_id: str) -> None:
        path = scope.get("path", "/")
        method = scope.get("method", "GET").upper()
        parts = [part for part in path.split("/") if part]
        self._evict_expired()

        if parts == ["v1", "health"] and method == "GET":
            await self._send_json(send, 200, self.health(), request_id)
            return
        if parts == ["v1", "jobs"] and method == "POST":
            await self._submit(scope, receive, send, request_id)
            return
        if len(parts) >= 3 and parts[:2] == ["v1", "jobs"]:
            job = self.jobs.get(parts[2])
            if job is None:
                if self._was_issued(parts[2]):
                    await self._send_json(
                        send,
                        410,
                        {
                            "error": f"job {parts[2]!r} evicted after "
                            f"job_ttl={self.config.job_ttl}s"
                        },
                        request_id,
                    )
                    return
                await self._send_json(
                    send, 404, {"error": f"unknown job {parts[2]!r}"}, request_id
                )
                return
            if len(parts) == 3 and method == "GET":
                await self._send_json(send, 200, job.status.to_dict(), request_id)
                return
            if parts[3:] == ["result"] and method == "GET":
                await self._result(job, send, request_id)
                return
            if parts[3:] == ["stream"] and method == "GET":
                await self._stream(job, send, request_id)
                return
        await self._send_json(
            send,
            405 if parts[:2] in (["v1", "jobs"], ["v1", "health"]) else 404,
            {"error": f"no route for {method} {path}"},
            request_id,
        )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """Liveness + capabilities (the JSON twin of ``repro info``)."""
        import repro

        try:
            from repro.vec import vec_capabilities

            vec: Any = vec_capabilities()
        except ImportError:  # pragma: no cover - numpy-less deployments
            vec = "unavailable (numpy not installed)"
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.status.state] = states.get(job.status.state, 0) + 1
        return {
            "status": "ok",
            "api_version": API_VERSION,
            "version": repro.__version__,
            "backends": {
                "scalar": "full simulation engine (all apps, faults, experiments)",
                "vec": vec,
            },
            "queue": {
                "depth": self._queue.qsize() if self._queue is not None else 0,
                "limit": self.config.queue_limit,
                "waiting": sum(
                    1 for job in self.jobs.values() if job.waiting_on
                ),
            },
            "pool": {"jobs": self.pool.jobs, "mode": self.pool.mode},
            "quota": self.quotas.snapshot(),
            "cache": self.cache.stats.as_dict(),
            "jobs": states,
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }

    async def _submit(self, scope, receive, send, request_id: str) -> None:
        allowed, retry_after = self.quotas.allow(self._client_id(scope))
        if not allowed:
            self.telemetry.inc("service.rejected_quota")
            await self._send_json(
                send,
                429,
                {"error": "quota exceeded", "retry_after": round(retry_after, 3)},
                request_id,
                extra_headers=[(b"retry-after", str(max(1, int(retry_after + 0.999))).encode())],
            )
            return

        body = await self._read_body(receive)
        try:
            payload = json.loads(body.decode("utf-8") or "null")
            request = JobRequest.from_payload(payload)
            key = request.result_key()
        except SpecError as error:
            self.telemetry.inc("service.rejected_invalid")
            await self._send_json(send, 400, {"error": str(error)}, request_id)
            return
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.telemetry.inc("service.rejected_invalid")
            await self._send_json(
                send, 400, {"error": f"body is not valid JSON: {error}"}, request_id
            )
            return

        # Dependency edges are validated at the edge like everything
        # else: every id in "after" must name a job the store still
        # knows (evicted ids get a distinct message).
        predecessors: List[_Job] = []
        for pred_id in request.after:
            pred = self.jobs.get(pred_id)
            if pred is None:
                hint = (
                    "evicted" if self._was_issued(pred_id) else "unknown"
                )
                self.telemetry.inc("service.rejected_invalid")
                await self._send_json(
                    send,
                    400,
                    {"error": f"'after' references {hint} job {pred_id!r}"},
                    request_id,
                )
                return
            predecessors.append(pred)

        seq = next(self._ids)
        self._last_job_seq = seq
        job_id = f"job-{seq}"
        status = JobStatus(
            job_id=job_id,
            result_key=key,
            submitted_at=time.time(),
        )
        job = _Job(request=request, status=status, changed=asyncio.Condition())
        cached = self.cache.get(key)
        if not (isinstance(cached, dict) and "summary" in cached):
            cached = None  # foreign/stale payload shapes count as misses
        if cached is not None:
            # Served entirely at the edge: the worker pool is untouched.
            status.state = "done"
            status.cached = True
            status.finished_at = status.submitted_at
            job.result = JobResult(
                job_id=job_id, result_key=key, cached=True, payload=cached
            )
            self.jobs[job_id] = job
            self.telemetry.inc("service.cache_hits")
            await job.emit("done", cached=True)
            await self._send_json(send, 200, status.to_dict(), request_id)
            return

        failed_pred = next(
            (p for p in predecessors if p.status.state == "failed"), None
        )
        if failed_pred is not None:
            status.state = "failed"
            status.detail = f"predecessor {failed_pred.status.job_id} failed"
            status.finished_at = status.submitted_at
            self.jobs[job_id] = job
            self.telemetry.inc("service.jobs_blocked")
            await job.emit(
                "failed", error=status.detail,
                blocked_by=failed_pred.status.job_id,
            )
            await self._send_json(send, 202, status.to_dict(), request_id)
            return

        pending_preds = [
            p for p in predecessors if p.status.state in ("queued", "running")
        ]
        if pending_preds:
            # Park: the job holds no queue slot and no worker until its
            # last outstanding predecessor settles.
            job.waiting_on = {p.status.job_id for p in pending_preds}
            status.waiting_on = tuple(sorted(job.waiting_on))
            for pred in pending_preds:
                self._waiting.setdefault(pred.status.job_id, []).append(job)
            self.jobs[job_id] = job
            self.telemetry.inc("service.jobs_waiting")
            await job.emit("waiting", on=sorted(job.waiting_on))
            await self._send_json(send, 202, status.to_dict(), request_id)
            return

        leader_id = self._inflight.get(key)
        leader = self.jobs.get(leader_id) if leader_id is not None else None
        if leader is not None and leader.status.state in ("queued", "running"):
            # Identical work is already in flight: attach to it instead
            # of queueing a duplicate.  The follower settles (result,
            # state, events) when the leader does.
            status.state = leader.status.state
            leader.followers.append(job)
            self.jobs[job_id] = job
            self.telemetry.inc("service.jobs_coalesced")
            await job.emit("coalesced", leader=leader.status.job_id)
            await self._send_json(send, 202, status.to_dict(), request_id)
            return

        assert self._queue is not None
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.telemetry.inc("service.rejected_queue")
            await self._send_json(
                send,
                503,
                {
                    "error": "job queue full",
                    "queue_limit": self.config.queue_limit,
                },
                request_id,
                extra_headers=[(b"retry-after", b"1")],
            )
            return
        self.jobs[job_id] = job
        self._inflight[key] = job_id
        self.telemetry.inc("service.jobs_queued")
        await job.emit("queued")
        await self._send_json(send, 202, status.to_dict(), request_id)

    async def _result(self, job: _Job, send, request_id: str) -> None:
        if job.status.state == "failed":
            await self._send_json(
                send,
                500,
                {"error": job.status.detail, "job_id": job.status.job_id},
                request_id,
            )
            return
        if job.result is None:
            await self._send_json(
                send,
                409,
                {
                    "error": f"job {job.status.job_id} is {job.status.state}",
                    "state": job.status.state,
                },
                request_id,
            )
            return
        await self._send_json(send, 200, job.result.to_dict(), request_id)

    async def _stream(self, job: _Job, send, request_id: str) -> None:
        """Progress + metrics as JSONL, tailing until the job settles."""
        await send(
            {
                "type": "http.response.start",
                "status": 200,
                "headers": [
                    (b"content-type", b"application/x-ndjson"),
                    (b"x-request-id", request_id.encode("latin-1")),
                ],
            }
        )
        sent = 0
        while True:
            async with job.changed:
                while sent >= len(job.events) and job.status.state not in (
                    "done",
                    "failed",
                ):
                    await job.changed.wait()
                fresh = job.events[sent:]
                sent = len(job.events)
                settled = job.status.state in ("done", "failed") and sent == len(
                    job.events
                )
            for record in fresh:
                await send(
                    {
                        "type": "http.response.body",
                        "body": (json.dumps(record, sort_keys=True) + "\n").encode(),
                        "more_body": True,
                    }
                )
            if settled:
                break
        # Terminal: append the job's metric records off the telemetry
        # plane (same JSONL schema as --metrics-out).
        tail = b""
        snapshot = (job.result.payload.get("telemetry") if job.result else None) or {}
        if snapshot:
            replay = Telemetry()
            replay.merge_snapshot(snapshot)
            lines = [
                json.dumps(record, sort_keys=True)
                for record in replay.metric_records(scope=job.status.job_id)
            ]
            if lines:
                tail = ("\n".join(lines) + "\n").encode()
        await send({"type": "http.response.body", "body": tail, "more_body": False})

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    async def _read_body(self, receive) -> bytes:
        chunks: List[bytes] = []
        while True:
            message = await receive()
            if message["type"] != "http.request":  # pragma: no cover
                break
            chunks.append(message.get("body", b""))
            if not message.get("more_body"):
                break
        return b"".join(chunks)

    async def _send_json(
        self,
        send,
        status: int,
        payload: Dict[str, Any],
        request_id: str,
        extra_headers: Optional[List[Tuple[bytes, bytes]]] = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        headers = [
            (b"content-type", b"application/json"),
            (b"content-length", str(len(body)).encode()),
            (b"x-request-id", request_id.encode("latin-1")),
        ]
        headers.extend(extra_headers or [])
        await send(
            {"type": "http.response.start", "status": status, "headers": headers}
        )
        await send({"type": "http.response.body", "body": body, "more_body": False})
