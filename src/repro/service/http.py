"""Zero-dependency HTTP/1.1 host for the ASGI app.

The service app (:mod:`repro.service.app`) is a standard ASGI-3
callable, so production deployments can hand it to any ASGI server.
This module is the stdlib fallback that makes ``repro serve`` work with
nothing installed: an ``asyncio.start_server`` loop that parses one
HTTP/1.1 request per connection, translates it into an ASGI scope, and
streams the app's response events back (``Connection: close`` framing,
which every stdlib client understands and which keeps the parser tiny).

:class:`BackgroundServer` runs the same stack on a daemon thread with
its own event loop — the shape the tests, the benchmark suite, and the
load generator's ``--self-host`` mode all use to get a real socket
without a subprocess.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.service.app import ServiceApp, ServiceConfig

_MAX_HEADER_BYTES = 65536
_MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, List[Tuple[bytes, bytes]], bytes]]:
    """Parse one request; ``None`` on a closed or hopeless connection."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, ConnectionError):
        return None
    if len(head) > _MAX_HEADER_BYTES:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) < 3:
        return None
    method, target = parts[0], parts[1]
    headers: List[Tuple[bytes, bytes]] = []
    length = 0
    for line in lines[1:]:
        if not line or ":" not in line:
            continue
        name, _, value = line.partition(":")
        name = name.strip().lower()
        value = value.strip()
        headers.append((name.encode("latin-1"), value.encode("latin-1")))
        if name == "content-length":
            try:
                length = int(value)
            except ValueError:
                return None
    if length < 0 or length > _MAX_BODY_BYTES:
        return None
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


async def _handle_connection(
    app: ServiceApp, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    try:
        request = await _read_request(reader)
        if request is None:
            return
        method, target, headers, body = request
        path, _, query = target.partition("?")
        peer = writer.get_extra_info("peername")
        scope: Dict[str, Any] = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method,
            "path": path,
            "raw_path": target.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": headers,
            "client": (peer[0], peer[1]) if peer else None,
            "server": None,
            "scheme": "http",
        }

        received = {"done": False}

        async def receive() -> Dict[str, Any]:
            if received["done"]:
                await asyncio.sleep(3600)  # ASGI contract: block after EOF
            received["done"] = True
            return {"type": "http.request", "body": body, "more_body": False}

        state = {"started": False}

        async def send(message: Dict[str, Any]) -> None:
            if message["type"] == "http.response.start":
                status = message["status"]
                reason = _REASONS.get(status, "Unknown")
                head_lines = [f"HTTP/1.1 {status} {reason}"]
                for name, value in message.get("headers") or ():
                    head_lines.append(
                        f"{name.decode('latin-1')}: {value.decode('latin-1')}"
                    )
                head_lines.append("connection: close")
                writer.write(
                    ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
                )
                state["started"] = True
            elif message["type"] == "http.response.body":
                writer.write(message.get("body", b""))
                await writer.drain()

        await app(scope, receive, send)
        if not state["started"]:  # app crashed before responding
            writer.write(
                b"HTTP/1.1 500 Internal Server Error\r\n"
                b"content-length: 0\r\nconnection: close\r\n\r\n"
            )
        await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except Exception:
            pass


async def serve(
    app: ServiceApp, host: str = "127.0.0.1", port: int = 0
) -> asyncio.base_events.Server:
    """Start serving *app*; returns the (already started) asyncio server."""
    await app.startup()

    async def handler(reader, writer):
        await _handle_connection(app, reader, writer)

    return await asyncio.start_server(handler, host=host, port=port)


def run_service(
    config: Optional[ServiceConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8787,
    ready=None,
) -> None:
    """Blocking entry point behind ``repro serve``.

    *ready* is an optional callable invoked with the bound port once the
    socket is listening (the CLI prints the URL; tests synchronise on it).
    """
    app = ServiceApp(config)

    async def main() -> None:
        server = await serve(app, host=host, port=port)
        bound = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready(bound)
        try:
            async with server:
                await server.serve_forever()
        finally:
            await app.shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass


class BackgroundServer:
    """A live service on a daemon thread (tests, benchmarks, load gen).

    Usage::

        with BackgroundServer(ServiceConfig(jobs=1)) as server:
            urllib.request.urlopen(server.url("/v1/health"))
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.host = host
        self.app = ServiceApp(config)
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            server = await serve(self.app, host=self.host, port=0)
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            try:
                async with server:
                    await self._stop.wait()
            finally:
                await self.app.shutdown()

        try:
            asyncio.run(main())
        finally:
            self._ready.set()  # never leave starters hanging on a crash

    def start(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self.port is None:
            raise RuntimeError("service failed to start")
        return self

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
