"""Load generation against a live service: N clients, pXX latency.

The north star is "heavy traffic", so serving performance is measured
like any other hot path here: a deterministic workload (K distinct
scenario specs cycled across N concurrent clients), wall-clock latency
per request, and a machine-readable snapshot (throughput, p50/p99,
cache-hit ratio) that joins the BENCH trajectory via
``benchmarks/test_bench_service.py`` and the ``service-smoke`` CI job.

Clients are threads driving :mod:`urllib.request` — the service under
test is the async side; the generator just needs honest concurrency and
stdlib-only portability.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


def percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile (0 for an empty sample set)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered) + 0.5) - 1))
    return ordered[rank]


def default_scenarios(distinct: int, seed: int = 0, event_count: int = 3) -> List[str]:
    """*distinct* small canonical scenario JSON documents to cycle."""
    from repro.apps import temp_alarm
    from repro.spec import canonical_json

    return [
        canonical_json(temp_alarm.scenario(seed=seed + i, event_count=event_count))
        for i in range(distinct)
    ]


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    requests: int = 0
    completed: int = 0
    errors: int = 0
    rejected_quota: int = 0
    rejected_queue: int = 0
    cache_hits: int = 0
    elapsed_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.completed / self.elapsed_seconds

    @property
    def hit_ratio(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.cache_hits / self.completed

    def snapshot(self) -> Dict[str, Any]:
        """The JSON record ``load_gen.py --json`` writes (BENCH-shaped)."""
        return {
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "rejected_quota": self.rejected_quota,
            "rejected_queue": self.rejected_queue,
            "cache_hits": self.cache_hits,
            "hit_ratio": round(self.hit_ratio, 4),
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "throughput_rps": round(self.throughput, 2),
            "latency_seconds": {
                "p50": round(percentile(self.latencies, 0.50), 5),
                "p90": round(percentile(self.latencies, 0.90), 5),
                "p99": round(percentile(self.latencies, 0.99), 5),
                "max": round(max(self.latencies), 5) if self.latencies else 0.0,
            },
        }

    def format(self) -> str:
        snap = self.snapshot()
        lat = snap["latency_seconds"]
        return (
            f"requests    {snap['requests']} "
            f"(completed {snap['completed']}, errors {snap['errors']}, "
            f"429s {snap['rejected_quota']}, 503s {snap['rejected_queue']})\n"
            f"throughput  {snap['throughput_rps']} req/s over "
            f"{snap['elapsed_seconds']}s\n"
            f"cache       {snap['cache_hits']} hits "
            f"(ratio {snap['hit_ratio']})\n"
            f"latency     p50 {lat['p50']}s  p90 {lat['p90']}s  "
            f"p99 {lat['p99']}s  max {lat['max']}s\n"
        )


def _post_json(url: str, payload: Dict[str, Any], client_id: str, timeout: float):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url,
        data=body,
        headers={"content-type": "application/json", "x-client-id": client_id},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode())


def _get_json(url: str, client_id: str, timeout: float):
    request = urllib.request.Request(url, headers={"x-client-id": client_id})
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read().decode())


def _drive_client(
    base_url: str,
    client_id: str,
    scenarios: List[str],
    requests: int,
    report: LoadReport,
    lock: threading.Lock,
    timeout: float,
    poll_interval: float,
) -> None:
    for index in range(requests):
        payload = {"scenario": json.loads(scenarios[index % len(scenarios)])}
        started = time.perf_counter()
        try:
            status, data = _post_json(
                f"{base_url}/v1/jobs", payload, client_id, timeout
            )
        except urllib.error.HTTPError as error:
            detail = error.code
            with lock:
                report.requests += 1
                if detail == 429:
                    report.rejected_quota += 1
                elif detail == 503:
                    report.rejected_queue += 1
                else:
                    report.errors += 1
            continue
        except (urllib.error.URLError, OSError):
            with lock:
                report.requests += 1
                report.errors += 1
            continue

        cached = bool(data.get("cached"))
        job_id = data.get("job_id")
        state = data.get("state")
        deadline = time.monotonic() + timeout
        while state not in ("done", "failed") and time.monotonic() < deadline:
            time.sleep(poll_interval)
            try:
                _, data = _get_json(
                    f"{base_url}/v1/jobs/{job_id}", client_id, timeout
                )
            except (urllib.error.URLError, OSError):
                break
            state = data.get("state")
        latency = time.perf_counter() - started
        with lock:
            report.requests += 1
            if state == "done":
                report.completed += 1
                report.latencies.append(latency)
                if cached:
                    report.cache_hits += 1
            else:
                report.errors += 1


def run_load(
    base_url: str,
    clients: int = 4,
    requests_per_client: int = 8,
    distinct: int = 2,
    seed: int = 0,
    scenarios: Optional[List[str]] = None,
    timeout: float = 60.0,
    poll_interval: float = 0.02,
) -> LoadReport:
    """Drive *clients* concurrent clients and aggregate a report.

    Every client submits ``requests_per_client`` jobs, cycling through
    *distinct* scenario specs (so repeat submissions exercise the result
    cache), polling each job to completion.  Clients carry distinct
    ``x-client-id`` headers so quota behaviour is per-client, exactly as
    production traffic would be.
    """
    base_url = base_url.rstrip("/")
    scenarios = (
        scenarios if scenarios is not None else default_scenarios(distinct, seed)
    )
    report = LoadReport()
    lock = threading.Lock()
    started = time.perf_counter()
    threads = [
        threading.Thread(
            target=_drive_client,
            args=(
                base_url,
                f"client-{index}",
                scenarios,
                requests_per_client,
                report,
                lock,
                timeout,
                poll_interval,
            ),
        )
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_seconds = time.perf_counter() - started
    return report
