"""Job wire format: validated requests, status, and results.

A :class:`JobRequest` is the service's unit of admission: scenario,
fault, and environment-trace references validated **at the edge**
(submit returns 400 before any queue or pool is touched — a missing or
corrupt trace file included), canonicalised with trace references
pinned by content digest, and hashed into the same
spec/fault/trace/backend-aware result key the experiment cache uses —
so a repeat submission is a cache hit served without running anything.

All three types are plain frozen/slotted dataclasses with ``to_dict``
renderings, promoted into the frozen v1 facade (``repro.JobRequest`` …)
because they *are* the public API of simulation-as-a-service.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import SpecError

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class JobRequest:
    """One validated, canonicalised submission.

    Attributes hold canonical JSON strings (not live objects) so a
    request is trivially picklable, hashable, and byte-stable — the
    properties the result key and the process pool both rely on.
    """

    scenario_json: str
    system: Optional[str] = None
    horizon: Optional[float] = None
    faults_json: Optional[str] = None
    backend: str = "scalar"
    #: Job ids this submission waits for.  Scheduling metadata only: it
    #: joins neither :meth:`result_key` nor the cache, so a dependent
    #: job still hits the cache of an identical independent one.
    after: Tuple[str, ...] = ()

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobRequest":
        """Validate a submit body into a request (raises ``SpecError``).

        The body is either a bare scenario document or an envelope::

            {"scenario": {...}, "system": "CB-P", "horizon": 600,
             "faults": {...}, "backend": "scalar",
             "after": ["<job id>", ...]}
        """
        from repro.core.builder import SystemKind
        from repro.spec import (
            canonical_json,
            load_scenario,
            resolve_scenario_traces,
        )

        if not isinstance(payload, Mapping):
            raise SpecError("job payload must be a JSON object")
        if "scenario" in payload:
            envelope = dict(payload)
            scenario_data = envelope.pop("scenario")
        else:
            envelope = {}
            scenario_data = dict(payload)
        unknown = set(envelope) - {"system", "horizon", "faults", "backend", "after"}
        if unknown:
            raise SpecError(
                f"unknown job field(s) {sorted(unknown)}; allowed: "
                f"scenario, system, horizon, faults, backend, after"
            )
        after_data = envelope.get("after", ())
        if (
            isinstance(after_data, str)
            or not isinstance(after_data, (list, tuple))
            or not all(isinstance(item, str) and item for item in after_data)
        ):
            raise SpecError(
                f"'after' must be a list of job id strings, got {after_data!r}"
            )
        if not isinstance(scenario_data, Mapping):
            raise SpecError("'scenario' must be a JSON object")
        scenario = load_scenario(canonical_json(dict(scenario_data)))
        # Resolve trace references at the edge: every replay-trace file
        # the scenario points at is opened, checksum-verified in full,
        # and pinned by content digest here — a missing or corrupt trace
        # is a 400 (TraceFormatError is a SpecError) before any queue or
        # pool is touched, and the pinned hash makes the result key's
        # trace digest a free lookup downstream.
        scenario = resolve_scenario_traces(scenario)

        system = envelope.get("system")
        if system is not None:
            system = SystemKind.from_name(system).value

        horizon = envelope.get("horizon")
        if horizon is not None:
            if not isinstance(horizon, (int, float)) or isinstance(horizon, bool):
                raise SpecError(f"horizon must be a number, got {horizon!r}")
            horizon = float(horizon)
            if not math.isfinite(horizon) or horizon <= 0.0:
                raise SpecError(f"horizon must be finite and > 0, got {horizon}")

        faults_json = None
        faults_data = envelope.get("faults")
        if faults_data is not None:
            from repro.faults import dump_fault_schedule
            from repro.faults.model import FaultScheduleSpec

            if not isinstance(faults_data, Mapping):
                raise SpecError("'faults' must be a JSON object")
            schedule = FaultScheduleSpec.from_dict(faults_data)
            faults_json = dump_fault_schedule(schedule, pretty=False)

        backend = envelope.get("backend", "scalar")
        from repro.service.runner import RUN_BACKENDS

        if backend not in RUN_BACKENDS:
            raise SpecError(
                f"unknown backend {backend!r}; choose from {list(RUN_BACKENDS)}"
            )
        if backend == "vec":
            from repro.vec import ensure_supported

            ensure_supported(
                scenario,
                None if faults_json is None else _parse_schedule(faults_json),
            )

        return cls(
            scenario_json=canonical_json(scenario),
            system=system,
            horizon=horizon,
            faults_json=faults_json,
            backend=backend,
            after=tuple(after_data),
        )

    # -- hashing --------------------------------------------------------

    def spec_hash(self) -> str:
        from repro.spec import load_scenario, spec_hash

        return spec_hash(load_scenario(self.scenario_json))

    def fault_hash(self) -> Optional[str]:
        if self.faults_json is None:
            return None
        from repro.faults import fault_schedule_hash

        return fault_schedule_hash(_parse_schedule(self.faults_json))

    def result_key(self) -> str:
        """The spec/fault/backend-aware cache key for this request.

        Delegates to :func:`repro.experiments.plan.job_result_key` — one
        key function shared by HTTP submissions and batched campaign
        execution, so a job keys identically however it is scheduled.
        Keys live in the same content-keyed store as experiment results
        and invalidate on any simulator source change.
        """
        from repro.experiments.plan import CampaignJob, job_result_key

        return job_result_key(CampaignJob.from_request(self))

    def to_dict(self) -> Dict[str, Any]:
        import json

        data: Dict[str, Any] = {"scenario": json.loads(self.scenario_json)}
        if self.system is not None:
            data["system"] = self.system
        if self.horizon is not None:
            data["horizon"] = self.horizon
        if self.faults_json is not None:
            data["faults"] = json.loads(self.faults_json)
        if self.backend != "scalar":
            data["backend"] = self.backend
        if self.after:
            data["after"] = list(self.after)
        return data


def _parse_schedule(faults_json: str):
    from repro.faults import load_fault_schedule

    return load_fault_schedule(faults_json)


@dataclass
class JobStatus:
    """Mutable lifecycle record the status endpoint serves."""

    job_id: str
    state: str = "queued"
    cached: bool = False
    attempts: int = 0
    detail: str = ""
    result_key: str = ""
    submitted_at: float = 0.0
    finished_at: Optional[float] = None
    #: Predecessor job ids this job is parked on (empty once released).
    #: A parked job reads as "queued" — the v1 state set is frozen — and
    #: this field is the additive signal that it is waiting, not racing.
    waiting_on: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "job_id": self.job_id,
            "state": self.state,
            "cached": self.cached,
            "attempts": self.attempts,
            "result_key": self.result_key,
            "submitted_at": self.submitted_at,
        }
        if self.detail:
            data["detail"] = self.detail
        if self.finished_at is not None:
            data["finished_at"] = self.finished_at
        if self.waiting_on:
            data["waiting_on"] = list(self.waiting_on)
        return data


@dataclass
class JobResult:
    """A completed job's payload, as served by ``…/result``."""

    job_id: str
    result_key: str
    cached: bool
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def summary(self) -> str:
        return str(self.payload.get("summary", ""))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "result_key": self.result_key,
            "cached": self.cached,
            "result": self.payload,
        }
