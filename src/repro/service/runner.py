"""The one scenario-execution path shared by the CLI and the service.

``repro run --spec`` and an HTTP-submitted job must produce
byte-identical results for the same (scenario, faults, system, backend)
— that is the service's core correctness contract, and the way to keep
it is to have exactly one implementation.  :func:`run_scenario_job` is
that implementation: a pure, module-level (hence picklable) function of
canonical JSON strings, so the same bytes cross a process-pool boundary
for the service and run in-process for the CLI, and both sides replay
the identical simulation.

The returned payload is plain data (summary text, trace dict, counters,
optional telemetry snapshot): JSON-serialisable for the HTTP result
endpoint and picklable for the result cache.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Backends a single-scenario run understands.  The vec backend runs a
#: capability-checked scenario as a fleet batch of one (byte-identical
#: to the same job batched into a campaign); scenarios outside the vec
#: feature matrix are rejected identically by both entry points
#: (capability error, never silent fallback).
RUN_BACKENDS = ("scalar", "vec")


def format_run_summary(instance, kind, horizon: float, trace) -> str:
    """The trace summary ``repro run``/``run-app`` print, as one string.

    Byte-for-byte the service's job summary: the differential tests
    compare this text across the CLI and HTTP paths.
    """
    lines = [f"{instance.name} on {kind.value}: {horizon:.0f} s simulated"]
    for counter in sorted(trace.counters):
        lines.append(f"  {counter:24s} {trace.counters[counter]}")
    lines.append(f"  {'samples':24s} {len(trace.samples)}")
    lines.append(f"  {'packets':24s} {len(trace.packets)}")
    reported = trace.reported_event_ids()
    lines.append(
        f"  {'events reported':24s} {len(reported)} / {len(instance.schedule)}"
    )
    return "\n".join(lines) + "\n"


def default_horizon(instance) -> float:
    """The horizon a run gets when the caller names none."""
    return instance.schedule.horizon + 60.0


def run_scenario_job(
    scenario_json: str,
    system: Optional[str] = None,
    horizon: Optional[float] = None,
    faults_json: Optional[str] = None,
    backend: str = "scalar",
    collect: bool = False,
) -> Dict[str, Any]:
    """Execute one scenario and return its result as plain data.

    Args:
        scenario_json: canonical :class:`~repro.spec.ScenarioSpec` JSON.
        system: optional system-kind override (``Pwr``/``Fixed``/...).
        horizon: simulated seconds (default: schedule + 60, matching the
            CLI).
        faults_json: optional canonical fault schedule JSON
            (:mod:`repro.faults`) applied before the run.
        backend: ``"scalar"`` runs the full engine; ``"vec"`` runs the
            scenario through :func:`repro.experiments.plan.run_fleet_batch`
            as a batch of one (capability-checked; unsupported scenarios
            raise the same error the CLI prints).
        collect: also run inside a fresh telemetry scope and attach the
            snapshot (the service streams it as JSONL).

    Returns:
        ``{"summary", "horizon", "system", "scenario", "counters",
        "trace", "telemetry"}`` — everything JSON-serialisable.

    Raises:
        SpecError: invalid scenario/fault JSON or an unroutable backend.
    """
    import contextlib

    from repro.core.builder import SystemKind
    from repro.errors import SpecError
    from repro.sim.export import trace_to_dict
    from repro.spec import build_scenario_app, load_scenario

    if backend not in RUN_BACKENDS:
        raise SpecError(
            f"unknown backend {backend!r}; choose from {list(RUN_BACKENDS)}"
        )
    scenario = load_scenario(scenario_json)
    schedule = None
    if faults_json is not None:
        from repro.faults import load_fault_schedule

        schedule = load_fault_schedule(faults_json)
    if backend == "vec":
        from repro.experiments.plan import CampaignJob, run_fleet_batch
        from repro.vec import ensure_supported

        # ensure_supported names every capability reason (workload,
        # traces, faults) so the CLI and the service reject identically.
        # A supported job runs as a fleet batch of one — byte-identical
        # to the same job coalesced into a larger campaign batch.
        ensure_supported(scenario, schedule)
        job = CampaignJob(
            label=scenario.name,
            scenario_json=scenario_json,
            system=SystemKind.from_name(system).value if system is not None else None,
            horizon=horizon,
            faults_json=faults_json,
            backend="vec",
        )
        return run_fleet_batch((job,), collect=collect)[0]

    kind = SystemKind.from_name(system if system is not None else scenario.system)

    telemetry = None
    scope = contextlib.nullcontext()
    if collect:
        from repro.observability.telemetry import Telemetry, telemetry_scope

        telemetry = Telemetry()
        scope = telemetry_scope(telemetry)
    with scope:
        instance = build_scenario_app(scenario, kind=kind)
        if schedule is not None:
            from repro.faults import apply_faults

            apply_faults(instance, schedule, telemetry=telemetry)
        run_horizon = horizon if horizon is not None else default_horizon(instance)
        trace = instance.run(run_horizon)

    return {
        "summary": format_run_summary(instance, kind, run_horizon, trace),
        "horizon": run_horizon,
        "system": kind.value,
        "scenario": scenario.name,
        "counters": dict(trace.counters),
        "trace": trace_to_dict(trace),
        "telemetry": telemetry.snapshot() if telemetry is not None else None,
    }
