"""Capybara: a reconfigurable energy storage architecture for
energy-harvesting devices — full-system simulation reproduction of
Colin, Ruppel & Lucia (ASPLOS 2018).

The public API is organised in layers:

* :mod:`repro.energy` — circuit-level substrate: capacitors, banks,
  harvesters, boosters, switches, and the reconfigurable reservoir.
* :mod:`repro.device` — board-level hardware: MCUs, sensors, radios.
* :mod:`repro.kernel` — the intermittent-computing runtime: task DSL,
  non-volatile memory, Capybara annotations, executors.
* :mod:`repro.core` — the assembled contribution: energy modes, the
  power system, provisioning, allocation, and system builders.
* :mod:`repro.apps` — the paper's evaluation applications and rigs.
* :mod:`repro.experiments` — one module per evaluation figure.

Quickstart::

    from repro.apps import build_temp_alarm
    from repro.core import SystemKind

    app = build_temp_alarm(SystemKind.CAPY_P, seed=1)
    trace = app.run(horizon=600.0)
    print(len(trace.packets), "alarm packets")
"""

from repro.core import (
    CapybaraPowerSystem,
    EnergyMode,
    ModeRegistry,
    SystemKind,
    build_capybara_system,
    build_fixed_system,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "EnergyMode",
    "ModeRegistry",
    "CapybaraPowerSystem",
    "SystemKind",
    "build_capybara_system",
    "build_fixed_system",
    "__version__",
]
