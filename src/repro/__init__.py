"""Capybara: a reconfigurable energy storage architecture for
energy-harvesting devices — full-system simulation reproduction of
Colin, Ruppel & Lucia (ASPLOS 2018).

The curated public API lives at this top level:

* :class:`PowerSystem` / :class:`SystemBuilder` / :class:`SystemKind` —
  assemble the paper's power systems.
* :func:`run_experiment` / :func:`list_experiments` — the registered
  paper figures and studies.
* :class:`ScenarioSpec` / :func:`load_scenario` / :func:`dump_scenario`
  / :func:`build_scenario_app` / :func:`build_system` — declarative,
  versioned system descriptions (:mod:`repro.spec`): one JSON document
  describes a platform + workload and drives the builder, the result
  cache, parallel workers, and the CLI.
* :class:`FleetState` / :class:`FleetKernel` / :func:`build_fleet` /
  :func:`vec_capabilities` — the vectorized fleet backend
  (:mod:`repro.vec`): thousands of devices as struct-of-arrays NumPy
  state advanced in lockstep, for grid-shaped experiments
  (``--backend vec``).
* :class:`ReplayTrace` / :class:`TraceReader` / :class:`TraceWriter` /
  :func:`record_trace` — recorded environment traces
  (:mod:`repro.traces`): a versioned, chunk-checksummed on-disk format
  for sampled harvesting environments, replayable bit-identically
  through both backends and pinned into scenarios by content digest.
* :class:`Telemetry` / :func:`telemetry_scope` — opt-in structured
  metrics and tracing (:mod:`repro.observability`).
* :class:`FaultScheduleSpec` / :func:`load_fault_schedule` /
  :func:`apply_faults` — deterministic fault injection
  (:mod:`repro.faults`): declarative, hashable schedules of harvester
  blackouts, brown-outs, component degradation, and campaign worker
  chaos, replayable bit-identically for a fixed seed.
* :class:`JobRequest` / :class:`JobStatus` / :class:`JobResult` — the
  job-service wire format (:mod:`repro.service`): submit canonical
  scenario JSON to a long-lived ``repro serve`` instance and get back
  results bit-identical to a local ``repro run --spec``.
* :mod:`repro.units` — unit helpers (``micro_farads``, ``milli_watts``,
  ...), re-exported here for convenience.

Deeper layers remain importable directly and are stable:

* :mod:`repro.energy` — circuit-level substrate: capacitors, banks,
  harvesters, boosters, switches, and the reconfigurable reservoir.
* :mod:`repro.device` — board-level hardware: MCUs, sensors, radios.
* :mod:`repro.kernel` — the intermittent-computing runtime: task DSL,
  non-volatile memory, Capybara annotations, executors.
* :mod:`repro.core` — the assembled contribution: energy modes, the
  power system, provisioning, allocation, and system builders.
* :mod:`repro.apps` — the paper's evaluation applications and rigs.
* :mod:`repro.experiments` — the experiment registry and harnesses.

Quickstart::

    from repro.apps import build_temp_alarm
    from repro import SystemKind, Telemetry, telemetry_scope

    with telemetry_scope() as tel:
        app = build_temp_alarm(SystemKind.CAPY_P, seed=1)
        trace = app.run(horizon=600.0)
    print(len(trace.packets), "alarm packets")
    print(tel.metrics.counter("kernel.reboots").value, "reboots")
"""

from repro.core import EnergyMode, ModeRegistry, SystemKind
from repro.core.builder import SystemBuilder
from repro.core.powersystem import PowerSystem
from repro.errors import ReproError
from repro.observability import (
    NULL_TELEMETRY,
    Telemetry,
    current_telemetry,
    telemetry_scope,
)
from repro.units import (
    capacitor_energy,
    farads,
    joules,
    micro_amps,
    micro_farads,
    micro_watts,
    milli_amps,
    milli_farads,
    milli_joules,
    milli_volts,
    milli_watts,
    seconds,
    volts,
    voltage_for_energy,
    watts,
)

__version__ = "2.3.0"

#: Generation of the frozen public facade.  Everything in ``__all__`` is
#: covered by this contract; the service health endpoint reports it so
#: remote clients can verify compatibility before submitting work.
__api_version__ = "v1"

__all__ = [
    "__version__",
    "__api_version__",
    # systems
    "PowerSystem",
    "SystemBuilder",
    "SystemKind",
    "EnergyMode",
    "ModeRegistry",
    # experiments (lazily resolved)
    "run_experiment",
    "list_experiments",
    # declarative specs (lazily resolved)
    "ScenarioSpec",
    "PlatformSpecV1",
    "load_scenario",
    "dump_scenario",
    "spec_hash",
    "build_scenario_app",
    "build_system",
    # vectorized fleet backend (lazily resolved)
    "FleetState",
    "FleetKernel",
    "build_fleet",
    "vec_capabilities",
    # recorded environment traces (lazily resolved)
    "ReplayTrace",
    "TraceReader",
    "TraceWriter",
    "record_trace",
    # observability
    "Telemetry",
    "telemetry_scope",
    "current_telemetry",
    "NULL_TELEMETRY",
    # fault injection (lazily resolved)
    "FaultScheduleSpec",
    "FaultSpec",
    "load_fault_schedule",
    "dump_fault_schedule",
    "fault_schedule_hash",
    "apply_faults",
    # job service wire format (lazily resolved)
    "JobRequest",
    "JobStatus",
    "JobResult",
    # errors
    "ReproError",
    # unit helpers
    "seconds",
    "farads",
    "milli_farads",
    "micro_farads",
    "volts",
    "milli_volts",
    "milli_amps",
    "micro_amps",
    "joules",
    "milli_joules",
    "watts",
    "milli_watts",
    "micro_watts",
    "capacitor_energy",
    "voltage_for_energy",
]

def __getattr__(name: str):
    # Experiment entry points import lazily: the experiments package
    # pulls in the whole harness stack, which `import repro` should not.
    if name in ("run_experiment", "list_experiments"):
        from repro.experiments import registry

        return getattr(registry, name)
    # Spec layer imports lazily too: `import repro` stays cheap, and the
    # energy/core modules it would pull in are only loaded on demand.
    if name in (
        "ScenarioSpec",
        "PlatformSpecV1",
        "load_scenario",
        "dump_scenario",
        "spec_hash",
        "build_scenario_app",
    ):
        from repro import spec as _spec

        return getattr(_spec, name)
    if name == "build_system":
        from repro.core.builder import build_system

        return build_system
    # Vectorized fleet backend: NumPy and the spec layer load on demand.
    if name in ("FleetState", "FleetKernel", "build_fleet", "vec_capabilities"):
        from repro import vec as _vec

        return getattr(_vec, name)
    # Recorded environment traces: kept off the import critical path for
    # the same reason.
    if name in ("ReplayTrace", "TraceReader", "TraceWriter", "record_trace"):
        from repro import traces as _traces

        return getattr(_traces, name)
    # Fault layer imports lazily for the same reason as the spec layer.
    if name in (
        "FaultScheduleSpec",
        "FaultSpec",
        "load_fault_schedule",
        "dump_fault_schedule",
        "fault_schedule_hash",
        "apply_faults",
    ):
        from repro import faults as _faults

        return getattr(_faults, name)
    # Service wire format: pulling in repro.service (asyncio, the worker
    # pool) stays off the `import repro` critical path.
    if name in ("JobRequest", "JobStatus", "JobResult"):
        from repro.service import jobs as _jobs

        return getattr(_jobs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
