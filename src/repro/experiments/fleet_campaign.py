"""Fleet campaign: the batching planner as a first-class experiment.

The paper's fleet framing (many small devices under one harvesting
environment) maps onto the campaign planner directly: one
:class:`~repro.experiments.plan.CampaignJob` per (power scale, system)
grid point, planned into cohorts and executed through
:func:`~repro.experiments.plan.execute_plan`.  The figure of merit is
the same duty-cycle availability the vec power sweep reports — Fixed's
hardwired union bank starves at low harvest while the reactive small
(sense) mode degrades gracefully.

The ``--backend`` flag selects the execution *route*, not the model:
``vec`` runs the plan's cohorts as full batches, ``scalar`` forces
every job into its own batch of one (``shard_size=1``).  Both routes
split out bit-identical per-job payloads, so the printed table is
byte-for-byte the same — which is exactly what makes this experiment
the planner's end-to-end differential check.
"""

from __future__ import annotations

from typing import List

from repro.experiments.runner import ExperimentResult, print_result

#: Simulated seconds per campaign job (enough for every grid point to
#: reach its steady duty cycle; see the probe in docs/performance.md).
HORIZON = 300.0
#: Fixed timestep shared by every job — the cohort contract.
DT = 0.05
#: Harvest scale ladder endpoints (geometric, like the power sweep).
SCALE_MIN = 0.25
SCALE_MAX = 4.0


def _power_scales(scale: float) -> List[float]:
    """A geometric harvest-scale ladder, densified by *scale*."""
    count = max(2, int(round(5 * scale)))
    if count == 1:
        return [SCALE_MIN]
    ratio = SCALE_MAX / SCALE_MIN
    return [
        round(SCALE_MIN * ratio ** (i / (count - 1)), 6) for i in range(count)
    ]


def declared_scenarios(seed: int, scale: float):
    """The declarative scenarios behind the campaign (registry hook:
    their canonical hash joins the experiment's cache key)."""
    from repro.apps import temp_alarm

    return [temp_alarm.scenario(seed=seed)]


def build_jobs(seed: int = 0, scale: float = 1.0):
    """The campaign: one vec job per (harvest scale, system) grid point."""
    from repro.apps.temp_alarm import MODE_SENSE, scenario
    from repro.experiments.plan import CampaignJob
    from repro.spec import canonical_json
    from repro.vec import FIXED_BANK_MODE

    scenario_json = canonical_json(scenario(seed=seed))
    jobs = []
    for power_scale in _power_scales(scale):
        for system, mode in (("Fixed", FIXED_BANK_MODE), ("CB-P", MODE_SENSE)):
            jobs.append(
                CampaignJob(
                    label=f"{power_scale:g}x/{system}",
                    scenario_json=scenario_json,
                    system=system,
                    horizon=HORIZON,
                    backend="vec",
                    dt=DT,
                    mode=mode,
                    power_scale=power_scale,
                )
            )
    return jobs


def main(seed: int = 0, scale: float = 1.0, backend: str = "scalar") -> None:
    """Plan and execute the fleet campaign; print the availability table."""
    from repro.experiments.plan import execute_plan, plan_campaign

    jobs = build_jobs(seed=seed, scale=scale)
    plan = plan_campaign(jobs)
    executed = execute_plan(
        plan,
        jobs=1,
        collect=False,
        # vec: cohorts run as full batches; scalar: every job is a batch
        # of one.  Payloads are bit-identical either way.
        shard_size=None if backend == "vec" else 1,
    )

    result = ExperimentResult(
        experiment="fleet",
        columns=["HarvestScale", "System", "OnFraction", "Brownouts"],
    )
    for job, payload in zip(jobs, executed.results):
        fleet = payload["fleet"]
        result.rows.append(
            [
                f"{job.power_scale:g}x",
                job.system,
                f"{fleet['on_seconds'] / HORIZON:.3f}",
                str(fleet["brownouts"]),
            ]
        )
    stats = plan.stats()
    result.notes.append(
        f"campaign: {stats['jobs']} jobs, {stats['cohorts']} cohort(s), "
        f"batched fraction {stats['batched_fraction']:.2f} over "
        f"{HORIZON:.0f}s at dt={DT}s"
    )
    result.notes.append(
        "duty-cycle availability per grid point; identical output on "
        "either --backend (route differs, bits do not)"
    )
    print_result(result)
