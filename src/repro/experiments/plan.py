"""Campaign batching planner: many jobs, few kernel launches.

A campaign — ``run_all``, a service queue, a parameter sweep — is a
list of independent jobs.  Dispatching them one scalar run at a time
pays the per-device Python overhead the vectorized backend
(:mod:`repro.vec`) exists to remove, so this module plans a campaign
the way the fleet kernel wants to execute it:

1. :func:`plan_campaign` partitions the jobs into **vec-compatible
   cohorts** (same fixed-timestep contract: one resolved ``(horizon,
   dt, trace)`` triple — *trace* being the scenario's recorded-trace
   content digest, empty for static environments — capability-checked
   through the same :func:`~repro.vec.batch.check_scenario` rules as
   ``build_fleet``) and **scalar stragglers** (jobs that requested the
   scalar engine, or vec jobs the capability rules reject — each
   downgrade records its reason, never silently).
2. :func:`execute_plan` runs each cohort as one or more
   :class:`~repro.vec.kernel.FleetKernel` batches sharded across the
   worker pool, runs stragglers through the shared scalar runner, and
   splits batch outputs back into **per-job payloads**.
3. :func:`job_result_key` gives every job the same content-addressed
   cache key whether it executes solo, in a batch, or over HTTP — the
   byte-identity contract the differential tests pin.

Batch composition is invisible by construction: every kernel operation
is elementwise, and the one transcendental (the RC leakage factor) is
pre-computed per element by :func:`~repro.vec.kernel.leak_decay`, so a
batch of N jobs and N batches of one produce bit-identical payloads.
Cache hits, ``--inject`` worker chaos, and ``on_error="capture"``
semantics ride the same :class:`~repro.experiments.parallel` machinery
campaigns already use.

Telemetry (``plan.*``): job/cohort/straggler counts, the batched
fraction, per-reason straggler counters, cache hits, and shard count.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.observability.telemetry import Telemetry, resolve_telemetry

__all__ = [
    "DEFAULT_VEC_DT",
    "DEFAULT_VEC_HORIZON",
    "CampaignJob",
    "Cohort",
    "Straggler",
    "CampaignPlan",
    "PlanResult",
    "DagPlanResult",
    "execute_campaign_dag",
    "job_result_key",
    "format_fleet_summary",
    "run_fleet_batch",
    "plan_campaign",
    "execute_plan",
]

#: Fixed-timestep resolution every vec campaign job shares by default.
DEFAULT_VEC_DT = 0.05
#: Horizon a vec job gets when the caller names none (the fleet
#: experiments' standard duty-cycle window; scalar jobs keep their
#: schedule-derived default).
DEFAULT_VEC_HORIZON = 900.0


@dataclass(frozen=True)
class CampaignJob:
    """One campaign job: canonical JSON in, one result payload out.

    Everything is a plain string/float so a job pickles across the
    worker pool unchanged.  The first five fields mirror
    :class:`~repro.service.jobs.JobRequest` exactly; the vec-only knobs
    (``dt``/``mode``/``power_scale``/``load_power``/``initial_voltage``)
    join the cache key only at non-default values, so a service-shaped
    job keys byte-identically to its :meth:`JobRequest.result_key`.
    """

    label: str
    scenario_json: str
    system: Optional[str] = None
    horizon: Optional[float] = None
    faults_json: Optional[str] = None
    backend: str = "scalar"
    dt: float = DEFAULT_VEC_DT
    mode: Optional[str] = None
    power_scale: float = 1.0
    load_power: Optional[float] = None
    initial_voltage: float = 0.0
    #: Labels of jobs that must complete before this one dispatches.
    #: Scheduling metadata only — it never joins :func:`job_result_key`,
    #: so declaring dependencies cannot invalidate cached results.
    after: Tuple[str, ...] = ()

    @classmethod
    def from_request(cls, request, label: Optional[str] = None) -> "CampaignJob":
        """A job from a validated service :class:`JobRequest`."""
        from repro.spec import load_scenario

        if label is None:
            label = load_scenario(request.scenario_json).name
        return cls(
            label=label,
            scenario_json=request.scenario_json,
            system=request.system,
            horizon=request.horizon,
            faults_json=request.faults_json,
            backend=request.backend,
            after=tuple(request.after),
        )

    @property
    def vec_horizon(self) -> float:
        """The horizon a vec execution of this job resolves to."""
        return self.horizon if self.horizon is not None else DEFAULT_VEC_HORIZON


def job_result_key(job: CampaignJob) -> str:
    """The content-addressed cache key for one campaign job.

    Single source of truth shared with the service
    (:meth:`JobRequest.result_key` delegates here): the key depends on
    the canonical scenario, the fault schedule, the content digest of
    any recorded environment traces the scenario replays (so replaying
    identical trace content hits wherever the file lives, and
    re-recording it misses), the system/horizon overrides, the backend
    when non-scalar, and — for vec jobs only — any non-default fleet
    knob.  It never depends on how the job was scheduled, which is what
    makes batched and solo execution cache-compatible.
    """
    from repro.experiments.cache import result_key
    from repro.spec import load_scenario, scenario_trace_hash, spec_hash

    params: Dict[str, Any] = {}
    if job.system is not None:
        params["system"] = job.system
    if job.horizon is not None:
        params["horizon"] = job.horizon
    if job.backend != "scalar":
        params["backend"] = job.backend
    if job.backend == "vec":
        if job.dt != DEFAULT_VEC_DT:
            params["dt"] = job.dt
        if job.mode is not None:
            params["mode"] = job.mode
        if job.power_scale != 1.0:
            params["power_scale"] = job.power_scale
        if job.load_power is not None:
            params["load_power"] = job.load_power
        if job.initial_voltage != 0.0:
            params["initial_voltage"] = job.initial_voltage

    fault_hash = None
    if job.faults_json is not None:
        from repro.faults import fault_schedule_hash, load_fault_schedule

        fault_hash = fault_schedule_hash(load_fault_schedule(job.faults_json))
    scenario = load_scenario(job.scenario_json)
    return result_key(
        "service.run",
        params,
        spec_hash=spec_hash(scenario),
        fault_hash=fault_hash,
        trace_hash=scenario_trace_hash(scenario),
    )


def format_fleet_summary(
    name: str,
    system: str,
    horizon: float,
    on_seconds: float,
    brownouts: int,
    energy_in: float,
    energy_out: float,
    energy_leaked: float,
) -> str:
    """One vec job's result summary, same shape as the scalar runner's.

    Every value derives from the fleet state columns, which are
    batch-invariant — so this text is byte-identical however the job
    was scheduled.
    """
    lines = [f"{name} on {system}: {horizon:.0f} s simulated (vec fleet)"]
    lines.append(f"  {'brownouts':24s} {brownouts}")
    lines.append(f"  {'energy_in_uJ':24s} {energy_in * 1e6:.3f}")
    lines.append(f"  {'energy_leaked_uJ':24s} {energy_leaked * 1e6:.3f}")
    lines.append(f"  {'energy_out_uJ':24s} {energy_out * 1e6:.3f}")
    lines.append(f"  {'on_fraction':24s} {on_seconds / horizon:.6f}")
    lines.append(f"  {'on_seconds':24s} {on_seconds:.3f}")
    return "\n".join(lines) + "\n"


def run_fleet_batch(
    jobs: Sequence[CampaignJob], collect: bool = False
) -> List[Dict[str, Any]]:
    """Execute vec jobs as ONE fleet batch; split per-job payloads.

    All jobs must share one resolved ``(horizon, dt)`` pair (that is
    what a cohort is); each becomes one device of a single
    :class:`FleetKernel` run, and the per-device state columns split
    back into one payload per job.  Scenarios driven by
    piecewise-constant environment traces (synthetic piecewise or
    hold-interpolated replays) are compiled into operating-point
    segments (:func:`~repro.vec.batch.compile_operating_segments`) and
    advanced with :meth:`FleetKernel.run_segments`; static batches take
    the single-segment :meth:`FleetKernel.run` path unchanged.
    Payloads — including the optional telemetry snapshot, which is
    synthesized per job from simulation-derived values only — carry no
    trace of the batch, so a batch of N and N batches of one return
    identical bits.
    """
    from repro.core.builder import SystemKind
    from repro.spec import ScenarioSpec, load_scenario
    from repro.vec import (
        FleetKernel,
        build_fleet,
        compile_operating_segments,
        leak_decay,
    )
    from repro.vec.batch import DEFAULT_LOAD_POWER

    if not jobs:
        return []
    horizon = jobs[0].vec_horizon
    dt = jobs[0].dt
    for job in jobs:
        if job.backend != "vec":
            raise ConfigurationError(
                f"job {job.label!r} requests backend {job.backend!r}; "
                f"run_fleet_batch executes vec cohorts only"
            )
        if job.vec_horizon != horizon or job.dt != dt:
            raise ConfigurationError(
                f"job {job.label!r} resolves to (horizon={job.vec_horizon}, "
                f"dt={job.dt}) but the batch runs ({horizon}, {dt}); "
                f"plan_campaign keeps incompatible jobs in separate cohorts"
            )

    scenarios: List[ScenarioSpec] = []
    systems: List[str] = []
    for job in jobs:
        scenario = load_scenario(job.scenario_json)
        system = (
            SystemKind.from_name(job.system).value
            if job.system is not None
            else scenario.system
        )
        if system != scenario.system:
            scenario = ScenarioSpec(
                name=scenario.name,
                system=system,
                platform=scenario.platform,
                workload=scenario.workload,
            )
        scenarios.append(scenario)
        systems.append(system)

    state = build_fleet(
        scenarios,
        modes=[job.mode for job in jobs],
        load_power=[
            job.load_power if job.load_power is not None else DEFAULT_LOAD_POWER
            for job in jobs
        ],
        power_scales=[job.power_scale for job in jobs],
        initial_voltage=[job.initial_voltage for job in jobs],
    )
    segments = compile_operating_segments(
        scenarios, horizon, dt,
        power_scales=[job.power_scale for job in jobs],
    )
    kernel = FleetKernel(state)
    decay = leak_decay(state.leak_tau, dt)
    if len(segments) > 1:
        summary = kernel.run_segments(segments, dt, decay=decay)
    else:
        # Static batch: the pre-existing single-launch path, untouched
        # so trace-less campaigns stay byte-stable.
        summary = kernel.run(horizon, dt=dt, decay=decay)
    steps = int(summary["steps"])

    payloads: List[Dict[str, Any]] = []
    for i, (job, scenario, system) in enumerate(zip(jobs, scenarios, systems)):
        on_seconds = float(state.on_seconds[i])
        brownouts = int(state.brownouts[i])
        energy_in = float(state.energy_in[i])
        energy_out = float(state.energy_out[i])
        energy_leaked = float(state.energy_leaked[i])
        telemetry_snapshot = None
        if collect:
            # Synthetic per-job snapshot from simulation-derived values
            # only: a batched run's ambient telemetry (device counts,
            # wall-clock histograms) would otherwise leak the batch
            # composition into the payload bytes.
            job_telemetry = Telemetry()
            job_telemetry.inc("vec.steps", steps)
            job_telemetry.inc("vec.devices", 1)
            job_telemetry.inc("vec.brownouts", brownouts)
            telemetry_snapshot = job_telemetry.snapshot()
        payloads.append(
            {
                "summary": format_fleet_summary(
                    scenario.name, system, horizon, on_seconds,
                    brownouts, energy_in, energy_out, energy_leaked,
                ),
                "horizon": horizon,
                "dt": dt,
                "system": system,
                "scenario": scenario.name,
                "backend": "vec",
                "counters": {
                    "brownouts": brownouts,
                    "steps": steps,
                },
                "fleet": {
                    "voltage": float(state.voltage[i]),
                    "on": bool(state.on[i]),
                    "on_seconds": on_seconds,
                    "brownouts": brownouts,
                    "energy_in": energy_in,
                    "energy_out": energy_out,
                    "energy_leaked": energy_leaked,
                },
                "telemetry": telemetry_snapshot,
            }
        )
    return payloads


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


@dataclass
class Cohort:
    """Vec jobs that execute as one (or more sharded) fleet batches."""

    horizon: float
    dt: float
    #: Content digest of the cohort's recorded environment traces
    #: (:func:`repro.spec.scenario_trace_hash`); ``""`` for cohorts with
    #: no replay traces.  Jobs replaying different trace content land in
    #: different cohorts so each batch compiles one segment schedule.
    trace: str = ""
    jobs: List[Tuple[int, CampaignJob]] = field(default_factory=list)


@dataclass(frozen=True)
class Straggler:
    """A job the planner routes through the scalar engine, and why.

    ``job`` is the job as it will execute — a vec request the
    capability rules rejected is downgraded to ``backend="scalar"``
    here (with the downgrade recorded, never silent), so its cache key
    and payload stay coherent with how it actually ran.
    """

    index: int
    job: CampaignJob
    reason: str
    slug: str


@dataclass
class CampaignPlan:
    """The partition :func:`execute_plan` executes."""

    jobs: List[CampaignJob]
    cohorts: List[Cohort]
    stragglers: List[Straggler]

    @property
    def batched_jobs(self) -> int:
        return sum(len(cohort.jobs) for cohort in self.cohorts)

    def stats(self) -> Dict[str, Any]:
        total = len(self.jobs)
        batched = self.batched_jobs
        reasons: Dict[str, int] = {}
        for straggler in self.stragglers:
            reasons[straggler.slug] = reasons.get(straggler.slug, 0) + 1
        return {
            "jobs": total,
            "cohorts": len(self.cohorts),
            "batched_jobs": batched,
            "straggler_jobs": len(self.stragglers),
            "batched_fraction": batched / total if total else 0.0,
            "straggler_reasons": reasons,
        }


def _straggler_slug(reason: str) -> str:
    """A low-cardinality telemetry slug for one straggler reason."""
    if reason.startswith("backend="):
        return "backend-scalar"
    if reason.startswith("spec-error"):
        return "spec-error"
    if "fault" in reason:
        return "faults"
    if "replay trace" in reason:
        return "trace"
    if "harvester" in reason or "irradiance" in reason:
        return "harvester"
    return "capability"


def plan_campaign(
    jobs: Sequence[CampaignJob],
    telemetry: Optional[Telemetry] = None,
) -> CampaignPlan:
    """Partition *jobs* into vec cohorts and scalar stragglers.

    A job joins a cohort when it requests the vec backend and passes
    the same :func:`~repro.vec.batch.check_scenario` capability rules
    ``build_fleet`` enforces; cohorts group by resolved ``(horizon, dt,
    trace)`` — the step contract plus the content digest of any replay
    traces — so every member shares the kernel's step contract and one
    compiled segment schedule.  Everything else is a straggler with a
    recorded reason — including vec requests the rules reject, which
    are downgraded to the scalar engine rather than dropped or silently
    re-routed.
    """
    from repro.errors import SpecError
    from repro.spec import load_scenario, scenario_trace_hash
    from repro.vec import check_scenario

    telemetry = resolve_telemetry(telemetry)
    cohorts: Dict[Tuple[float, float, str], Cohort] = {}
    stragglers: List[Straggler] = []
    for index, job in enumerate(jobs):
        if job.backend != "vec":
            reason = f"backend={job.backend}: job did not request the vec backend"
            stragglers.append(
                Straggler(index, job, reason, _straggler_slug(reason))
            )
            continue
        try:
            scenario = load_scenario(job.scenario_json)
            schedule = None
            if job.faults_json is not None:
                from repro.faults import load_fault_schedule

                schedule = load_fault_schedule(job.faults_json)
            reasons = check_scenario(scenario, schedule)
            trace_key = scenario_trace_hash(scenario) or "" if not reasons else ""
        except SpecError as error:
            reasons = [f"spec-error: {error}"]
        if reasons:
            reason = "; ".join(reasons)
            downgraded = dataclasses.replace(job, backend="scalar")
            stragglers.append(
                Straggler(index, downgraded, reason, _straggler_slug(reason))
            )
            continue
        key = (job.vec_horizon, job.dt, trace_key)
        cohorts.setdefault(
            key, Cohort(horizon=key[0], dt=key[1], trace=key[2])
        ).jobs.append((index, job))

    plan = CampaignPlan(
        jobs=list(jobs),
        cohorts=[cohorts[key] for key in sorted(cohorts)],
        stragglers=stragglers,
    )
    if telemetry.enabled:
        stats = plan.stats()
        telemetry.inc("plan.jobs", stats["jobs"])
        telemetry.inc("plan.cohorts", stats["cohorts"])
        telemetry.inc("plan.batched_jobs", stats["batched_jobs"])
        telemetry.inc("plan.straggler_jobs", stats["straggler_jobs"])
        telemetry.set_gauge("plan.batched_fraction", stats["batched_fraction"])
        for slug, count in sorted(stats["straggler_reasons"].items()):
            telemetry.inc(f"plan.straggler_reason.{slug}", count)
    return plan


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _run_campaign_job(job: CampaignJob, collect: bool = False) -> Dict[str, Any]:
    """One job through its backend's canonical path (solo execution)."""
    if job.backend == "vec":
        return run_fleet_batch((job,), collect=collect)[0]
    from repro.service.runner import run_scenario_job

    return run_scenario_job(
        job.scenario_json,
        system=job.system,
        horizon=job.horizon,
        faults_json=job.faults_json,
        backend="scalar",
        collect=collect,
    )


def _plan_task(kind: str, jobs: Tuple[CampaignJob, ...], collect: bool) -> List[Any]:
    """Pool worker entry: one shard (vec batch) or one straggler.

    Module-level and fed only frozen dataclasses of plain strings, so
    it ships across the process pool; always returns a list of payloads
    so the parent unpacks shards and solo jobs uniformly.
    """
    if kind == "batch":
        return run_fleet_batch(jobs, collect=collect)
    return [_run_campaign_job(job, collect=collect) for job in jobs]


@dataclass
class PlanResult:
    """Per-job outcomes of one executed plan, in submission order."""

    #: Payload dict per job, or a :class:`TaskError` under
    #: ``on_error="capture"`` when the job's shard failed every attempt.
    results: List[Any]
    #: The content-addressed cache key of each job.
    keys: List[str]
    #: Whether each job was served from the cache without executing.
    cached: List[bool]
    #: The plan that was executed (stats, cohorts, straggler reasons).
    plan: CampaignPlan


def execute_plan(
    plan: CampaignPlan,
    cache=None,
    pool=None,
    jobs: Optional[int] = None,
    retry=None,
    chaos=None,
    on_error: str = "capture",
    telemetry: Optional[Telemetry] = None,
    collect: bool = False,
    shard_size: Optional[int] = None,
) -> PlanResult:
    """Execute a plan: cache lookups, sharded batches, stragglers.

    Args:
        plan: the :func:`plan_campaign` partition.
        cache: optional :class:`~repro.experiments.cache.ResultCache`;
            jobs whose key holds a usable payload are served without
            executing, fresh payloads are stored back.
        pool: optional persistent
            :class:`~repro.experiments.parallel.WorkerPool`; without
            one, a per-call :func:`parallel_map` (with *jobs* workers)
            runs the tasks.
        jobs: worker count for the per-call path (ignored with *pool*).
        retry / chaos / on_error: the campaign resilience contract,
            verbatim from :func:`parallel_map`.
        telemetry: sink for the ``plan.*`` execution counters.
        collect: attach per-job telemetry snapshots to payloads.
        shard_size: devices per kernel launch.  Default: one shard per
            worker.  ``1`` forces every job into its own batch — the
            unbatched baseline the differential tests and the campaign
            benchmark compare against.

    Returns:
        A :class:`PlanResult` with per-job payloads in original job
        order — byte-identical to solo execution of each job.
    """
    from repro.experiments.parallel import default_jobs, parallel_map

    telemetry = resolve_telemetry(telemetry)
    effective_jobs = (
        pool.jobs if pool is not None else (jobs if jobs is not None else default_jobs())
    )

    total = len(plan.jobs)
    executable: List[CampaignJob] = list(plan.jobs)
    for straggler in plan.stragglers:
        executable[straggler.index] = straggler.job
    keys = [job_result_key(job) for job in executable]

    results: List[Any] = [None] * total
    cached = [False] * total
    if cache is not None:
        for index, key in enumerate(keys):
            payload = cache.get(key)
            if isinstance(payload, dict) and "summary" in payload:
                results[index] = payload
                cached[index] = True
        hits = sum(cached)
        if hits and telemetry.enabled:
            telemetry.inc("plan.cache_hits", hits)

    tasks: List[Tuple[str, Tuple[CampaignJob, ...], bool]] = []
    labels: List[str] = []
    slots: List[List[int]] = []
    for cohort_index, cohort in enumerate(plan.cohorts):
        pending = [(i, job) for i, job in cohort.jobs if not cached[i]]
        if not pending:
            continue
        size = shard_size
        if size is None:
            size = max(1, -(-len(pending) // effective_jobs))
        for shard_index in range(0, len(pending), size):
            shard = pending[shard_index : shard_index + size]
            tasks.append(
                ("batch", tuple(job for _, job in shard), collect)
            )
            labels.append(
                f"plan:c{cohort_index}:s{shard_index // size}"
            )
            slots.append([i for i, _ in shard])
    for straggler in plan.stragglers:
        if cached[straggler.index]:
            continue
        tasks.append(("solo", (straggler.job,), collect))
        labels.append(f"plan:straggler:{straggler.job.label}")
        slots.append([straggler.index])

    if tasks:
        if pool is not None:
            outputs = pool.map_tasks(
                _plan_task,
                tasks,
                labels=labels,
                retry=retry,
                chaos=chaos,
                on_error=on_error,
                telemetry=telemetry,
            )
        else:
            outputs = parallel_map(
                _plan_task,
                tasks,
                jobs=jobs,
                labels=labels,
                retry=retry,
                chaos=chaos,
                on_error=on_error,
                telemetry=telemetry,
            )
        from repro.experiments.parallel import TaskError

        for indices, output in zip(slots, outputs):
            if isinstance(output, TaskError):
                for index in indices:
                    results[index] = output
                continue
            for index, payload in zip(indices, output):
                results[index] = payload
                if cache is not None:
                    cache.put(keys[index], payload)
        if telemetry.enabled:
            telemetry.inc("plan.shards", len(tasks))
            telemetry.inc(
                "plan.jobs_executed", sum(len(indices) for indices in slots)
            )
    return PlanResult(results=results, keys=keys, cached=cached, plan=plan)


# ---------------------------------------------------------------------------
# Dependency-aware execution
# ---------------------------------------------------------------------------


@dataclass
class DagPlanResult:
    """Per-job outcomes of a dependency-aware campaign, in job order.

    Shaped like :class:`PlanResult` (``results``/``keys``/``cached``
    aligned with the input jobs) plus the per-level plans actually
    executed — vec cohorts still batch *within* a level, which is the
    planner's whole point surviving the scheduling constraint.
    """

    results: List[Any]
    keys: List[str]
    cached: List[bool]
    levels: List[PlanResult]


def execute_campaign_dag(
    campaign_jobs: Sequence[CampaignJob],
    cache=None,
    pool=None,
    jobs: Optional[int] = None,
    retry=None,
    chaos=None,
    on_error: str = "capture",
    telemetry: Optional[Telemetry] = None,
    collect: bool = False,
    shard_size: Optional[int] = None,
) -> DagPlanResult:
    """Execute jobs whose ``after`` edges form a dependency DAG.

    Validates the graph (duplicate labels, unknown predecessors, cycles
    raise :class:`~repro.errors.DagError`), then walks it level by
    level: each level is planned with :func:`plan_campaign` — so
    vec-compatible members of one level still coalesce into fleet
    batches — and executed with :func:`execute_plan` under the same
    cache/retry/chaos contract.  A job whose predecessor failed (or was
    itself blocked) is never dispatched; its result slot holds a
    :class:`~repro.experiments.parallel.TaskError` with ``attempts=0``,
    matching :func:`repro.experiments.dag.run_dag`'s blocked marker.
    """
    from repro.experiments.dag import CampaignDag
    from repro.experiments.parallel import TaskError

    dag = CampaignDag([(job.label, job.after) for job in campaign_jobs])
    index_of = {job.label: i for i, job in enumerate(campaign_jobs)}
    total = len(campaign_jobs)
    results: List[Any] = [None] * total
    keys: List[str] = [""] * total
    cached: List[bool] = [False] * total
    level_results: List[PlanResult] = []
    failed: set = set()

    for level in dag.levels():
        runnable: List[str] = []
        for label in level:
            bad = [pred for pred in dag.predecessors(label) if pred in failed]
            if bad:
                failed.add(label)
                results[index_of[label]] = TaskError(
                    label=label,
                    error=f"blocked: predecessor {bad[0]!r} failed",
                    attempts=0,
                )
                keys[index_of[label]] = job_result_key(campaign_jobs[index_of[label]])
                if telemetry is not None and telemetry.enabled:
                    telemetry.inc("campaign.blocked")
                continue
            runnable.append(label)
        if not runnable:
            continue
        subset = [campaign_jobs[index_of[label]] for label in runnable]
        plan = plan_campaign(subset, telemetry=telemetry)
        result = execute_plan(
            plan,
            cache=cache,
            pool=pool,
            jobs=jobs,
            retry=retry,
            chaos=chaos,
            on_error=on_error,
            telemetry=telemetry,
            collect=collect,
            shard_size=shard_size,
        )
        level_results.append(result)
        for label, payload, key, hit in zip(
            runnable, result.results, result.keys, result.cached
        ):
            index = index_of[label]
            results[index] = payload
            keys[index] = key
            cached[index] = hit
            if isinstance(payload, TaskError):
                failed.add(label)
    return DagPlanResult(
        results=results, keys=keys, cached=cached, levels=level_results
    )
