"""Figure 8: event detection accuracy.

Reproduces the paper's accuracy comparison: each application (TempAlarm,
GestureFast, GestureCompact, CorrSense) runs on Pwr / Fixed / Capy-R /
Capy-P against a Poisson event sequence (TA: 50 events over 120 min;
GRC and CSR: 80 events over 42 min), and we report the fraction of
events each system detects — with GRC further broken into the
correct / misclassified / proximity-only / missed taxonomy.

Paper shapes to reproduce: Fixed detects only ~18% (GRC) / ~46% (TA) /
~56% (CSR); Capybara variants reach >= 89% (CSR), ~98% (TA), and
Capy-P ~75% (GRC); Capy-R reports no GRC events at all.

Run: ``python -m repro.experiments.fig08_accuracy``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps import csr, grc, temp_alarm
from repro.apps.grc import GRCVariant
from repro.core.builder import SystemKind
from repro.experiments import metrics
from repro.experiments.campaign import DEFAULT_KINDS, Campaign
from repro.experiments.parallel import run_campaign_parallel
from repro.experiments.runner import ExperimentResult, percent, print_result
from repro.spec import ScenarioBuilder, ScenarioSpec

#: Scaled-down defaults keep a full figure regeneration to a couple of
#: minutes; pass scale=1.0 for the paper-sized event counts.
DEFAULT_SCALE = 0.5


@dataclass
class AccuracyData:
    """Campaigns plus per-(app, system) accuracies."""

    campaigns: Dict[str, Campaign]
    result: ExperimentResult


def _horizon_for(builder, scale: float) -> float:
    """Horizon covering the schedule plus recovery slack."""
    probe = builder(SystemKind.CONTINUOUS)
    return probe.schedule.horizon + 120.0


def declared_scenarios(seed: int, scale: float) -> List[ScenarioSpec]:
    """The declarative scenarios this experiment simulates, in display
    order — registered with the experiment registry so their canonical
    hash joins the result-cache key."""
    ta_events = max(5, int(50 * scale))
    grc_events = max(5, int(80 * scale))
    return [
        temp_alarm.scenario(seed=seed, event_count=ta_events),
        grc.scenario(variant=GRCVariant.FAST, seed=seed, event_count=grc_events),
        grc.scenario(variant=GRCVariant.COMPACT, seed=seed, event_count=grc_events),
        csr.scenario(seed=seed, event_count=grc_events),
    ]


def run(seed: int = 0, scale: float = DEFAULT_SCALE) -> AccuracyData:
    """Run the Figure 8 experiment.

    Args:
        seed: root seed for schedules and noise.
        scale: fraction of the paper's event counts (duration scales
            with it; inter-arrival statistics are preserved).
    """
    ta_events = max(5, int(50 * scale))
    grc_events = max(5, int(80 * scale))

    # ScenarioBuilder closes over canonical scenario JSON — the only
    # state crossing the process boundary when run_campaign_parallel
    # fans the four system variants out over worker processes.
    scenarios = declared_scenarios(seed, scale)
    builders = {
        "TempAlarm": ScenarioBuilder(scenarios[0]),
        "GestureFast": ScenarioBuilder(scenarios[1]),
        "GestureCompact": ScenarioBuilder(scenarios[2]),
        "CorrSense": ScenarioBuilder(scenarios[3]),
    }

    result = ExperimentResult(
        experiment="fig08-accuracy",
        columns=["App", "System", "Correct", "Misclassified", "ProxOnly", "Missed"],
    )
    result.notes.append(
        f"seed={seed} scale={scale} ta_events={ta_events} grc_events={grc_events}"
    )
    campaigns: Dict[str, Campaign] = {}

    for app_name, builder in builders.items():
        horizon = _horizon_for(builder, scale)
        campaign = run_campaign_parallel(builder, horizon)
        campaigns[app_name] = campaign
        for kind in DEFAULT_KINDS:
            instance = campaign.instance(kind)
            if app_name.startswith("Gesture"):
                outcomes = metrics.grc_outcomes(instance)
                correct = outcomes.fraction(metrics.GRC_CORRECT)
                miscls = outcomes.fraction(metrics.GRC_MISCLASSIFIED)
                prox = outcomes.fraction(metrics.GRC_PROXIMITY_ONLY)
                missed = outcomes.fraction(metrics.GRC_MISSED)
            elif app_name == "TempAlarm":
                correct = metrics.ta_accuracy(instance, campaign.reference)
                miscls = prox = 0.0
                missed = 1.0 - correct
            else:  # CorrSense
                correct = metrics.csr_accuracy(instance)
                miscls = prox = 0.0
                missed = 1.0 - correct
            result.values[f"{app_name}/{kind.value}/accuracy"] = correct
            result.values[f"{app_name}/{kind.value}/missed"] = missed
            result.rows.append(
                [
                    app_name,
                    kind.value,
                    percent(correct),
                    percent(miscls),
                    percent(prox),
                    percent(missed),
                ]
            )
    return AccuracyData(campaigns=campaigns, result=result)


def main(seed: int = 0, scale: float = DEFAULT_SCALE) -> ExperimentResult:
    data = run(seed=seed, scale=scale)
    print_result(data.result)
    return data.result


if __name__ == "__main__":
    main()
