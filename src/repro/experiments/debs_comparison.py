"""Capybara's switched banks vs a DEBS-style Vtop-threshold system,
end to end on the TempAlarm application.

Section 5.2 rejects the threshold mechanism on component grounds (2x
area, 1.5x leakage, EEPROM endurance, slow cold start).  This
experiment runs both complete systems on the same event schedule and
measures what the choice costs an *application*:

* accuracy and latency (the threshold system behaves like Capy-R: a
  single array cannot hold a pre-charged burst, so alarms pay the
  charge-to-high-threshold latency on the critical path);
* EEPROM writes consumed per hour, and the device lifetime they imply
  (the potentiometer's ~50k write endurance divided by the write rate);
* the reconfiguration counts the two mechanisms perform for the same
  workload.

Run: ``python -m repro.experiments.debs_comparison``
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.apps.base import make_binding
from repro.apps.rigs import EventSchedule, ThermalRig
from repro.apps.temp_alarm import (
    ALARM_HIGH,
    ALARM_LOW,
    EVENT_DURATION,
    WARMUP,
    make_banks,
    make_graph,
)
from repro.core.builder import SystemKind, build_capybara_system
from repro.core.threshold_system import build_threshold_system
from repro.device.board import Board
from repro.device.mcu import MCU_MSP430FR5969
from repro.device.radio import BLE_CC2650
from repro.device.sensors import SENSOR_TMP36
from repro.experiments.runner import ExperimentResult, print_result
from repro.kernel.executor import IntermittentExecutor
from repro.sim.rand import RandomStreams


@dataclass
class SystemRun:
    name: str
    reported: int
    mean_latency: float
    reconfigurations: int
    eeprom_writes: int


def _schedule(seed: int, event_count: int) -> EventSchedule:
    streams = RandomStreams(seed)
    return EventSchedule.poisson(
        streams.get("events"),
        mean_interarrival=144.0,
        count=event_count,
        duration=EVENT_DURATION,
        kind="temperature",
        start_offset=WARMUP,
    )


def _run(
    seed: int,
    event_count: int,
    threshold: bool,
) -> SystemRun:
    schedule = _schedule(seed, event_count)
    rig = ThermalRig(
        schedule,
        horizon=schedule.horizon + 240.0,
        alarm_low=ALARM_LOW,
        alarm_high=ALARM_HIGH,
    )
    binding = make_binding({"tmp36": rig.temp_reading})
    spec = make_banks()
    if threshold:
        assembly = build_threshold_system(spec)
        name = "DEBS-threshold"
    else:
        assembly = build_capybara_system(spec, SystemKind.CAPY_P)
        name = "Capybara (CB-P)"
    board = Board(
        MCU_MSP430FR5969,
        assembly.power_system,
        sensors=[SENSOR_TMP36],
        radio=BLE_CC2650,
    )
    executor = IntermittentExecutor(
        board, make_graph(), assembly.runtime, sensor_binding=binding
    )
    horizon = schedule.horizon + 120.0
    trace = executor.run(horizon)

    starts = {event.event_id: event.start for event in schedule.events}
    latencies = []
    for event_id in trace.reported_event_ids():
        first = trace.first_report_time(event_id)
        if first is not None and event_id in starts:
            latencies.append(first - starts[event_id])
    eeprom = assembly.runtime.eeprom_writes if threshold else 0
    return SystemRun(
        name=name,
        reported=len(trace.reported_event_ids()),
        mean_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        reconfigurations=trace.counters.get("reconfigurations", 0),
        eeprom_writes=eeprom,
    )


def run(seed: int = 0, event_count: int = 20) -> ExperimentResult:
    result = ExperimentResult(
        experiment="debs-comparison",
        columns=[
            "System",
            "Reported",
            "MeanLatency",
            "Reconfigs",
            "EEPROM writes",
            "Implied lifetime",
        ],
    )
    schedule = _schedule(seed, event_count)
    hours = (schedule.horizon + 120.0) / 3600.0
    for threshold in (False, True):
        outcome = _run(seed, event_count, threshold)
        lifetime = "unbounded"
        lifetime_hours = float("inf")
        if outcome.eeprom_writes > 0:
            writes_per_hour = outcome.eeprom_writes / hours
            lifetime_hours = 50_000.0 / writes_per_hour
            lifetime = f"{lifetime_hours / 24.0:.0f} days"
        key = "threshold" if threshold else "capybara"
        result.values[f"{key}/reported"] = float(outcome.reported)
        result.values[f"{key}/mean_latency"] = outcome.mean_latency
        result.values[f"{key}/eeprom_writes"] = float(outcome.eeprom_writes)
        result.values[f"{key}/lifetime_hours"] = lifetime_hours
        result.rows.append(
            [
                outcome.name,
                f"{outcome.reported}/{event_count}",
                f"{outcome.mean_latency:.1f}s",
                str(outcome.reconfigurations),
                str(outcome.eeprom_writes),
                lifetime,
            ]
        )
    result.notes.append(
        "the threshold system cannot pre-charge a burst (single array), "
        "so alarms pay the charge latency on the critical path, and "
        "every mode change consumes EEPROM endurance"
    )
    return result


def main(seed: int = 0, event_count: int = 20) -> ExperimentResult:
    result = run(seed=seed, event_count=event_count)
    print_result(result)
    return result


if __name__ == "__main__":
    main()
