"""Run the complete evaluation suite at paper scale.

Regenerates every figure of the paper's Section 6 plus the Section 5
ablations.  The suite is whatever the experiment registry
(:mod:`repro.experiments.registry`) says it is — experiments
self-register in :mod:`repro.experiments.suite`; this module only
schedules them.  Independent experiments fan out over a process pool
(:mod:`repro.experiments.parallel`) and completed experiments are
replayed from the on-disk result cache (:mod:`repro.experiments.cache`)
when neither their parameters nor the simulator source has changed —
a warm-cache rerun prints every table in seconds.

With ``--metrics-out``/``--trace-out`` each worker job runs inside a
:func:`~repro.observability.telemetry_scope`; the parent merges the
per-experiment snapshots (prefixed ``exp.<job_id>.``) with its own
suite-level metrics (per-experiment timing, cache hit/miss) and dumps
canonical JSONL plus a summary table.

The suite degrades gracefully rather than aborting: every experiment
runs under a :class:`~repro.experiments.parallel.RetryPolicy`
(exponential backoff, deterministic jitter), and one that fails every
attempt becomes a structured error row in the output and the summary
table while the rest of the suite completes.  ``--inject faults.json``
arms a :mod:`repro.faults` schedule: ``worker_crash`` faults kill
worker attempts deterministically (exercising the retry path — results
stay byte-identical because every task is a pure function of its
arguments), and the schedule's canonical hash joins the cache key so
faulted and clean runs never share entries.

Run: ``python -m repro.experiments.run_all [--scale S] [--seed N]
[--jobs J | --serial] [--no-cache] [--clear-cache]
[--inject faults.json]
[--metrics-out metrics.jsonl] [--trace-out trace.jsonl]``
"""

from __future__ import annotations

import argparse
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache, result_key
from repro.experiments.parallel import (
    ParallelReport,
    RetryPolicy,
    TaskError,
    default_jobs,
    parallel_map,
)
from repro.faults import build_injector, fault_schedule_hash, load_fault_schedule
from repro.experiments.registry import Experiment, get_experiment
from repro.experiments.registry import REGISTRY as _REGISTRY
from repro.experiments.runner import format_table
from repro.observability.telemetry import Telemetry, telemetry_scope
from repro.observability.tracing import write_jsonl

#: Payload stored per experiment: (captured stdout, telemetry snapshot
#: or None when the run was uninstrumented).
JobPayload = Tuple[str, Optional[Dict[str, object]]]


def _run_job(
    job_id: str, seed: int, scale: float, collect: bool, backend: str = "scalar"
) -> JobPayload:
    """Pool worker entry point (only plain data crosses processes).

    When *collect* is set the job runs inside a fresh telemetry scope so
    every instrumented component (engine, reservoir, executors) reports
    into a snapshot the parent can merge.  *backend* reaches only the
    experiments that declare ``uses_backend``.
    """
    exp = get_experiment(job_id)
    kwargs = {"backend": backend} if exp.uses_backend else {}
    if not collect:
        return exp.runner(seed, scale, **kwargs), None
    telemetry = Telemetry()
    with telemetry_scope(telemetry):
        text = exp.runner(seed, scale, **kwargs)
    return text, telemetry.snapshot()


def _metric_summary_rows(
    suite: Telemetry, job_ids: List[str]
) -> List[List[str]]:
    """Per-experiment headline counters for the metrics summary table."""
    counters = (
        ("reboots", "kernel.reboots"),
        ("power fails", "kernel.power_failures"),
        ("checkpoints", "kernel.checkpoints"),
        ("tasks done", "kernel.tasks_completed"),
        ("brownouts", "power.brownouts"),
    )
    snapshot = suite.metrics.snapshot()
    rows: List[List[str]] = []
    for job_id in job_ids:
        row = [job_id]
        for _label, metric in counters:
            entry = snapshot.get(f"exp.{job_id}.{metric}")
            row.append(str(int(entry["value"])) if entry else "-")
        rows.append(row)
    return rows


def main(
    seed: int = 0,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    clear_cache: bool = False,
    cache_dir: Optional[Path] = None,
    metrics_out: Optional[Path] = None,
    trace_out: Optional[Path] = None,
    inject: Optional[Path] = None,
    retry: Optional[RetryPolicy] = None,
    backend: str = "scalar",
) -> None:
    """Run (or replay) the full suite.

    Args:
        seed: root seed for schedules and noise.
        scale: fraction of the paper's event counts.
        jobs: worker processes (``1`` forces serial; ``None`` uses
            ``REPRO_JOBS`` / the CPU count).  Zero or negative counts
            are rejected.
        use_cache: replay unchanged experiments from the result cache.
        clear_cache: drop every cached entry before running.
        cache_dir: cache location override (default ``.repro-cache`` or
            ``REPRO_CACHE_DIR``).
        metrics_out: write suite + per-experiment metrics as JSONL here.
        trace_out: write per-experiment trace records as JSONL here.
        inject: fault schedule JSON (:mod:`repro.faults`); its
            ``worker_crash`` faults drive deterministic chaos and its
            hash joins every cache key.
        retry: retry policy for failed experiments (default: 3 attempts
            with backoff, jitter seeded by *seed*).
        backend: simulation engine for the grid-shaped experiments that
            declare ``uses_backend`` ("scalar" or "vec"); the rest of
            the suite always runs on the scalar engine.
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {jobs}")
    if backend not in ("scalar", "vec"):
        raise ConfigurationError(f"--backend must be scalar or vec, got {backend!r}")
    for flag, path in (("--metrics-out", metrics_out), ("--trace-out", trace_out)):
        if path is not None and not Path(path).parent.is_dir():
            raise ConfigurationError(
                f"{flag}: directory {Path(path).parent} does not exist"
            )
    started = time.time()
    jobs = default_jobs() if jobs is None else jobs
    collect = metrics_out is not None or trace_out is not None
    suite_jobs: List[Experiment] = _REGISTRY.suite()
    retry = retry if retry is not None else RetryPolicy(seed=seed)

    chaos = None
    fault_hash = None
    if inject is not None:
        schedule = load_fault_schedule(Path(inject))
        chaos = build_injector(schedule).worker_chaos()
        fault_hash = fault_schedule_hash(schedule)
        ignored = len(schedule.sim_faults())
        if ignored:
            print(
                f"[faults] note: {ignored} simulation fault(s) in "
                f"{schedule.name!r} apply to single runs "
                "(`repro run --inject`), not the campaign level; "
                "only worker_crash faults act here"
            )

    cache = ResultCache(**({"root": cache_dir} if cache_dir is not None else {}))
    cache.enabled = use_cache
    if clear_cache:
        removed = cache.clear()
        print(f"[cache] cleared {removed} entries from {cache.root}")

    print("#" * 70)
    print(
        f"# Capybara evaluation suite (seed={seed}, scale={scale}, "
        f"jobs={jobs}, cache={'on' if use_cache else 'off'}, "
        f"telemetry={'on' if collect else 'off'}"
        + (f", backend={backend}" if backend != "scalar" else "")
        + (f", chaos={chaos.mode}x{chaos.max_crashes}" if chaos is not None else "")
        + ")"
    )
    print("#" * 70)

    # Partition into cached replays and experiments that must run.  A
    # cached entry recorded without telemetry cannot serve an
    # instrumented run, so it counts as a miss when collecting.
    outputs: Dict[str, str] = {}
    snapshots: Dict[str, Optional[Dict[str, object]]] = {}
    sources: Dict[str, str] = {}
    pending: List[Experiment] = []
    # Keys are computed once per job: (experiment id, params, declared
    # scenario spec hash, code fingerprint).  Experiments that declare
    # scenarios get per-scenario invalidation; others key on code+params.
    keys: Dict[str, str] = {
        job.job_id: result_key(
            job.job_id,
            job.params(seed, scale, backend),
            spec_hash=job.spec_hash(seed, scale),
            fault_hash=fault_hash,
        )
        for job in suite_jobs
    }
    for job in suite_jobs:
        payload = cache.get(keys[job.job_id])
        usable = (
            isinstance(payload, tuple)
            and len(payload) == 2
            and isinstance(payload[0], str)
            and (not collect or payload[1] is not None)
        )
        if usable:
            outputs[job.job_id], snapshots[job.job_id] = payload
            sources[job.job_id] = "cache"
        else:
            pending.append(job)

    report = ParallelReport()
    suite = Telemetry()
    if pending:
        fresh = parallel_map(
            _run_job,
            [(job.job_id, seed, scale, collect, backend) for job in pending],
            jobs=jobs,
            labels=[job.job_id for job in pending],
            report=report,
            retry=retry,
            chaos=chaos,
            on_error="capture",
            telemetry=suite,
        )
        for job, result in zip(pending, fresh):
            if isinstance(result, TaskError):
                # Graceful degradation: a permanently failing experiment
                # becomes a structured error row, never a cached entry.
                outputs[job.job_id] = str(result) + "\n"
                snapshots[job.job_id] = None
                sources[job.job_id] = "error"
                continue
            text, snapshot = result
            outputs[job.job_id] = text
            snapshots[job.job_id] = snapshot
            sources[job.job_id] = "ran"
            cache.put(keys[job.job_id], (text, snapshot))

    # Deterministic presentation order, independent of completion order.
    for job in suite_jobs:
        marker = {"cache": " [cache hit]", "error": " [FAILED]"}.get(
            sources[job.job_id], ""
        )
        print(f"\n## {job.title}{marker}")
        print(outputs[job.job_id], end="" if outputs[job.job_id].endswith("\n") else "\n")

    # Timing / provenance summary.
    seconds_by_id = {timing.label: timing.seconds for timing in report.timings}
    attempts_by_id = {timing.label: timing.attempts for timing in report.timings}
    rows = [
        [
            job.job_id,
            sources[job.job_id],
            f"{seconds_by_id[job.job_id]:.1f}s" if job.job_id in seconds_by_id else "-",
            str(attempts_by_id.get(job.job_id, "-")),
        ]
        for job in suite_jobs
    ]
    print()
    print(
        format_table(
            ["Experiment", "Source", "Task time", "Attempts"],
            rows,
            title=f"Execution summary ({report.mode}, jobs={report.jobs})",
        )
    )
    hits = sum(1 for source in sources.values() if source == "cache")
    failures = sum(1 for source in sources.values() if source == "error")
    print(
        f"\n[total: {time.time() - started:.0f}s elapsed; "
        f"{hits}/{len(suite_jobs)} experiments from cache; "
        f"task time {report.total_task_seconds:.0f}s"
        + (f"; {failures} experiment(s) FAILED" if failures else "")
        + "]"
    )

    if collect:
        _emit_telemetry(
            suite, suite_jobs, snapshots, sources, seconds_by_id, cache,
            jobs, time.time() - started, metrics_out, trace_out,
        )


def _emit_telemetry(
    suite: Telemetry,
    suite_jobs: List[Experiment],
    snapshots: Dict[str, Optional[Dict[str, object]]],
    sources: Dict[str, str],
    seconds_by_id: Dict[str, float],
    cache: ResultCache,
    jobs: int,
    elapsed: float,
    metrics_out: Optional[Path],
    trace_out: Optional[Path],
) -> None:
    """Merge per-experiment snapshots, write JSONL, print the summary.

    *suite* arrives holding the campaign counters ``parallel_map``
    recorded (``campaign.retries`` / ``campaign.gave_up``); suite-level
    gauges and per-experiment snapshots merge into it here.
    """
    suite.set_gauge("suite.jobs", jobs)
    suite.set_gauge("suite.wall_seconds", elapsed)
    suite.inc("suite.cache.hits", cache.stats.hits)
    suite.inc("suite.cache.misses", cache.stats.misses)
    suite.inc("suite.cache.stores", cache.stats.stores)
    if cache.stats.corrupt:
        suite.inc("suite.cache.corrupt", cache.stats.corrupt)
    suite.inc(
        "suite.experiments_from_cache",
        sum(1 for source in sources.values() if source == "cache"),
    )
    failed = sum(1 for source in sources.values() if source == "error")
    if failed:
        suite.inc("suite.experiments_failed", failed)
    for job in suite_jobs:
        if job.job_id in seconds_by_id:
            suite.observe("suite.experiment_seconds", seconds_by_id[job.job_id])
            suite.set_gauge(
                f"suite.experiment_seconds.{job.job_id}", seconds_by_id[job.job_id]
            )
        snapshot = snapshots.get(job.job_id)
        if snapshot is not None:
            suite.metrics.merge_snapshot(
                snapshot.get("metrics") or {}, prefix=f"exp.{job.job_id}."
            )

    if metrics_out is not None:
        path = write_jsonl(suite.metric_records(scope="suite"), metrics_out)
        print(f"[telemetry] metrics written to {path}")
    if trace_out is not None:
        records: List[Dict[str, object]] = []
        for job in suite_jobs:
            snapshot = snapshots.get(job.job_id)
            for record in (snapshot or {}).get("events") or []:
                tagged = dict(record)
                tagged["experiment"] = job.job_id
                records.append(tagged)
        path = write_jsonl(records, trace_out)
        print(f"[telemetry] {len(records)} trace records written to {path}")

    rows = _metric_summary_rows(suite, [job.job_id for job in suite_jobs])
    print()
    print(
        format_table(
            ["Experiment", "Reboots", "Power fails", "Checkpoints",
             "Tasks done", "Brownouts"],
            rows,
            title="Telemetry summary (per experiment)",
        )
    )


# ---------------------------------------------------------------------------
# Deprecated aliases (pre-registry API)
# ---------------------------------------------------------------------------

def __getattr__(name: str):
    if name == "ExperimentJob":
        warnings.warn(
            "repro.experiments.run_all.ExperimentJob moved to "
            "repro.experiments.registry.Experiment",
            DeprecationWarning,
            stacklevel=2,
        )
        return Experiment
    if name == "EXPERIMENT_JOBS":
        warnings.warn(
            "repro.experiments.run_all.EXPERIMENT_JOBS is replaced by the "
            "experiment registry (repro.experiments.registry.REGISTRY.suite())",
            DeprecationWarning,
            stacklevel=2,
        )
        return _REGISTRY.suite()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _writable_path(text: str) -> Path:
    path = Path(text)
    if not path.parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"directory {path.parent} does not exist"
        )
    return path


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="worker processes, >= 1 (default: REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--serial", action="store_true", help="force single-process execution"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--clear-cache", action="store_true", help="drop cached results first"
    )
    parser.add_argument(
        "--inject", type=Path, default=None, metavar="FILE",
        help="fault schedule JSON (repro.faults); worker_crash faults "
        "inject deterministic chaos into the pool",
    )
    parser.add_argument(
        "--backend", choices=["scalar", "vec"], default="scalar",
        help="engine for the grid-shaped experiments (fig03, fig04, "
        "ablation, power-sweep)",
    )
    parser.add_argument(
        "--metrics-out", type=_writable_path, default=None, metavar="FILE",
        help="write suite + per-experiment metrics as JSONL to FILE",
    )
    parser.add_argument(
        "--trace-out", type=_writable_path, default=None, metavar="FILE",
        help="write per-experiment trace records as JSONL to FILE",
    )
    arguments = parser.parse_args()
    main(
        seed=arguments.seed,
        scale=arguments.scale,
        jobs=1 if arguments.serial else arguments.jobs,
        use_cache=not arguments.no_cache,
        clear_cache=arguments.clear_cache,
        metrics_out=arguments.metrics_out,
        trace_out=arguments.trace_out,
        inject=arguments.inject,
        backend=arguments.backend,
    )
