"""Run the complete evaluation suite at paper scale.

Regenerates every figure of the paper's Section 6 plus the Section 5
ablations.  The suite is whatever the experiment registry
(:mod:`repro.experiments.registry`) says it is — experiments
self-register in :mod:`repro.experiments.suite`; this module only
schedules them.  Scheduling is dependency-aware: experiments may
declare predecessors (``@experiment(..., after=("power-sweep",))``),
the declarations build a validated :class:`~repro.experiments.dag.CampaignDag`,
and a dispatcher feeds ready tasks onto the worker pool the moment
their predecessors finish — independent chains overlap, dependent
tasks never start early.  Completed experiments are replayed from the
on-disk result cache (:mod:`repro.experiments.cache`) when neither
their parameters nor the simulator source has changed — a warm-cache
rerun prints every table in seconds.

The campaign checkpoints itself: after every task completion a
versioned, checksummed state file (``campaign.ckpt`` next to the
result cache) records what finished and under which result key, so
``--resume`` skips completed tasks after an interruption.  A resumed
task is skipped only when its recorded key matches the key the current
run computes *and* the cached payload is intact — so a resumed
campaign is bit-identical to an uninterrupted one, which the
differential chaos suite pins.  A corrupt checkpoint is quarantined
(fresh start), never trusted.

With ``--metrics-out``/``--trace-out`` each worker job runs inside a
:func:`~repro.observability.telemetry_scope`; the parent merges the
per-experiment snapshots (prefixed ``exp.<job_id>.``) with its own
suite-level metrics (per-experiment timing, cache hit/miss) and dumps
canonical JSONL plus a summary table.

The suite degrades gracefully rather than aborting: every experiment
runs under a :class:`~repro.experiments.parallel.RetryPolicy`
(exponential backoff, deterministic jitter); one that fails every
attempt becomes a structured error row, and everything downstream of
it a ``[BLOCKED]`` row, while independent chains complete.  ``--inject
faults.json`` arms a :mod:`repro.faults` schedule: ``worker_crash``
faults kill worker attempts deterministically (exercising the retry
path — results stay byte-identical because every task is a pure
function of its arguments), and the schedule's canonical hash joins
the cache key so faulted and clean runs never share entries.

Each run ends with the campaign report (critical path, per-worker
utilization, suggested ``--jobs``); ``repro campaign report`` prints
the same analysis from a checkpoint file alone.

Run: ``python -m repro.experiments.run_all [--scale S] [--seed N]
[--jobs J | --serial] [--no-cache] [--clear-cache] [--resume]
[--inject faults.json]
[--metrics-out metrics.jsonl] [--trace-out trace.jsonl]``
"""

from __future__ import annotations

import argparse
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache, code_fingerprint, result_key
from repro.experiments.dag import (
    CampaignDag,
    CampaignState,
    CheckpointStore,
    CompletedTask,
    build_report,
    emit_report_telemetry,
    run_dag,
)
from repro.experiments.parallel import (
    ParallelReport,
    RetryPolicy,
    TaskError,
    WorkerPool,
    default_jobs,
)
from repro.faults import build_injector, fault_schedule_hash, load_fault_schedule
from repro.experiments.registry import Experiment, get_experiment
from repro.experiments.registry import REGISTRY as _REGISTRY
from repro.experiments.runner import format_table
from repro.observability.telemetry import Telemetry, telemetry_scope
from repro.observability.tracing import write_jsonl

#: Checkpoint filename, persisted inside the result cache directory.
CHECKPOINT_NAME = "campaign.ckpt"

#: Payload stored per experiment: (captured stdout, telemetry snapshot
#: or None when the run was uninstrumented).
JobPayload = Tuple[str, Optional[Dict[str, object]]]


def _run_job(
    job_id: str, seed: int, scale: float, collect: bool, backend: str = "scalar"
) -> JobPayload:
    """Pool worker entry point (only plain data crosses processes).

    When *collect* is set the job runs inside a fresh telemetry scope so
    every instrumented component (engine, reservoir, executors) reports
    into a snapshot the parent can merge.  *backend* reaches only the
    experiments that declare ``uses_backend``.
    """
    exp = get_experiment(job_id)
    kwargs = {"backend": backend} if exp.uses_backend else {}
    if not collect:
        return exp.runner(seed, scale, **kwargs), None
    telemetry = Telemetry()
    with telemetry_scope(telemetry):
        text = exp.runner(seed, scale, **kwargs)
    return text, telemetry.snapshot()


def _metric_summary_rows(
    suite: Telemetry, job_ids: List[str]
) -> List[List[str]]:
    """Per-experiment headline counters for the metrics summary table."""
    counters = (
        ("reboots", "kernel.reboots"),
        ("power fails", "kernel.power_failures"),
        ("checkpoints", "kernel.checkpoints"),
        ("tasks done", "kernel.tasks_completed"),
        ("brownouts", "power.brownouts"),
    )
    snapshot = suite.metrics.snapshot()
    rows: List[List[str]] = []
    for job_id in job_ids:
        row = [job_id]
        for _label, metric in counters:
            entry = snapshot.get(f"exp.{job_id}.{metric}")
            row.append(str(int(entry["value"])) if entry else "-")
        rows.append(row)
    return rows


def _usable_payload(payload: object, collect: bool) -> bool:
    """Whether a cached payload can serve this run's collect setting."""
    return (
        isinstance(payload, tuple)
        and len(payload) == 2
        and isinstance(payload[0], str)
        and (not collect or payload[1] is not None)
    )


def _campaign_identity(
    dag: CampaignDag,
    keys: Dict[str, str],
    seed: int,
    scale: float,
    backend: str,
    fault_hash: Optional[str],
) -> Dict[str, object]:
    """The checkpoint's identity block: what must match to resume."""
    return {
        "name": "run-all",
        "seed": seed,
        "scale": scale,
        "backend": backend,
        "fault_hash": fault_hash,
        "fingerprint": code_fingerprint(),
        "nodes": {
            node: {"after": list(dag.predecessors(node)), "key": keys[node]}
            for node in dag.nodes
        },
    }


def main(
    seed: int = 0,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    clear_cache: bool = False,
    cache_dir: Optional[Path] = None,
    metrics_out: Optional[Path] = None,
    trace_out: Optional[Path] = None,
    inject: Optional[Path] = None,
    retry: Optional[RetryPolicy] = None,
    backend: str = "scalar",
    resume: bool = False,
    on_error: str = "capture",
    chaos=None,
) -> None:
    """Run (or replay, or resume) the full suite.

    Args:
        seed: root seed for schedules and noise.
        scale: fraction of the paper's event counts.
        jobs: worker processes (``1`` forces serial; ``None`` uses
            ``REPRO_JOBS`` / the CPU count).  Zero or negative counts
            are rejected.
        use_cache: replay unchanged experiments from the result cache.
        clear_cache: drop every cached entry (and the campaign
            checkpoint) before running.
        cache_dir: cache location override (default ``.repro-cache`` or
            ``REPRO_CACHE_DIR``).
        metrics_out: write suite + per-experiment metrics as JSONL here.
        trace_out: write per-experiment trace records as JSONL here.
        inject: fault schedule JSON (:mod:`repro.faults`); its
            ``worker_crash`` faults drive deterministic chaos and its
            hash joins every cache key.
        retry: retry policy for failed experiments (default: 3 attempts
            with backoff, jitter seeded by *seed*).
        backend: simulation engine for the grid-shaped experiments that
            declare ``uses_backend`` ("scalar" or "vec"); the rest of
            the suite always runs on the scalar engine.
        resume: skip tasks the campaign checkpoint records as complete
            (requires the cache; a key mismatch or missing payload
            re-runs the task, never a wrong skip).
        on_error: ``"capture"`` (default) degrades a permanently failed
            experiment into an error row and blocks its dependents;
            ``"raise"`` aborts the campaign at the first permanent
            failure, leaving the checkpoint behind for ``--resume``.
        chaos: explicit :class:`~repro.faults.inject.WorkerChaos`
            override for tests (``--inject`` is the user-facing path).
    """
    if jobs is not None and jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {jobs}")
    if backend not in ("scalar", "vec"):
        raise ConfigurationError(f"--backend must be scalar or vec, got {backend!r}")
    if resume and not use_cache:
        raise ConfigurationError(
            "--resume replays completed tasks from the result cache; "
            "it cannot be combined with --no-cache"
        )
    for flag, path in (("--metrics-out", metrics_out), ("--trace-out", trace_out)):
        if path is not None and not Path(path).parent.is_dir():
            raise ConfigurationError(
                f"{flag}: directory {Path(path).parent} does not exist"
            )
    started = time.time()
    jobs = default_jobs() if jobs is None else jobs
    collect = metrics_out is not None or trace_out is not None
    suite_jobs: List[Experiment] = _REGISTRY.suite()
    retry = retry if retry is not None else RetryPolicy(seed=seed)

    fault_hash = None
    if inject is not None:
        schedule = load_fault_schedule(Path(inject))
        chaos = build_injector(schedule).worker_chaos()
        fault_hash = fault_schedule_hash(schedule)
        ignored = len(schedule.sim_faults())
        if ignored:
            print(
                f"[faults] note: {ignored} simulation fault(s) in "
                f"{schedule.name!r} apply to single runs "
                "(`repro run --inject`), not the campaign level; "
                "only worker_crash faults act here"
            )

    cache = ResultCache(**({"root": cache_dir} if cache_dir is not None else {}))
    cache.enabled = use_cache
    store = CheckpointStore(cache.root / CHECKPOINT_NAME)
    if clear_cache:
        removed = cache.clear()
        store.clear()
        print(f"[cache] cleared {removed} entries from {cache.root}")

    # Dependency graph + per-task keys.  A malformed declaration (cycle,
    # unknown predecessor) raises DagError here, before any dispatch.
    dag = CampaignDag.from_experiments(suite_jobs)
    keys: Dict[str, str] = {
        job.job_id: result_key(
            job.job_id,
            job.params(seed, scale, backend),
            spec_hash=job.spec_hash(seed, scale),
            fault_hash=fault_hash,
        )
        for job in suite_jobs
    }

    print("#" * 70)
    print(
        f"# Capybara evaluation suite (seed={seed}, scale={scale}, "
        f"jobs={jobs}, cache={'on' if use_cache else 'off'}, "
        f"telemetry={'on' if collect else 'off'}"
        + (f", backend={backend}" if backend != "scalar" else "")
        + (f", chaos={chaos.mode}x{chaos.max_crashes}" if chaos is not None else "")
        + (", resume" if resume else "")
        + ")"
    )
    print("#" * 70)

    suite = Telemetry()
    outputs: Dict[str, str] = {}
    snapshots: Dict[str, Optional[Dict[str, object]]] = {}
    sources: Dict[str, str] = {}
    resumed_seconds: Dict[str, float] = {}

    # Resume partition: a checkpointed completion is honoured only when
    # its recorded key equals the key this run computes (keys embed the
    # code fingerprint, params, and fault hash — any drift re-runs the
    # task) AND the cached payload is intact and collect-compatible.
    if resume:
        state = store.load_or_quarantine(suite)
        if state is not None:
            for task in state.completed:
                node = task.node
                if node not in keys or task.key != keys[node]:
                    continue
                payload = cache.get(keys[node])
                if not _usable_payload(payload, collect):
                    continue
                outputs[node], snapshots[node] = payload
                sources[node] = "resume"
                resumed_seconds[node] = task.seconds

    # Plain cache partition for everything the checkpoint didn't cover.
    pending: List[Experiment] = []
    for job in suite_jobs:
        if job.job_id in sources:
            continue
        payload = cache.get(keys[job.job_id])
        if _usable_payload(payload, collect):
            outputs[job.job_id], snapshots[job.job_id] = payload
            sources[job.job_id] = "cache"
        else:
            pending.append(job)

    # Fresh checkpoint state for this run: skipped tasks are recorded
    # up front, executed tasks append as they complete.  Checkpointing
    # rides the cache (the payloads it points at live there), so
    # --no-cache runs leave no state file behind.
    state = CampaignState(
        campaign=_campaign_identity(dag, keys, seed, scale, backend, fault_hash)
    )
    for job in suite_jobs:
        source = sources.get(job.job_id)
        if source is not None:
            state.record(
                CompletedTask(
                    node=job.job_id,
                    key=keys[job.job_id],
                    source=source,
                    seconds=resumed_seconds.get(job.job_id, 0.0),
                    attempts=0,
                    seq=len(state.completed),
                )
            )
    if cache.enabled:
        store.save(state)

    report = ParallelReport()
    if pending:
        def _checkpoint(node: str, result: object, timing) -> None:
            cache.put(keys[node], result)
            state.record(
                CompletedTask(
                    node=node,
                    key=keys[node],
                    source="ran",
                    seconds=timing.seconds,
                    attempts=timing.attempts,
                    seq=len(state.completed),
                )
            )
            if cache.enabled:
                store.save(state)

        pool = WorkerPool(jobs=jobs)
        try:
            results = run_dag(
                dag,
                _run_job,
                {
                    job.job_id: (job.job_id, seed, scale, collect, backend)
                    for job in pending
                },
                pool=pool,
                retry=retry,
                chaos=chaos,
                on_error=on_error,
                telemetry=suite,
                report=report,
                on_complete=_checkpoint,
                completed=[job_id for job_id in sources],
            )
        finally:
            pool.shutdown()
        for job in pending:
            result = results[job.job_id]
            if isinstance(result, TaskError):
                # Graceful degradation: a permanently failing experiment
                # becomes a structured error row (its dependents blocked
                # rows), never a cached entry.
                outputs[job.job_id] = str(result) + "\n"
                snapshots[job.job_id] = None
                sources[job.job_id] = (
                    "blocked" if result.attempts == 0 else "error"
                )
                continue
            text, snapshot = result
            outputs[job.job_id] = text
            snapshots[job.job_id] = snapshot
            sources[job.job_id] = "ran"

    # Deterministic presentation order, independent of completion order.
    for job in suite_jobs:
        marker = {
            "cache": " [cache hit]",
            "resume": " [resumed]",
            "error": " [FAILED]",
            "blocked": " [BLOCKED]",
        }.get(sources[job.job_id], "")
        print(f"\n## {job.title}{marker}")
        print(outputs[job.job_id], end="" if outputs[job.job_id].endswith("\n") else "\n")

    # Timing / provenance summary.
    seconds_by_id = {timing.label: timing.seconds for timing in report.timings}
    attempts_by_id = {timing.label: timing.attempts for timing in report.timings}
    rows = [
        [
            job.job_id,
            sources[job.job_id],
            f"{seconds_by_id[job.job_id]:.1f}s" if job.job_id in seconds_by_id else "-",
            str(attempts_by_id.get(job.job_id, "-")),
        ]
        for job in suite_jobs
    ]
    print()
    print(
        format_table(
            ["Experiment", "Source", "Task time", "Attempts"],
            rows,
            title=f"Execution summary ({report.mode}, jobs={report.jobs})",
        )
    )
    hits = sum(1 for source in sources.values() if source in ("cache", "resume"))
    failures = sum(1 for source in sources.values() if source == "error")
    blocked = sum(1 for source in sources.values() if source == "blocked")
    print(
        f"\n[total: {time.time() - started:.0f}s elapsed; "
        f"{hits}/{len(suite_jobs)} experiments from cache; "
        f"task time {report.total_task_seconds:.0f}s"
        + (f"; {failures} experiment(s) FAILED" if failures else "")
        + (f"; {blocked} experiment(s) BLOCKED" if blocked else "")
        + "]"
    )

    # Post-run campaign report: critical path over everything this run
    # knows a duration for (fresh timings plus checkpointed ones).
    report_seconds = dict(resumed_seconds)
    report_seconds.update(seconds_by_id)
    dag_report = build_report(dag, report_seconds, jobs=jobs)
    print()
    print(dag_report.format())
    emit_report_telemetry(dag_report, suite)

    if collect:
        _emit_telemetry(
            suite, suite_jobs, snapshots, sources, seconds_by_id, cache,
            jobs, time.time() - started, metrics_out, trace_out,
        )


def _emit_telemetry(
    suite: Telemetry,
    suite_jobs: List[Experiment],
    snapshots: Dict[str, Optional[Dict[str, object]]],
    sources: Dict[str, str],
    seconds_by_id: Dict[str, float],
    cache: ResultCache,
    jobs: int,
    elapsed: float,
    metrics_out: Optional[Path],
    trace_out: Optional[Path],
) -> None:
    """Merge per-experiment snapshots, write JSONL, print the summary.

    *suite* arrives holding the campaign counters the dispatcher
    recorded (``campaign.retries`` / ``campaign.gave_up`` /
    ``campaign.blocked``) plus the report gauges; suite-level gauges
    and per-experiment snapshots merge into it here.
    """
    suite.set_gauge("suite.jobs", jobs)
    suite.set_gauge("suite.wall_seconds", elapsed)
    suite.inc("suite.cache.hits", cache.stats.hits)
    suite.inc("suite.cache.misses", cache.stats.misses)
    suite.inc("suite.cache.stores", cache.stats.stores)
    if cache.stats.corrupt:
        suite.inc("suite.cache.corrupt", cache.stats.corrupt)
    suite.inc(
        "suite.experiments_from_cache",
        sum(1 for source in sources.values() if source in ("cache", "resume")),
    )
    resumed = sum(1 for source in sources.values() if source == "resume")
    if resumed:
        suite.inc("suite.experiments_resumed", resumed)
    failed = sum(1 for source in sources.values() if source == "error")
    if failed:
        suite.inc("suite.experiments_failed", failed)
    blocked = sum(1 for source in sources.values() if source == "blocked")
    if blocked:
        suite.inc("suite.experiments_blocked", blocked)
    for job in suite_jobs:
        if job.job_id in seconds_by_id:
            suite.observe("suite.experiment_seconds", seconds_by_id[job.job_id])
            suite.set_gauge(
                f"suite.experiment_seconds.{job.job_id}", seconds_by_id[job.job_id]
            )
        snapshot = snapshots.get(job.job_id)
        if snapshot is not None:
            suite.metrics.merge_snapshot(
                snapshot.get("metrics") or {}, prefix=f"exp.{job.job_id}."
            )

    if metrics_out is not None:
        path = write_jsonl(suite.metric_records(scope="suite"), metrics_out)
        print(f"[telemetry] metrics written to {path}")
    if trace_out is not None:
        records: List[Dict[str, object]] = []
        for job in suite_jobs:
            snapshot = snapshots.get(job.job_id)
            for record in (snapshot or {}).get("events") or []:
                tagged = dict(record)
                tagged["experiment"] = job.job_id
                records.append(tagged)
        path = write_jsonl(records, trace_out)
        print(f"[telemetry] {len(records)} trace records written to {path}")

    rows = _metric_summary_rows(suite, [job.job_id for job in suite_jobs])
    print()
    print(
        format_table(
            ["Experiment", "Reboots", "Power fails", "Checkpoints",
             "Tasks done", "Brownouts"],
            rows,
            title="Telemetry summary (per experiment)",
        )
    )


# ---------------------------------------------------------------------------
# Deprecated aliases (pre-registry API)
# ---------------------------------------------------------------------------

def __getattr__(name: str):
    if name == "ExperimentJob":
        warnings.warn(
            "repro.experiments.run_all.ExperimentJob moved to "
            "repro.experiments.registry.Experiment",
            DeprecationWarning,
            stacklevel=2,
        )
        return Experiment
    if name == "EXPERIMENT_JOBS":
        warnings.warn(
            "repro.experiments.run_all.EXPERIMENT_JOBS is replaced by the "
            "experiment registry (repro.experiments.registry.REGISTRY.suite())",
            DeprecationWarning,
            stacklevel=2,
        )
        return _REGISTRY.suite()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _writable_path(text: str) -> Path:
    path = Path(text)
    if not path.parent.is_dir():
        raise argparse.ArgumentTypeError(
            f"directory {path.parent} does not exist"
        )
    return path


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="worker processes, >= 1 (default: REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--serial", action="store_true", help="force single-process execution"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--clear-cache", action="store_true", help="drop cached results first"
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip tasks the campaign checkpoint records as complete",
    )
    parser.add_argument(
        "--inject", type=Path, default=None, metavar="FILE",
        help="fault schedule JSON (repro.faults); worker_crash faults "
        "inject deterministic chaos into the pool",
    )
    parser.add_argument(
        "--backend", choices=["scalar", "vec"], default="scalar",
        help="engine for the grid-shaped experiments (fig03, fig04, "
        "ablation, power-sweep)",
    )
    parser.add_argument(
        "--metrics-out", type=_writable_path, default=None, metavar="FILE",
        help="write suite + per-experiment metrics as JSONL to FILE",
    )
    parser.add_argument(
        "--trace-out", type=_writable_path, default=None, metavar="FILE",
        help="write per-experiment trace records as JSONL to FILE",
    )
    arguments = parser.parse_args()
    main(
        seed=arguments.seed,
        scale=arguments.scale,
        jobs=1 if arguments.serial else arguments.jobs,
        use_cache=not arguments.no_cache,
        clear_cache=arguments.clear_cache,
        metrics_out=arguments.metrics_out,
        trace_out=arguments.trace_out,
        inject=arguments.inject,
        backend=arguments.backend,
        resume=arguments.resume,
    )
