"""Run the complete evaluation suite at paper scale.

Regenerates every figure of the paper's Section 6 plus the Section 5
ablations.  Independent experiments fan out over a process pool
(:mod:`repro.experiments.parallel`) and completed experiments are
replayed from the on-disk result cache (:mod:`repro.experiments.cache`)
when neither their parameters nor the simulator source has changed —
a warm-cache rerun prints every table in seconds.

Run: ``python -m repro.experiments.run_all [--scale S] [--seed N]
[--jobs J | --serial] [--no-cache] [--clear-cache]``
"""

from __future__ import annotations

import argparse
import contextlib
import io
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    ablation,
    capysat_study,
    characterization,
    checkpoint_study,
    debs_comparison,
    interrupt_study,
    power_sweep,
    versatility,
    fig02_fixed_capacity,
    fig03_design_space,
    fig04_volume,
    fig08_accuracy,
    fig09_latency,
    fig10_sensitivity,
    fig11_intersample,
)
from repro.experiments.cache import ResultCache, result_key
from repro.experiments.parallel import ParallelReport, default_jobs, parallel_map
from repro.experiments.runner import format_table, print_result


def _capture(fn: Callable[..., object], *args, **kwargs) -> str:
    """Run *fn*, returning everything it printed."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        fn(*args, **kwargs)
    return buffer.getvalue()


# ---------------------------------------------------------------------------
# Experiment jobs — module-level so the process pool can pickle them.
# Each returns the experiment's full printed output as a string.
# ---------------------------------------------------------------------------

def _job_fig02(seed: int, scale: float) -> str:
    return _capture(fig02_fixed_capacity.main, horizon=600.0)


def _job_fig03(seed: int, scale: float) -> str:
    return _capture(fig03_design_space.main)


def _job_fig04(seed: int, scale: float) -> str:
    return _capture(fig04_volume.main)


def _job_campaigns(seed: int, scale: float) -> str:
    """Figures 8 and 9 share their campaigns, so they form one job."""

    def both() -> None:
        accuracy = fig08_accuracy.run(seed=seed, scale=scale)
        print_result(accuracy.result)
        print()
        latency = fig09_latency.run(seed=seed, scale=scale, accuracy=accuracy)
        print_result(latency.result)

    return _capture(both)


def _job_fig10(seed: int, scale: float) -> str:
    return _capture(fig10_sensitivity.main, seed=seed)


def _job_fig11(seed: int, scale: float) -> str:
    return _capture(fig11_intersample.main, seed=seed)


def _job_characterization(seed: int, scale: float) -> str:
    return _capture(characterization.main)


def _job_capysat(seed: int, scale: float) -> str:
    return _capture(capysat_study.main, seed=seed)


def _job_ablation(seed: int, scale: float) -> str:
    return _capture(ablation.main)


def _job_debs(seed: int, scale: float) -> str:
    return _capture(debs_comparison.main, seed=seed)


def _job_checkpoint(seed: int, scale: float) -> str:
    return _capture(checkpoint_study.main)


def _job_power_sweep(seed: int, scale: float) -> str:
    return _capture(power_sweep.main, seed=seed)


def _job_versatility(seed: int, scale: float) -> str:
    return _capture(versatility.main, seed=seed)


def _job_interrupt(seed: int, scale: float) -> str:
    return _capture(interrupt_study.main, seed=seed)


@dataclass(frozen=True)
class ExperimentJob:
    """One independently runnable, independently cacheable experiment."""

    job_id: str
    title: str
    runner: Callable[[int, float], str]
    uses_seed: bool = False
    uses_scale: bool = False

    def params(self, seed: int, scale: float) -> Dict[str, object]:
        """The cache-key parameters this job actually depends on."""
        params: Dict[str, object] = {}
        if self.uses_seed:
            params["seed"] = seed
        if self.uses_scale:
            params["scale"] = scale
        return params


#: Display/submission order matches the paper's figure numbering.
EXPERIMENT_JOBS: List[ExperimentJob] = [
    ExperimentJob("fig02", "Figure 2: fixed-capacity execution", _job_fig02),
    ExperimentJob("fig03", "Figure 3: atomicity vs capacitance", _job_fig03),
    ExperimentJob("fig04", "Figure 4: atomicity by volume and technology", _job_fig04),
    ExperimentJob(
        "campaigns",
        "Figures 8 and 9: accuracy and latency campaigns",
        _job_campaigns,
        uses_seed=True,
        uses_scale=True,
    ),
    ExperimentJob(
        "fig10",
        "Figure 10: sensitivity to event inter-arrival",
        _job_fig10,
        uses_seed=True,
    ),
    ExperimentJob(
        "fig11", "Figure 11: inter-sample distributions", _job_fig11, uses_seed=True
    ),
    ExperimentJob(
        "characterization", "Section 6.5: characterization", _job_characterization
    ),
    ExperimentJob(
        "capysat", "Section 6.6: CapySat case study", _job_capysat, uses_seed=True
    ),
    ExperimentJob("ablation", "Section 5 ablations", _job_ablation),
    ExperimentJob(
        "debs", "Related work: DEBS comparison", _job_debs, uses_seed=True
    ),
    ExperimentJob("checkpoint", "Related work: checkpoint study", _job_checkpoint),
    ExperimentJob(
        "power-sweep", "Related work: input-power sweep", _job_power_sweep,
        uses_seed=True,
    ),
    ExperimentJob(
        "versatility", "Related work: versatility study", _job_versatility,
        uses_seed=True,
    ),
    ExperimentJob(
        "interrupt", "Related work: interrupt study", _job_interrupt, uses_seed=True
    ),
]

_JOBS_BY_ID: Dict[str, ExperimentJob] = {job.job_id: job for job in EXPERIMENT_JOBS}


def _run_job(job_id: str, seed: int, scale: float) -> str:
    """Pool worker entry point (only plain strings/ints cross processes)."""
    return _JOBS_BY_ID[job_id].runner(seed, scale)


def main(
    seed: int = 0,
    scale: float = 1.0,
    jobs: Optional[int] = None,
    use_cache: bool = True,
    clear_cache: bool = False,
    cache_dir: Optional[Path] = None,
) -> None:
    """Run (or replay) the full suite.

    Args:
        seed: root seed for schedules and noise.
        scale: fraction of the paper's event counts.
        jobs: worker processes (``1`` forces serial; ``None`` uses
            ``REPRO_JOBS`` / the CPU count).
        use_cache: replay unchanged experiments from the result cache.
        clear_cache: drop every cached entry before running.
        cache_dir: cache location override (default ``.repro-cache`` or
            ``REPRO_CACHE_DIR``).
    """
    started = time.time()
    jobs = default_jobs() if jobs is None else max(1, jobs)

    cache = ResultCache(**({"root": cache_dir} if cache_dir is not None else {}))
    cache.enabled = use_cache
    if clear_cache:
        removed = cache.clear()
        print(f"[cache] cleared {removed} entries from {cache.root}")

    print("#" * 70)
    print(
        f"# Capybara evaluation suite (seed={seed}, scale={scale}, "
        f"jobs={jobs}, cache={'on' if use_cache else 'off'})"
    )
    print("#" * 70)

    # Partition into cached replays and experiments that must run.
    outputs: Dict[str, str] = {}
    sources: Dict[str, str] = {}
    pending: List[ExperimentJob] = []
    for job in EXPERIMENT_JOBS:
        key = result_key(job.job_id, job.params(seed, scale))
        payload = cache.get(key)
        if payload is not None:
            outputs[job.job_id] = payload
            sources[job.job_id] = "cache"
        else:
            pending.append(job)

    report = ParallelReport()
    if pending:
        fresh = parallel_map(
            _run_job,
            [(job.job_id, seed, scale) for job in pending],
            jobs=jobs,
            labels=[job.job_id for job in pending],
            report=report,
        )
        for job, text in zip(pending, fresh):
            outputs[job.job_id] = text
            sources[job.job_id] = "ran"
            cache.put(result_key(job.job_id, job.params(seed, scale)), text)

    # Deterministic presentation order, independent of completion order.
    for job in EXPERIMENT_JOBS:
        marker = " [cache hit]" if sources[job.job_id] == "cache" else ""
        print(f"\n## {job.title}{marker}")
        print(outputs[job.job_id], end="" if outputs[job.job_id].endswith("\n") else "\n")

    # Timing / provenance summary.
    seconds_by_id = {timing.label: timing.seconds for timing in report.timings}
    rows = [
        [
            job.job_id,
            sources[job.job_id],
            f"{seconds_by_id[job.job_id]:.1f}s" if job.job_id in seconds_by_id else "-",
        ]
        for job in EXPERIMENT_JOBS
    ]
    print()
    print(
        format_table(
            ["Experiment", "Source", "Task time"],
            rows,
            title=f"Execution summary ({report.mode}, jobs={report.jobs})",
        )
    )
    hits = sum(1 for source in sources.values() if source == "cache")
    print(
        f"\n[total: {time.time() - started:.0f}s elapsed; "
        f"{hits}/{len(EXPERIMENT_JOBS)} experiments from cache; "
        f"task time {report.total_task_seconds:.0f}s]"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--serial", action="store_true", help="force single-process execution"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--clear-cache", action="store_true", help="drop cached results first"
    )
    arguments = parser.parse_args()
    main(
        seed=arguments.seed,
        scale=arguments.scale,
        jobs=1 if arguments.serial else arguments.jobs,
        use_cache=not arguments.no_cache,
        clear_cache=arguments.clear_cache,
    )
