"""Run the complete evaluation suite at paper scale.

Regenerates every figure of the paper's Section 6 plus the Section 5
ablations, printing each table as it completes.  At full scale this
takes tens of minutes; pass ``--scale 0.25`` for a quick pass.

Run: ``python -m repro.experiments.run_all [--scale S] [--seed N]``
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    ablation,
    capysat_study,
    characterization,
    checkpoint_study,
    debs_comparison,
    interrupt_study,
    power_sweep,
    versatility,
    fig02_fixed_capacity,
    fig03_design_space,
    fig04_volume,
    fig08_accuracy,
    fig09_latency,
    fig10_sensitivity,
    fig11_intersample,
)
from repro.experiments.runner import print_result


def main(seed: int = 0, scale: float = 1.0) -> None:
    started = time.time()

    def stamp(label: str) -> None:
        print(f"\n[{label}: {time.time() - started:.0f}s elapsed]\n")

    print("#" * 70)
    print(f"# Capybara evaluation suite (seed={seed}, scale={scale})")
    print("#" * 70)

    print("\n## Figure 2: fixed-capacity execution")
    fig02_fixed_capacity.main(horizon=600.0)
    print("\n## Figure 3: atomicity vs capacitance")
    fig03_design_space.main()
    print("\n## Figure 4: atomicity by volume and technology")
    fig04_volume.main()
    stamp("design space done")

    print("## Figures 8 and 9: accuracy and latency campaigns")
    accuracy = fig08_accuracy.run(seed=seed, scale=scale)
    print_result(accuracy.result)
    print()
    latency = fig09_latency.run(seed=seed, scale=scale, accuracy=accuracy)
    print_result(latency.result)
    stamp("campaigns done")

    print("## Figure 10: sensitivity to event inter-arrival")
    fig10_sensitivity.main(seed=seed)
    stamp("sensitivity done")

    print("## Figure 11: inter-sample distributions")
    fig11_intersample.main(seed=seed)

    print("\n## Section 6.5: characterization")
    characterization.main()
    print("\n## Section 6.6: CapySat case study")
    capysat_study.main(seed=seed)
    print("\n## Section 5 ablations")
    ablation.main()
    print("\n## Related-work studies (beyond the paper's figures)")
    debs_comparison.main(seed=seed)
    print()
    checkpoint_study.main()
    print()
    power_sweep.main(seed=seed)
    print()
    versatility.main(seed=seed)
    print()
    interrupt_study.main(seed=seed)
    stamp("total")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    arguments = parser.parse_args()
    main(seed=arguments.seed, scale=arguments.scale)
