"""Power-system versatility across harvester types (Section 2.2.3).

The paper motivates Capybara as "a power system that is reusable across
a variety of applications" and contrasts it with designs
over-specialised to one input power level or source.  This study runs
the *same* TempAlarm application, unchanged, from three qualitatively
different sources:

* the solar panel pair under the dimmed halogen lamp (the paper's rig);
* a regulated bench supply (the GRC/CSR rig style);
* a far-field RF harvester (Powercast-class, hundreds of microwatts) —
  the weak-voltage source the input booster's boost path exists for.

Expected shape: the application keeps working everywhere — only its
tempo changes with the harvested power (alarm latency stretches as the
source weakens), and the reconfigurable small mode keeps sampling alive
even at RF power levels where the Fixed design goes almost silent.

Run: ``python -m repro.experiments.versatility``
"""

from __future__ import annotations

from typing import Dict

from repro.apps.base import assemble_app, make_binding
from repro.apps.rigs import EventSchedule, ThermalRig
from repro.apps.temp_alarm import (
    ALARM_HIGH,
    ALARM_LOW,
    APP_NAME,
    EVENT_DURATION,
    WARMUP,
    make_banks,
    make_graph,
)
from repro.core.builder import SystemKind
from repro.device.mcu import MCU_MSP430FR5969
from repro.device.radio import BLE_CC2650
from repro.device.sensors import SENSOR_TMP36
from repro.energy.environment import DimmedLampTrace
from repro.energy.harvester import (
    Harvester,
    RegulatedSupply,
    RFHarvester,
    SolarPanel,
)
from repro.experiments import metrics
from repro.experiments.runner import ExperimentResult, print_result
from repro.sim.rand import RandomStreams


def harvesters() -> Dict[str, Harvester]:
    """The three sources, in descending power order."""
    return {
        "bench-supply": RegulatedSupply(voltage=3.0, max_power=2.0e-3),
        "solar-lamp": SolarPanel(
            cells_in_series=2,
            irradiance=DimmedLampTrace(full_irradiance=30.0, duty=0.42),
        ),
        # A strong RF field (short range): ~0.3 mW through a multi-stage
        # rectifier (higher voltage at tiny current) — the weak source
        # the input booster's boost path exists for.
        "rf-field": RFHarvester(transmit_power=3.0, distance=1.7, voltage=1.5),
    }


def run(
    seed: int = 0,
    event_count: int = 8,
    mean_interarrival: float = 250.0,
) -> ExperimentResult:
    streams = RandomStreams(seed)
    schedule = EventSchedule.poisson(
        streams.get("events"),
        mean_interarrival=mean_interarrival,
        count=event_count,
        duration=EVENT_DURATION,
        kind="temperature",
        start_offset=WARMUP,
    )
    rig = ThermalRig(
        schedule,
        horizon=schedule.horizon + 240.0,
        alarm_low=ALARM_LOW,
        alarm_high=ALARM_HIGH,
    )
    binding = make_binding({"tmp36": rig.temp_reading})
    horizon = schedule.horizon + 180.0

    result = ExperimentResult(
        experiment="versatility",
        columns=["Harvester", "System", "Reported", "MeanLatency", "Samples"],
    )
    result.notes.append(
        f"same application and banks across all sources; seed={seed}"
    )
    for source_name, harvester in harvesters().items():
        for kind in (SystemKind.FIXED, SystemKind.CAPY_P):
            spec = make_banks()
            spec.harvester = harvester
            instance = assemble_app(
                name=APP_NAME,
                kind=kind,
                spec=spec,
                mcu=MCU_MSP430FR5969,
                graph=make_graph(),
                binding=binding,
                schedule=schedule,
                sensors=[SENSOR_TMP36],
                radio=BLE_CC2650,
                rng=streams.get(f"radio-{source_name}-{kind.value}"),
                extras={"rig": rig},
            )
            instance.run(horizon)
            latencies = metrics.event_latencies(instance)
            reported = len(metrics.reported_ids(instance.trace))
            key = f"{source_name}/{kind.value}"
            result.values[f"{key}/reported"] = float(reported)
            result.values[f"{key}/mean_latency"] = metrics.mean(latencies)
            result.values[f"{key}/samples"] = float(len(instance.trace.samples))
            result.rows.append(
                [
                    source_name,
                    kind.value,
                    f"{reported}/{event_count}",
                    f"{metrics.mean(latencies):.1f}s" if latencies else "-",
                    str(len(instance.trace.samples)),
                ]
            )
    return result


def main(seed: int = 0) -> ExperimentResult:
    result = run(seed=seed)
    print_result(result)
    return result


if __name__ == "__main__":
    main()
