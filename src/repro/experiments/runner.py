"""Shared experiment harness: result containers and text reporting.

Every ``fig*`` module returns an :class:`ExperimentResult`; the bench
suite asserts on its ``values`` and the ``main()`` entry points print
:func:`format_table` renderings — the same rows/series the paper's
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """A named experiment outcome.

    Attributes:
        experiment: identifier, e.g. "fig08-accuracy".
        values: flat metric map, e.g. {"TempAlarm/CB-P/accuracy": 0.98}.
        rows: ordered table rows for display.
        columns: column headers for :attr:`rows`.
        notes: free-form provenance (seeds, horizons, parameters).
    """

    experiment: str
    values: Dict[str, float] = field(default_factory=dict)
    rows: List[List[str]] = field(default_factory=list)
    columns: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def value(self, key: str) -> float:
        if key not in self.values:
            raise KeyError(
                f"{self.experiment}: no metric {key!r}; "
                f"available: {sorted(self.values)[:10]}..."
            )
        return self.values[key]


def format_table(
    columns: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    widths = [len(str(header)) for header in columns]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(columns))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def print_result(result: ExperimentResult) -> None:
    """Print an experiment result as its table plus notes."""
    print(format_table(result.columns, result.rows, title=result.experiment))
    for note in result.notes:
        print(f"  note: {note}")


def percent(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.0f}%"


def seconds(value: float) -> str:
    """Format a duration in seconds."""
    return f"{value:.1f}s"
