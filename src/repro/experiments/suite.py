"""The built-in experiment catalogue.

Every paper figure and study registers itself here with the
:func:`~repro.experiments.registry.experiment` decorator; the registry
(not a hand-maintained list) is what ``run_all`` and the CLI iterate.
Runners are module-level functions so the ``run_all`` process pool can
pickle them by qualified name, and each imports its experiment module
lazily so merely loading the catalogue stays cheap.

Registration order is display order and follows the paper's figure
numbering.
"""

from __future__ import annotations

import contextlib
import io
from typing import Callable

from repro.experiments.registry import experiment


def _capture(fn: Callable[..., object], *args, **kwargs) -> str:
    """Run *fn*, returning everything it printed."""
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        fn(*args, **kwargs)
    return buffer.getvalue()


def _campaign_scenarios(seed: int, scale: float):
    """Declarative scenarios behind the fig08/fig09 campaigns; their
    canonical hash joins those experiments' cache keys, so editing a
    campaign scenario invalidates exactly the campaign jobs."""
    from repro.experiments.fig08_accuracy import declared_scenarios

    return declared_scenarios(seed, scale)


@experiment("fig02", "Figure 2: fixed-capacity execution")
def fig02(seed: int, scale: float) -> str:
    from repro.experiments import fig02_fixed_capacity

    return _capture(fig02_fixed_capacity.main, horizon=600.0)


@experiment("fig03", "Figure 3: atomicity vs capacitance", uses_backend=True)
def fig03(seed: int, scale: float, backend: str = "scalar") -> str:
    from repro.experiments import fig03_design_space

    return _capture(fig03_design_space.main, backend=backend)


@experiment(
    "fig04", "Figure 4: atomicity by volume and technology", uses_backend=True
)
def fig04(seed: int, scale: float, backend: str = "scalar") -> str:
    from repro.experiments import fig04_volume

    return _capture(fig04_volume.main, backend=backend)


@experiment(
    "fig08",
    "Figure 8: event-detection accuracy",
    uses_seed=True,
    uses_scale=True,
    in_suite=False,  # the suite runs it via the shared "campaigns" job
    scenarios=_campaign_scenarios,
)
def fig08(seed: int, scale: float) -> str:
    from repro.experiments import fig08_accuracy

    return _capture(fig08_accuracy.main, seed=seed, scale=scale)


@experiment(
    "fig09",
    "Figure 9: reaction latency",
    uses_seed=True,
    uses_scale=True,
    in_suite=False,  # the suite runs it via the shared "campaigns" job
    scenarios=_campaign_scenarios,
)
def fig09(seed: int, scale: float) -> str:
    from repro.experiments import fig09_latency

    return _capture(fig09_latency.main, seed=seed, scale=scale)


@experiment(
    "campaigns",
    "Figures 8 and 9: accuracy and latency campaigns",
    uses_seed=True,
    uses_scale=True,
    scenarios=_campaign_scenarios,
)
def campaigns(seed: int, scale: float) -> str:
    """Figures 8 and 9 share their campaigns, so they form one job."""
    from repro.experiments import fig08_accuracy, fig09_latency
    from repro.experiments.runner import print_result

    def both() -> None:
        accuracy = fig08_accuracy.run(seed=seed, scale=scale)
        print_result(accuracy.result)
        print()
        latency = fig09_latency.run(seed=seed, scale=scale, accuracy=accuracy)
        print_result(latency.result)

    return _capture(both)


@experiment(
    "fig10", "Figure 10: sensitivity to event inter-arrival", uses_seed=True
)
def fig10(seed: int, scale: float) -> str:
    from repro.experiments import fig10_sensitivity

    return _capture(fig10_sensitivity.main, seed=seed)


@experiment("fig11", "Figure 11: inter-sample distributions", uses_seed=True)
def fig11(seed: int, scale: float) -> str:
    from repro.experiments import fig11_intersample

    return _capture(fig11_intersample.main, seed=seed)


@experiment("characterization", "Section 6.5: characterization")
def characterization(seed: int, scale: float) -> str:
    from repro.experiments import characterization as module

    return _capture(module.main)


@experiment("capysat", "Section 6.6: CapySat case study", uses_seed=True)
def capysat(seed: int, scale: float) -> str:
    from repro.experiments import capysat_study

    return _capture(capysat_study.main, seed=seed)


@experiment(
    "ablation",
    "Section 5 ablations",
    uses_backend=True,
    # Interpretation order: the ablations discuss deltas against the
    # input-power sweep's operating points, so schedule them after it.
    # Scheduling metadata only — results are pure functions of their
    # arguments, so the dependency never touches cache keys.
    after=("power-sweep",),
)
def ablation(seed: int, scale: float, backend: str = "scalar") -> str:
    from repro.experiments import ablation as module

    return _capture(module.main, backend=backend)


@experiment("debs", "Related work: DEBS comparison", uses_seed=True)
def debs(seed: int, scale: float) -> str:
    from repro.experiments import debs_comparison

    return _capture(debs_comparison.main, seed=seed)


@experiment("checkpoint", "Related work: checkpoint study")
def checkpoint(seed: int, scale: float) -> str:
    from repro.experiments import checkpoint_study

    return _capture(checkpoint_study.main)


@experiment(
    "power-sweep",
    "Related work: input-power sweep",
    uses_seed=True,
    uses_backend=True,
)
def power_sweep(seed: int, scale: float, backend: str = "scalar") -> str:
    from repro.experiments import power_sweep as module

    return _capture(module.main, seed=seed, backend=backend)


def _fleet_scenarios(seed: int, scale: float):
    from repro.experiments.fleet_campaign import declared_scenarios

    return declared_scenarios(seed, scale)


@experiment(
    "fleet",
    "Fleet campaign: planner-batched duty-cycle availability",
    uses_seed=True,
    uses_scale=True,
    uses_backend=True,
    scenarios=_fleet_scenarios,
    # The fleet duty-cycle points extend the sweep's power grid; like
    # the ablations this orders interpretation, not data flow.
    after=("power-sweep",),
)
def fleet(seed: int, scale: float, backend: str = "scalar") -> str:
    from repro.experiments import fleet_campaign

    return _capture(fleet_campaign.main, seed=seed, scale=scale, backend=backend)


@experiment("versatility", "Related work: versatility study", uses_seed=True)
def versatility(seed: int, scale: float) -> str:
    from repro.experiments import versatility as module

    return _capture(module.main, seed=seed)


@experiment("interrupt", "Related work: interrupt study", uses_seed=True)
def interrupt(seed: int, scale: float) -> str:
    from repro.experiments import interrupt_study

    return _capture(interrupt_study.main, seed=seed)
