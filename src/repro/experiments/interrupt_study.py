"""Polling vs interrupt-driven reactivity (extension study).

The paper's asynchronous tasks (Section 2.1.1) "present a need to react
to an unpredictable event".  Its applications detect events by
*polling* — the sense loop wakes, samples, sleeps in charge gaps.  Real
sensors also offer threshold-interrupt pins (APDS proximity interrupts,
magnetometer threshold engines), letting the MCU sleep until the world
changes.

This study runs CSR both ways on the same Capy-P platform and schedule:

* **polling** — the paper's loop: sample the magnetometer continuously
  on the small mode;
* **interrupt-driven** — arm the magnetometer's wake comparator and
  sleep (:class:`~repro.kernel.tasks.WaitForInterrupt`); the
  pre-charged burst then fires the collect/report pipeline on wake.

Expected shape: both report essentially all events, but the interrupt
variant takes orders of magnitude fewer sensor activations — it spends
the harvest *holding its pre-charged burst ready* instead of burning it
on empty polls.  Capybara's pre-charge is what makes the sleeping
strategy viable at all: without a charged burst bank, waking up is only
the beginning of a long charge.

Run: ``python -m repro.experiments.interrupt_study``
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import assemble_app, make_binding
from repro.apps.csr import (
    DISTANCE_SAMPLES,
    FIELD_THRESHOLD,
    MODE_BURST,
    MODE_SMALL,
    POLL_OPS,
    make_banks,
    make_graph,
)
from repro.apps.rigs import EventSchedule, PendulumRig
from repro.core.builder import SystemKind
from repro.device.mcu import MCU_CC2650
from repro.device.radio import BLE_CC2650
from repro.device.sensors import (
    SENSOR_APDS9960_PROXIMITY,
    SENSOR_LED,
    SENSOR_LSM303_MAGNETOMETER,
)
from repro.experiments import metrics
from repro.experiments.runner import ExperimentResult, print_result
from repro.kernel.annotations import BurstAnnotation, PreburstAnnotation
from repro.kernel.tasks import (
    Compute,
    Sample,
    Task,
    TaskGraph,
    Transmit,
    WaitForInterrupt,
)
from repro.sim.rand import RandomStreams

#: Watchdog bound on each armed wait (re-arm and check in every period).
WATCHDOG = 120.0


def interrupt_graph() -> TaskGraph:
    """CSR with an armed magnetometer threshold interrupt."""

    def wait(ctx):
        reading = yield WaitForInterrupt("magnetometer", timeout=WATCHDOG)
        if reading.value > FIELD_THRESHOLD:
            ctx.write("trigger_event", reading.event_id)
            return "collect"
        return "wait"

    def collect(ctx):
        event_id = ctx.read("trigger_event")
        distance = yield Sample("apds9960-proximity", DISTANCE_SAMPLES)
        yield Sample("led")
        yield Compute(POLL_OPS)
        yield Transmit("csr-report", 8, event_id=event_id)
        ctx.write("last_reported", event_id)
        ctx.write("last_distance", distance.value)
        return "wait"

    return TaskGraph(
        [
            Task("wait", wait, PreburstAnnotation(MODE_BURST, MODE_SMALL)),
            Task("collect", collect, BurstAnnotation(MODE_BURST)),
        ],
        entry="wait",
    )


def run(seed: int = 0, event_count: int = 15) -> ExperimentResult:
    streams = RandomStreams(seed)
    schedule = EventSchedule.poisson(
        streams.get("events"),
        mean_interarrival=31.5,
        count=event_count,
        duration=2.5,
        kind="magnet",
        start_offset=300.0,
    )
    horizon = schedule.horizon + 60.0

    result = ExperimentResult(
        experiment="interrupt-study",
        columns=[
            "Strategy",
            "Reported",
            "MeanLatency",
            "Sensor activations",
            "Charge cycles",
        ],
    )
    for strategy, graph_builder in (
        ("polling", make_graph),
        ("interrupt", interrupt_graph),
    ):
        rig = PendulumRig(schedule, noise_rng=streams.get(f"sensor-{strategy}"))
        binding = make_binding(
            {
                "magnetometer": rig.magnetometer_reading,
                "apds9960-proximity": rig.distance_reading,
                "led": lambda time: rig.distance_reading(time),
            }
        )
        instance = assemble_app(
            name=f"CSR-{strategy}",
            kind=SystemKind.CAPY_P,
            spec=make_banks(),
            mcu=MCU_CC2650,
            graph=graph_builder(),
            binding=binding,
            schedule=schedule,
            sensors=[
                SENSOR_LSM303_MAGNETOMETER,
                SENSOR_APDS9960_PROXIMITY,
                SENSOR_LED,
            ],
            radio=BLE_CC2650,
            rng=streams.get(f"radio-{strategy}"),
            extras={"rig": rig},
        )
        if strategy == "interrupt":
            instance.executor.interrupt_source = rig.interrupt_source
        instance.run(horizon)
        trace = instance.trace
        reported = len(metrics.reported_ids(trace, "csr-report"))
        latencies = metrics.event_latencies(instance)
        activations = len(trace.sample_times("magnetometer"))
        charges = trace.counters.get("charge_cycles", 0)
        result.values[f"{strategy}/reported"] = float(reported)
        result.values[f"{strategy}/mean_latency"] = metrics.mean(latencies)
        result.values[f"{strategy}/activations"] = float(activations)
        result.values[f"{strategy}/charge_cycles"] = float(charges)
        result.rows.append(
            [
                strategy,
                f"{reported}/{event_count}",
                f"{metrics.mean(latencies):.2f}s",
                str(activations),
                str(charges),
            ]
        )
    result.notes.append(
        "same platform, banks and schedule; the interrupt variant arms "
        "the magnetometer's wake comparator and sleeps on its "
        "pre-charged burst instead of polling"
    )
    return result


def main(seed: int = 0) -> ExperimentResult:
    result = run(seed=seed)
    print_result(result)
    return result


if __name__ == "__main__":
    main()
