"""Metric extraction from application traces.

The paper's Section 6.2-6.4 metrics, computed from the ground-truth
schedule and the device trace:

* **event detection accuracy** — per-event outcomes (GRC's
  correct / misclassified / proximity-only / missed taxonomy, TA's
  reference-relative accuracy, CSR's reported fraction);
* **report latency** — event-to-packet delay (TA measures against the
  continuously-powered reference board);
* **reactivity** — inter-sample interval distributions and their
  missed-event attribution (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.apps.base import AppInstance
from repro.apps.rigs import ThermalRig
from repro.sim.trace import Trace

#: Inter-sample gaps below this are "back-to-back" (grey in Figure 11).
BACK_TO_BACK_THRESHOLD = 1.0


# ---------------------------------------------------------------------------
# GRC outcome taxonomy
# ---------------------------------------------------------------------------

GRC_CORRECT = "correct"
GRC_MISCLASSIFIED = "misclassified"
GRC_PROXIMITY_ONLY = "proximity_only"
GRC_MISSED = "missed"


@dataclass
class OutcomeCounts:
    """Per-category event counts plus the fraction helper."""

    counts: Dict[str, int] = field(default_factory=dict)
    total: int = 0

    def fraction(self, category: str) -> float:
        if self.total == 0:
            return 0.0
        return self.counts.get(category, 0) / self.total


def grc_outcomes(instance: AppInstance) -> OutcomeCounts:
    """Classify every scheduled gesture event (Section 6.2 taxonomy)."""
    trace = instance.trace
    packet_outcome: Dict[int, str] = {}
    for packet in trace.packets:
        if packet.event_id is None:
            continue
        if packet.event_id in packet_outcome:
            continue  # first report wins
        if packet.payload == "gesture:ok":
            packet_outcome[packet.event_id] = GRC_CORRECT
        elif packet.payload == "gesture:bad":
            packet_outcome[packet.event_id] = GRC_MISCLASSIFIED
    gesture_sampled = {
        sample.event_id
        for sample in trace.samples
        if sample.sensor == "apds9960-gesture" and sample.event_id is not None
    }
    result = OutcomeCounts(total=len(instance.schedule))
    for event in instance.schedule.events:
        if event.event_id in packet_outcome:
            outcome = packet_outcome[event.event_id]
        elif event.event_id in gesture_sampled:
            outcome = GRC_PROXIMITY_ONLY
        else:
            outcome = GRC_MISSED
        result.counts[outcome] = result.counts.get(outcome, 0) + 1
    return result


# ---------------------------------------------------------------------------
# TA accuracy (reference-relative) and CSR accuracy
# ---------------------------------------------------------------------------

def reported_ids(trace: Trace, payload_prefix: str = "") -> List[int]:
    """Event ids reported by at least one packet, in first-report order."""
    seen: List[int] = []
    for packet in trace.packets:
        if packet.event_id is None:
            continue
        if payload_prefix and not packet.payload.startswith(payload_prefix):
            continue
        if packet.event_id not in seen:
            seen.append(packet.event_id)
    return seen


def ta_accuracy(dut: AppInstance, reference: AppInstance) -> float:
    """Fraction of reference-reported alarms the DUT also reported.

    Section 6.2: "we only consider events which were successfully
    reported by the continuously-powered board".
    """
    ref_ids = set(reported_ids(reference.trace, "alarm"))
    if not ref_ids:
        return 0.0
    dut_ids = set(reported_ids(dut.trace, "alarm"))
    return len(ref_ids & dut_ids) / len(ref_ids)


def csr_accuracy(instance: AppInstance) -> float:
    """Fraction of magnet events reported by a packet."""
    if not instance.schedule.events:
        return 0.0
    ids = set(reported_ids(instance.trace, "csr-report"))
    return len(ids) / len(instance.schedule)


def grc_accuracy(instance: AppInstance) -> float:
    """Fraction of gesture events correctly decoded and reported."""
    outcomes = grc_outcomes(instance)
    return outcomes.fraction(GRC_CORRECT)


# ---------------------------------------------------------------------------
# Latency
# ---------------------------------------------------------------------------

def event_latencies(instance: AppInstance) -> List[float]:
    """Event-onset-to-first-packet latency for every reported event."""
    latencies: List[float] = []
    starts = {event.event_id: event.start for event in instance.schedule.events}
    for event_id in reported_ids(instance.trace):
        first = instance.trace.first_report_time(event_id)
        if first is not None and event_id in starts:
            latencies.append(first - starts[event_id])
    return latencies


def relative_latencies(
    dut: AppInstance, reference: AppInstance
) -> List[float]:
    """Per-event delay of the DUT's report after the reference board's
    (the TA latency metric of Section 6.3)."""
    delays: List[float] = []
    for event_id in reported_ids(reference.trace):
        ref_time = reference.trace.first_report_time(event_id)
        dut_time = dut.trace.first_report_time(event_id)
        if ref_time is not None and dut_time is not None:
            delays.append(max(0.0, dut_time - ref_time))
    return delays


def mean(values: List[float]) -> float:
    """Arithmetic mean; 0.0 for an empty list."""
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# Reactivity (Figure 11)
# ---------------------------------------------------------------------------

@dataclass
class IntervalBreakdown:
    """Inter-sample interval classification (Figure 11's three colours).

    Attributes:
        back_to_back: gaps under :data:`BACK_TO_BACK_THRESHOLD`.
        quiet: longer gaps during which no event was missed.
        missed_events: longer gaps containing >= 1 missed event.
    """

    back_to_back: List[float] = field(default_factory=list)
    quiet: List[float] = field(default_factory=list)
    missed_events: List[float] = field(default_factory=list)

    @property
    def spaced_count(self) -> int:
        return len(self.quiet) + len(self.missed_events)


def ta_interval_breakdown(
    instance: AppInstance,
    sensor: str = "tmp36",
) -> IntervalBreakdown:
    """Classify the TA inter-sample intervals as Figure 11 does."""
    rig = instance.extras.get("rig")
    if not isinstance(rig, ThermalRig):
        raise ValueError("instance has no ThermalRig in extras['rig']")
    times = instance.trace.sample_times(sensor)
    sampled_event_ids = {
        sample.event_id
        for sample in instance.trace.samples
        if sample.event_id is not None
    }
    # Missed events: the excursion happened, no sample observed it.
    missed_windows: List[Tuple[float, float]] = []
    for event in instance.schedule.events:
        excursion = rig.excursion_for(event.event_id)
        if excursion is None:
            continue
        if event.event_id not in sampled_event_ids:
            missed_windows.append(excursion)
    breakdown = IntervalBreakdown()
    for begin, end in zip(times, times[1:]):
        gap = end - begin
        if gap < BACK_TO_BACK_THRESHOLD:
            breakdown.back_to_back.append(gap)
            continue
        contains_missed = any(
            begin <= window_start <= end for window_start, _ in missed_windows
        )
        if contains_missed:
            breakdown.missed_events.append(gap)
        else:
            breakdown.quiet.append(gap)
    return breakdown
