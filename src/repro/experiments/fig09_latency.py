"""Figure 9: report latency for detected events.

For every event that was successfully reported in the Figure 8 runs,
measure the latency between the event and the packet's arrival at the
sniffer.  TA latency is measured relative to the continuously-powered
reference board (the paper's methodology); GRC and CSR latencies are
absolute from the pendulum actuation.

Paper shapes to reproduce:

* Capy-P keeps TA latency near the reference (~2.5 s) while Capy-R
  pays the full large-bank charge (~64 s) on the critical path;
* Fixed's mean latency is inflated by first-attempt transmission
  failures that retry after a recharge;
* GRC-Fast's latency is lower than GRC-Compact's, which pays a
  recharge between decode and transmit for a substantial fraction of
  events.

Run: ``python -m repro.experiments.fig09_latency``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.builder import SystemKind
from repro.experiments import fig08_accuracy, metrics
from repro.experiments.campaign import DEFAULT_KINDS
from repro.experiments.runner import ExperimentResult, print_result


@dataclass
class LatencyData:
    result: ExperimentResult
    raw: Dict[str, Dict[str, list]]


def run(
    seed: int = 0,
    scale: float = fig08_accuracy.DEFAULT_SCALE,
    accuracy: "fig08_accuracy.AccuracyData" = None,
) -> LatencyData:
    """Project latency from the Figure 8 campaigns.

    Pass *accuracy* (a prior :func:`fig08_accuracy.run` result) to reuse
    its runs instead of re-running the campaigns.
    """
    data = (
        accuracy
        if accuracy is not None
        else fig08_accuracy.run(seed=seed, scale=scale)
    )
    result = ExperimentResult(
        experiment="fig09-latency",
        columns=["App", "System", "MeanLatency", "MaxLatency", "Reported"],
    )
    result.notes.append(
        "TA latency is relative to the continuously-powered reference; "
        "GRC/CSR latency is absolute from the pendulum actuation"
    )
    raw: Dict[str, Dict[str, list]] = {}
    for app_name, campaign in data.campaigns.items():
        raw[app_name] = {}
        for kind in DEFAULT_KINDS:
            instance = campaign.instance(kind)
            if app_name == "TempAlarm":
                if kind is SystemKind.CONTINUOUS:
                    latencies = [0.0] * len(
                        metrics.reported_ids(instance.trace)
                    )
                else:
                    latencies = metrics.relative_latencies(
                        instance, campaign.reference
                    )
            else:
                latencies = metrics.event_latencies(instance)
            raw[app_name][kind.value] = latencies
            mean = metrics.mean(latencies)
            worst = max(latencies) if latencies else 0.0
            result.values[f"{app_name}/{kind.value}/mean_latency"] = mean
            result.values[f"{app_name}/{kind.value}/max_latency"] = worst
            result.values[f"{app_name}/{kind.value}/reported"] = float(
                len(latencies)
            )
            result.rows.append(
                [
                    app_name,
                    kind.value,
                    f"{mean:.2f}s",
                    f"{worst:.2f}s",
                    str(len(latencies)),
                ]
            )
    return LatencyData(result=result, raw=raw)


def main(seed: int = 0, scale: float = fig08_accuracy.DEFAULT_SCALE) -> ExperimentResult:
    data = run(seed=seed, scale=scale)
    print_result(data.result)
    return data.result


if __name__ == "__main__":
    main()
