"""DAG campaign scheduling: dependencies, checkpoints, dispatch, reports.

``run_all`` historically dispatched a flat job list, so an interrupted
multi-hour campaign restarted from zero and independent chains could
not overlap.  This module turns the campaign into a dependency graph:

* :class:`CampaignDag` — experiments declare predecessors
  (``@experiment(..., after=("power-sweep",))``); the graph is validated
  **at build time** (duplicate ids, unknown predecessors, cycles raise
  :class:`~repro.errors.DagError`, a typed ``SpecError``) so a bad
  declaration can never strand a half-run campaign.
* :class:`CheckpointStore` — a versioned, checksummed campaign-state
  file persisted next to the result cache after every task completion.
  The on-disk framing mirrors the result cache's: magic, SHA-256 of the
  body, then a canonical JSON body.  A corrupt or future-versioned file
  is **quarantined** (deleted, counted on telemetry) and the campaign
  starts fresh — corruption can skip no task it shouldn't.
* :func:`run_dag` — a dependency-aware dispatcher that feeds ready
  tasks onto the existing :class:`~repro.experiments.parallel.WorkerPool`
  machinery under the established RetryPolicy/WorkerChaos contract.
  Every task stays a pure function of its arguments, so a chaos-killed
  run resumed to completion is bit-identical to a clean serial run —
  the property the differential suite pins.
* :class:`DagReport` — the post-run critical-path report: the longest
  dependency chain, a greedy list-schedule's per-worker utilization,
  and the parallelism bound that suggests ``--jobs``.

Scheduling metadata never joins a cache key: a task's result depends
only on its own inputs, and ``after`` only constrains *when* it runs.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import CheckpointError, ConfigurationError, DagError
from repro.observability.telemetry import Telemetry, resolve_telemetry

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CampaignDag",
    "CompletedTask",
    "CampaignState",
    "CheckpointStore",
    "DagReport",
    "build_report",
    "report_from_state",
    "run_dag",
]

#: On-disk checkpoint framing: MAGIC, then the SHA-256 digest of the
#: body, then the canonical JSON body.  Mirrors the result cache's v3
#: framing so the same corruption guarantees hold: a flipped bit fails
#: the digest check before any byte is interpreted.
CHECKPOINT_MAGIC = b"RDG1"
#: Bump on any incompatible body-schema change.  Loaders reject files
#: from the future instead of guessing.
CHECKPOINT_VERSION = 1
_DIGEST_SIZE = hashlib.sha256().digest_size


# ---------------------------------------------------------------------------
# The dependency graph
# ---------------------------------------------------------------------------


class CampaignDag:
    """A validated campaign dependency graph.

    Nodes are task ids in declaration order; edges come from each
    node's ``after`` tuple.  All structural errors — duplicate ids,
    unknown predecessors, cycles — raise :class:`DagError` here, before
    any task is dispatched.
    """

    def __init__(self, nodes: Sequence[Tuple[str, Sequence[str]]]) -> None:
        self._order: List[str] = []
        self._after: Dict[str, Tuple[str, ...]] = {}
        for node, after in nodes:
            if node in self._after:
                raise DagError(f"duplicate campaign task id {node!r}")
            self._order.append(node)
            self._after[node] = tuple(after)
        known = set(self._after)
        for node in self._order:
            unknown = [p for p in self._after[node] if p not in known]
            if unknown:
                raise DagError(
                    f"task {node!r} declares unknown predecessor(s) "
                    f"{unknown}; known tasks: {self._order}"
                )
        self._successors: Dict[str, List[str]] = {n: [] for n in self._order}
        for node in self._order:
            for pred in self._after[node]:
                self._successors[pred].append(node)
        self._levels = self._toposort()

    @classmethod
    def from_experiments(cls, experiments: Iterable[Any]) -> "CampaignDag":
        """The graph the registry's ``after`` declarations describe.

        A declared predecessor that is not part of *this* campaign (a
        filtered or subset suite) imposes no ordering and is pruned —
        ``after`` constrains interpretation order within a run, it is
        not an existence requirement.  Typos are still caught: the
        full-catalogue guard in ``tests/test_dag.py`` validates every
        declaration against the registry, where nothing is pruned.
        """
        experiments = list(experiments)
        members = {exp.job_id for exp in experiments}
        return cls(
            [
                (
                    exp.job_id,
                    tuple(p for p in exp.after if p in members),
                )
                for exp in experiments
            ]
        )

    def _toposort(self) -> List[List[str]]:
        """Deterministic topological levels (declaration order within).

        Level k holds every node whose longest predecessor chain has
        length k; a non-empty remainder after the sweep is a cycle.
        """
        level_of: Dict[str, int] = {}
        remaining = list(self._order)
        while remaining:
            placed: List[str] = []
            for node in remaining:
                preds = self._after[node]
                if all(p in level_of for p in preds):
                    level_of[node] = (
                        1 + max((level_of[p] for p in preds), default=-1)
                    )
                    placed.append(node)
            if not placed:
                raise DagError(
                    f"campaign dependency cycle involving {sorted(remaining)}"
                )
            remaining = [n for n in remaining if n not in level_of]
        depth = 1 + max(level_of.values(), default=-1)
        levels: List[List[str]] = [[] for _ in range(depth)]
        for node in self._order:
            levels[level_of[node]].append(node)
        return levels

    # -- queries --------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._order)

    def predecessors(self, node: str) -> Tuple[str, ...]:
        return self._after[node]

    def successors(self, node: str) -> Tuple[str, ...]:
        return tuple(self._successors[node])

    def after_map(self) -> Dict[str, Tuple[str, ...]]:
        """``node -> declared predecessors`` (checkpoint serialisation)."""
        return dict(self._after)

    def levels(self) -> List[List[str]]:
        """Topological levels, declaration order within each."""
        return [list(level) for level in self._levels]

    def order(self) -> List[str]:
        """One deterministic topological order (levels flattened)."""
        return [node for level in self._levels for node in level]

    def descendants(self, roots: Iterable[str]) -> List[str]:
        """Every node reachable from *roots* (excluding the roots), in
        declaration order — the tasks a failed root transitively blocks."""
        reached: set = set()
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            for succ in self._successors[node]:
                if succ not in reached:
                    reached.add(succ)
                    frontier.append(succ)
        return [n for n in self._order if n in reached]

    def critical_path(
        self, seconds: Mapping[str, float]
    ) -> Tuple[List[str], float]:
        """The heaviest dependency chain under the recorded *seconds*.

        Tasks without a recording weigh zero, so a partially-run
        campaign still reports the critical path of what actually ran.
        """
        finish: Dict[str, float] = {}
        via: Dict[str, Optional[str]] = {}
        for node in self.order():
            best_pred: Optional[str] = None
            best = 0.0
            for pred in self._after[node]:
                if finish[pred] > best:
                    best = finish[pred]
                    best_pred = pred
            finish[node] = best + float(seconds.get(node, 0.0))
            via[node] = best_pred
        if not finish:
            return [], 0.0
        tail = max(self._order, key=lambda n: (finish[n], -self._order.index(n)))
        path: List[str] = []
        cursor: Optional[str] = tail
        while cursor is not None:
            path.append(cursor)
            cursor = via[cursor]
        path.reverse()
        return path, finish[tail]


# ---------------------------------------------------------------------------
# Checkpoint state + on-disk store
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompletedTask:
    """One finished task as the checkpoint records it."""

    node: str
    key: str
    source: str = "ran"  # "ran" | "cache" | "resume"
    seconds: float = 0.0
    attempts: int = 1
    seq: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "key": self.key,
            "source": self.source,
            "seconds": self.seconds,
            "attempts": self.attempts,
            "seq": self.seq,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CompletedTask":
        try:
            return cls(
                node=str(data["node"]),
                key=str(data["key"]),
                source=str(data.get("source", "ran")),
                seconds=float(data.get("seconds", 0.0)),
                attempts=int(data.get("attempts", 1)),
                seq=int(data.get("seq", 0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(
                f"malformed completed-task record {data!r}: {error}"
            )


@dataclass
class CampaignState:
    """In-memory twin of one checkpoint file.

    ``campaign`` is the identity block — everything that must match for
    a resume to be *safe*: the root seed/scale/backend, the fault-
    schedule hash, the code fingerprint, and each task's dependency
    edges plus its content-addressed result key.  A resumed task is
    skipped only when its recorded key equals the key the current run
    computes, so stale completions (edited code, different seed) can
    never produce a wrong skip.
    """

    campaign: Dict[str, Any] = field(default_factory=dict)
    completed: List[CompletedTask] = field(default_factory=list)

    def completed_nodes(self) -> Dict[str, CompletedTask]:
        return {task.node: task for task in self.completed}

    def record(self, task: CompletedTask) -> None:
        self.completed.append(task)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": CHECKPOINT_VERSION,
            "campaign": self.campaign,
            "completed": [task.to_dict() for task in self.completed],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignState":
        if not isinstance(data, Mapping):
            raise CheckpointError("checkpoint body must be a JSON object")
        version = data.get("version")
        if not isinstance(version, int) or version < 1:
            raise CheckpointError(
                f"checkpoint version must be a positive int, got {version!r}"
            )
        if version > CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint is format v{version}; this build reads up to "
                f"v{CHECKPOINT_VERSION} — refusing to guess at the schema"
            )
        campaign = data.get("campaign")
        if not isinstance(campaign, Mapping):
            raise CheckpointError("checkpoint 'campaign' must be an object")
        completed = data.get("completed", [])
        if not isinstance(completed, list):
            raise CheckpointError("checkpoint 'completed' must be a list")
        return cls(
            campaign=dict(campaign),
            completed=[CompletedTask.from_dict(entry) for entry in completed],
        )


def encode_state(state: CampaignState) -> bytes:
    """Frame *state* as checkpoint bytes (magic + digest + JSON body)."""
    body = json.dumps(state.to_dict(), sort_keys=True).encode()
    return CHECKPOINT_MAGIC + hashlib.sha256(body).digest() + body


def decode_state(raw: bytes) -> CampaignState:
    """Parse checkpoint bytes; any defect is a :class:`CheckpointError`.

    The digest is verified before a single body byte is interpreted, so
    truncation and bit-flips fail closed rather than yielding a state
    that skips the wrong tasks.
    """
    header = len(CHECKPOINT_MAGIC) + _DIGEST_SIZE
    if not raw.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(
            f"bad checkpoint magic {raw[: len(CHECKPOINT_MAGIC)]!r} "
            f"(expected {CHECKPOINT_MAGIC!r})"
        )
    if len(raw) < header:
        raise CheckpointError("checkpoint file truncated inside the header")
    body = raw[header:]
    if hashlib.sha256(body).digest() != raw[len(CHECKPOINT_MAGIC) : header]:
        raise CheckpointError("checkpoint body does not match its checksum")
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        # Unreachable in practice (the digest already matched) unless the
        # writer produced garbage; still a typed error, never a crash.
        raise CheckpointError(f"checkpoint body is not valid JSON: {error}")
    return CampaignState.from_dict(data)


class CheckpointStore:
    """One checkpoint file, written atomically after every completion."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def save(self, state: CampaignState) -> None:
        """Atomically persist *state* (unique temp file + rename).

        A crash mid-write leaves either the previous checkpoint or the
        new one, never a torn file; concurrent writers cannot clobber
        each other's half-written temp because every writer gets its
        own.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = encode_state(state)
        handle, tmp_name = tempfile.mkstemp(
            prefix=self.path.name + ".", suffix=".tmp", dir=self.path.parent
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(payload)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def load(self) -> Optional[CampaignState]:
        """The stored state, ``None`` if absent; corrupt files raise."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return None
        return decode_state(raw)

    def load_or_quarantine(
        self, telemetry: Optional[Telemetry] = None
    ) -> Optional[CampaignState]:
        """Load, quarantining corruption as a fresh start.

        A file that fails validation is deleted and counted
        (``campaign.checkpoint_quarantined``); the caller sees ``None``
        — exactly what a missing checkpoint looks like — so corruption
        degrades to re-running tasks, never to skipping the wrong ones.
        """
        try:
            return self.load()
        except CheckpointError:
            resolved = resolve_telemetry(telemetry)
            if resolved.enabled:
                resolved.inc("campaign.checkpoint_quarantined")
            try:
                self.path.unlink()
            except OSError:
                pass
            return None

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Dependency-aware dispatch
# ---------------------------------------------------------------------------


def run_dag(
    dag: CampaignDag,
    fn: Callable[..., Any],
    args_by_node: Mapping[str, Tuple[Any, ...]],
    pool: Optional[Any] = None,
    retry: Optional[Any] = None,
    chaos: Optional[Any] = None,
    on_error: str = "capture",
    telemetry: Optional[Telemetry] = None,
    report: Optional[Any] = None,
    on_complete: Optional[Callable[[str, Any, Any], None]] = None,
    completed: Iterable[str] = (),
) -> Dict[str, Any]:
    """Run every pending task of *dag*, never before its predecessors.

    The dispatcher keeps the campaign's established resilience
    contract: each attempt may be killed deterministically by *chaos*,
    *retry* re-runs it with backoff, and ``on_error="capture"`` turns a
    permanently failed task into a
    :class:`~repro.experiments.parallel.TaskError` result — and every
    task it transitively blocks into one as well (``attempts=0``, so
    blocked and failed rows are distinguishable).  ``on_error="raise"``
    aborts at the first permanent failure, after harvesting (and
    checkpointing, via *on_complete*) any task that already finished.

    Args:
        dag: the validated graph.
        fn: module-level worker body, called as ``fn(*args_by_node[n])``.
        args_by_node: arguments per pending node.
        pool: a :class:`~repro.experiments.parallel.WorkerPool`; with
            ``jobs == 1`` (or unpicklable work) tasks run serially
            in-process with identical results.
        retry / chaos / on_error: the :func:`parallel_map` contract.
        telemetry: sink for ``campaign.retries``/``campaign.gave_up``.
        report: optional :class:`ParallelReport` to fill with timings.
        on_complete: called as ``on_complete(node, result, timing)``
            after each successful task — the checkpoint hook.
        completed: node ids already satisfied (resumed or cache-served);
            they are treated as done for dependency purposes and never
            executed.

    Returns:
        ``node -> result`` for every node not in *completed* (results,
        :class:`TaskError` rows for failures, blocked markers).
    """
    from repro.experiments.parallel import TaskError, TaskTiming, _attempt_call

    if on_error not in ("raise", "capture"):
        raise ConfigurationError(
            f'on_error must be "raise" or "capture", got {on_error!r}'
        )
    done = set(completed)
    unknown_done = done - set(dag.nodes)
    if unknown_done:
        raise ConfigurationError(
            f"completed ids {sorted(unknown_done)} are not campaign tasks"
        )
    pending = [node for node in dag.order() if node not in done]
    missing = [node for node in pending if node not in args_by_node]
    if missing:
        raise ConfigurationError(
            f"no arguments declared for pending task(s) {missing}"
        )
    telemetry = resolve_telemetry(telemetry)
    max_attempts = retry.max_attempts if retry is not None else 1

    use_pool = False
    if pool is not None and pool.jobs > 1 and len(pending) > 1:
        from repro.experiments.parallel import _picklable

        use_pool = _picklable(
            fn, [args_by_node[node] for node in pending]
        ) and (chaos is None or _picklable(chaos))
    if report is not None:
        report.mode = "process-pool" if use_pool else "serial"
        report.jobs = pool.jobs if use_pool else 1

    results: Dict[str, Any] = {}
    failed: set = set()
    blocked: set = set()

    def _backoff(label: str, attempt: int) -> None:
        if retry is None:
            return
        delay = retry.delay(label, attempt)
        if delay > 0.0:
            _time.sleep(delay)

    def _give_up(label: str, attempt: int, error: BaseException) -> TaskError:
        if telemetry.enabled:
            telemetry.inc("campaign.gave_up")
        if on_error == "raise":
            raise error
        return TaskError(label=label, error=repr(error), attempts=attempt)

    def _block_descendants(node: str) -> None:
        for desc in dag.descendants([node]):
            if desc in done or desc in failed or desc in blocked:
                continue
            blocked.add(desc)
            results[desc] = TaskError(
                label=desc,
                error=f"blocked: predecessor {node!r} failed",
                attempts=0,
            )
            if telemetry.enabled:
                telemetry.inc("campaign.blocked")

    def _succeed(node: str, result: Any, seconds: float, attempt: int) -> None:
        timing = TaskTiming(node, seconds, attempt)
        results[node] = result
        done.add(node)
        if report is not None:
            report.timings.append(timing)
        if on_complete is not None:
            on_complete(node, result, timing)

    if not use_pool:
        for node in pending:
            if node in blocked:
                continue
            for attempt in range(1, max_attempts + 1):
                try:
                    result, seconds = _attempt_call(
                        fn, args_by_node[node], chaos, node, attempt
                    )
                except Exception as error:
                    if attempt >= max_attempts:
                        results[node] = _give_up(node, attempt, error)
                        failed.add(node)
                        if report is not None:
                            report.timings.append(TaskTiming(node, 0.0, attempt))
                        _block_descendants(node)
                        break
                    if telemetry.enabled:
                        telemetry.inc("campaign.retries")
                    _backoff(node, attempt)
                else:
                    _succeed(node, result, seconds, attempt)
                    break
        return results

    # Pool path: submit every ready task, harvest completions as they
    # land, release successors the moment their last predecessor is
    # done.  Retries resubmit the same node (next attempt) after the
    # backoff while unrelated tasks keep running.
    from concurrent.futures import FIRST_COMPLETED, wait

    index_of = {node: i for i, node in enumerate(dag.nodes)}
    unmet = {
        node: sum(1 for p in dag.predecessors(node) if p not in done)
        for node in pending
    }
    pool.tasks_run += len(pending)
    in_flight: Dict[Any, Tuple[str, int]] = {}

    def _submit(node: str, attempt: int) -> None:
        future = pool.submit_attempt(fn, args_by_node[node], chaos, node, attempt)
        in_flight[future] = (node, attempt)

    for node in pending:
        if unmet[node] == 0:
            _submit(node, 1)

    while in_flight:
        finished, _ = wait(list(in_flight), return_when=FIRST_COMPLETED)
        # Successes first (and in declaration order) so an abort under
        # on_error="raise" still checkpoints every task that finished.
        batch = sorted(finished, key=lambda f: index_of[in_flight[f][0]])
        batch.sort(key=lambda f: f.exception() is not None)
        for future in batch:
            node, attempt = in_flight.pop(future)
            try:
                result, seconds = future.result()
            except Exception as error:
                if attempt >= max_attempts:
                    results[node] = _give_up(node, attempt, error)
                    failed.add(node)
                    if report is not None:
                        report.timings.append(TaskTiming(node, 0.0, attempt))
                    _block_descendants(node)
                    continue
                if telemetry.enabled:
                    telemetry.inc("campaign.retries")
                _backoff(node, attempt)
                _submit(node, attempt + 1)
                continue
            _succeed(node, result, seconds, attempt)
            for succ in dag.successors(node):
                if succ not in unmet:
                    continue
                unmet[succ] -= 1
                if unmet[succ] == 0 and succ not in blocked:
                    _submit(succ, 1)
    return results


# ---------------------------------------------------------------------------
# Post-run report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DagReport:
    """Critical path, utilization, and the suggested worker count."""

    tasks: int
    timed_tasks: int
    total_seconds: float
    critical_path: Tuple[str, ...]
    critical_seconds: float
    jobs: int
    #: Greedy list-schedule busy seconds per worker (len == jobs).
    worker_busy: Tuple[float, ...]
    #: The greedy schedule's makespan under *jobs* workers.
    makespan: float
    #: ``ceil(total / critical)`` — the classic parallelism bound; more
    #: workers than this cannot shorten the campaign.
    suggested_jobs: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tasks": self.tasks,
            "timed_tasks": self.timed_tasks,
            "total_seconds": self.total_seconds,
            "critical_path": list(self.critical_path),
            "critical_seconds": self.critical_seconds,
            "jobs": self.jobs,
            "worker_busy": list(self.worker_busy),
            "makespan": self.makespan,
            "suggested_jobs": self.suggested_jobs,
        }

    def format(self) -> str:
        lines = ["Campaign report"]
        lines.append(
            f"  tasks: {self.tasks} ({self.timed_tasks} timed); "
            f"task time {self.total_seconds:.1f}s"
        )
        if self.critical_path:
            share = (
                self.critical_seconds / self.total_seconds
                if self.total_seconds > 0
                else 0.0
            )
            lines.append(
                f"  critical path: {' -> '.join(self.critical_path)} "
                f"({self.critical_seconds:.1f}s, {share:.0%} of task time)"
            )
        if self.worker_busy and self.makespan > 0:
            utilization = " ".join(
                f"w{i}={busy / self.makespan:.0%}"
                for i, busy in enumerate(self.worker_busy)
            )
            lines.append(
                f"  utilization (jobs={self.jobs}, "
                f"makespan {self.makespan:.1f}s): {utilization}"
            )
        lines.append(f"  suggested --jobs: {self.suggested_jobs}")
        return "\n".join(lines)


def build_report(
    dag: CampaignDag, seconds: Mapping[str, float], jobs: int = 1
) -> DagReport:
    """The post-run report for one campaign's recorded task times.

    The utilization figures come from replaying the recorded durations
    through a greedy list-schedule (each task starts when its
    predecessors finish and a worker frees up) — a deterministic model
    of the dispatcher, not a wall-clock measurement, so the report is
    stable across runs.
    """
    path, critical = dag.critical_path(seconds)
    total = sum(float(seconds.get(node, 0.0)) for node in dag.nodes)
    jobs = max(1, jobs)

    worker_free = [0.0] * jobs
    busy = [0.0] * jobs
    finish: Dict[str, float] = {}
    for node in dag.order():
        duration = float(seconds.get(node, 0.0))
        ready_at = max(
            (finish[p] for p in dag.predecessors(node)), default=0.0
        )
        worker = min(range(jobs), key=lambda w: (worker_free[w], w))
        start = max(worker_free[worker], ready_at)
        finish[node] = start + duration
        worker_free[worker] = finish[node]
        busy[worker] += duration
    makespan = max(finish.values(), default=0.0)

    if critical > 0.0:
        suggested = max(1, min(len(dag.nodes), math.ceil(total / critical)))
    else:
        suggested = 1
    return DagReport(
        tasks=len(dag.nodes),
        timed_tasks=sum(1 for node in dag.nodes if node in seconds),
        total_seconds=total,
        critical_path=tuple(path),
        critical_seconds=critical,
        jobs=jobs,
        worker_busy=tuple(busy),
        makespan=makespan,
        suggested_jobs=suggested,
    )


def report_from_state(state: CampaignState, jobs: int = 1) -> DagReport:
    """Rebuild the report from a checkpoint file's recorded contents.

    The checkpoint stores each task's dependency edges alongside its
    completion record, so ``repro campaign report`` works on the file
    alone — no registry, no re-run.
    """
    nodes = state.campaign.get("nodes")
    if not isinstance(nodes, Mapping) or not nodes:
        raise CheckpointError("checkpoint records no campaign tasks")
    try:
        dag = CampaignDag(
            [
                (str(node), tuple(entry.get("after", ())))
                for node, entry in nodes.items()
            ]
        )
    except (AttributeError, TypeError) as error:
        raise CheckpointError(f"malformed checkpoint task table: {error}")
    seconds = {task.node: task.seconds for task in state.completed}
    return build_report(dag, seconds, jobs=jobs)


def emit_report_telemetry(
    report: DagReport, telemetry: Optional[Telemetry] = None
) -> None:
    """Publish the report's headline numbers on the telemetry plane."""
    telemetry = resolve_telemetry(telemetry)
    if not telemetry.enabled:
        return
    telemetry.set_gauge("campaign.total_task_seconds", report.total_seconds)
    telemetry.set_gauge("campaign.critical_path_seconds", report.critical_seconds)
    telemetry.set_gauge("campaign.critical_path_tasks", float(len(report.critical_path)))
    telemetry.set_gauge("campaign.makespan_seconds", report.makespan)
    telemetry.set_gauge("campaign.suggested_jobs", float(report.suggested_jobs))
