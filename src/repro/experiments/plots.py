"""Plain-text renderings of the paper's figures.

The repository stays plotting-library-free; these helpers render the
figures' raw material — histograms (Figure 11), bar groups (Figure 8),
and voltage timelines (Figure 2) — as aligned ASCII, for experiment
``main()`` output and for eyeballing results in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


def ascii_histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    label: str = "",
    bin_range: Tuple[float, float] = None,
) -> str:
    """Render a histogram of *values* as ASCII bars.

    Args:
        values: the sample.
        bins: number of equal-width bins.
        width: maximum bar width in characters.
        label: optional title line.
        bin_range: explicit (low, high); defaults to the data range.
    """
    if bins < 1:
        raise ConfigurationError("bins must be >= 1")
    lines: List[str] = []
    if label:
        lines.append(label)
    if not values:
        lines.append("  (no data)")
        return "\n".join(lines)
    low, high = bin_range if bin_range else (min(values), max(values))
    if high <= low:
        high = low + 1.0
    counts = [0] * bins
    span = high - low
    for value in values:
        index = int((value - low) / span * bins)
        counts[min(max(index, 0), bins - 1)] += 1
    peak = max(counts) or 1
    for index, count in enumerate(counts):
        left = low + span * index / bins
        right = low + span * (index + 1) / bins
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"  {left:8.1f}-{right:8.1f}s |{bar:<{width}}| {count}")
    return "\n".join(lines)


def ascii_bars(
    series: Dict[str, float],
    width: int = 40,
    unit: str = "",
    label: str = "",
) -> str:
    """Render named scalar values as horizontal bars (Figure 8 style)."""
    lines: List[str] = []
    if label:
        lines.append(label)
    if not series:
        lines.append("  (no data)")
        return "\n".join(lines)
    peak = max(abs(value) for value in series.values()) or 1.0
    name_width = max(len(name) for name in series)
    for name, value in series.items():
        bar = "#" * round(abs(value) / peak * width)
        lines.append(f"  {name:<{name_width}} |{bar:<{width}}| {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_timeline(
    points: Sequence[Tuple[float, float]],
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a (time, value) series as a character plot (Figure 2's
    voltage sawtooth)."""
    lines: List[str] = []
    if label:
        lines.append(label)
    if len(points) < 2:
        lines.append("  (not enough data)")
        return "\n".join(lines)
    times = [point[0] for point in points]
    values = [point[1] for point in points]
    t_low, t_high = min(times), max(times)
    v_low, v_high = min(values), max(values)
    if v_high <= v_low:
        v_high = v_low + 1.0
    if t_high <= t_low:
        t_high = t_low + 1.0
    grid = [[" "] * width for _ in range(height)]
    for t, v in points:
        column = min(width - 1, int((t - t_low) / (t_high - t_low) * (width - 1)))
        row = min(
            height - 1,
            int((v_high - v) / (v_high - v_low) * (height - 1)),
        )
        grid[row][column] = "*"
    for row_index, row in enumerate(grid):
        v_axis = v_high - (v_high - v_low) * row_index / (height - 1)
        lines.append(f"  {v_axis:5.2f}V |{''.join(row)}")
    lines.append(f"         {t_low:8.1f}s{' ' * (width - 18)}{t_high:8.1f}s")
    return "\n".join(lines)


def spark(values: Sequence[float]) -> str:
    """A one-line sparkline for quick series summaries."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int((value - low) / span * (len(blocks) - 1)))]
        for value in values
    )
