"""Design-choice ablations (Sections 5.1-5.2).

Three studies that quantify the design decisions DESIGN.md calls out:

1. **Bypass diode** — charge time from empty with and without the input
   booster's cold-start bypass (the paper observed the bypass cuts
   charge time by at least an order of magnitude).
2. **Reconfiguration mechanism** — cold-start time of the switched-bank
   ``C``-control mechanism versus the Vtop-threshold alternative, which
   must drag the full capacitance above the booster minimum before any
   usable energy exists; plus the area/leakage/wear accounting.
3. **NO vs NC switch polarity** — the adversarial input-power hazard:
   with normally-open switches, a blackout longer than latch retention
   drops the reservoir to the small default bank, and a task too big
   for it wastes its first execution attempt; normally-closed switches
   revert to full capacity (slow but safe).

Run: ``python -m repro.experiments.ablation``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builder import SystemKind, build_capybara_system
from repro.device.board import Board
from repro.device.mcu import MCU_MSP430FR5969
from repro.device.radio import BLE_CC2650
from repro.device.sensors import SENSOR_TMP36
from repro.energy.bank import BankSpec, CapacitorBank
from repro.energy.booster import InputBooster
from repro.energy.capacitor import CERAMIC_X5R, TANTALUM_POLYMER
from repro.energy.environment import PiecewiseTrace
from repro.energy.harvester import SolarPanel
from repro.energy.switch import BankSwitch, SwitchPolarity
from repro.energy.threshold import ThresholdReconfigurator
from repro.errors import ConfigurationError
from repro.experiments.fig03_design_space import charge_time_for_bank
from repro.experiments.runner import ExperimentResult, print_result
from repro.kernel.annotations import ConfigAnnotation
from repro.kernel.executor import IntermittentExecutor
from repro.kernel.tasks import Compute, Task, TaskGraph

from repro.core.builder import PlatformSpec


# ---------------------------------------------------------------------------
# 1. Bypass diode ablation
# ---------------------------------------------------------------------------

def bypass_ablation(
    bank_spec: BankSpec = BankSpec.single("probe", TANTALUM_POLYMER, 4),
    harvest_power: float = 1e-3,
    backend: str = "scalar",
) -> ExperimentResult:
    """Charge-from-empty time with and without the bypass diode."""
    if backend not in ("scalar", "vec"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    if backend == "vec":
        from repro.vec import charge_times, fleet_from_banks

        state = fleet_from_banks(
            [bank_spec, bank_spec],
            input_booster=[InputBooster(bypass=True), InputBooster(bypass=False)],
            harvest_power=harvest_power,
        )
        with_bypass, without_bypass = (float(t) for t in charge_times(state))
    else:
        with_bypass = charge_time_for_bank(
            bank_spec, harvest_power, InputBooster(bypass=True)
        )
        without_bypass = charge_time_for_bank(
            bank_spec, harvest_power, InputBooster(bypass=False)
        )
    result = ExperimentResult(
        experiment="ablation-bypass",
        columns=["Configuration", "Cold charge time"],
    )
    result.values["with_bypass"] = with_bypass
    result.values["without_bypass"] = without_bypass
    result.values["speedup"] = without_bypass / with_bypass
    result.rows.append(["with bypass", f"{with_bypass:.1f}s"])
    result.rows.append(["without bypass", f"{without_bypass:.1f}s"])
    result.notes.append(
        f"bypass speedup: {without_bypass / with_bypass:.1f}x "
        "(paper: at least an order of magnitude)"
    )
    return result


# ---------------------------------------------------------------------------
# 2. Switched banks vs Vtop threshold
# ---------------------------------------------------------------------------

def mechanism_ablation(
    harvest_power: float = 1e-3, backend: str = "scalar"
) -> ExperimentResult:
    """Cold-start comparison of the two reconfiguration mechanisms.

    Both must provide a small energy quantum (a sensor task's worth).
    The C-control mechanism charges only its small bank; the threshold
    mechanism hauls the full capacitance up past the booster minimum.
    """
    if backend not in ("scalar", "vec"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    small = BankSpec.single("small", CERAMIC_X5R, 4)
    full_array = BankSpec.of_parts(
        "full", [(CERAMIC_X5R, 4), (TANTALUM_POLYMER, 8)]
    )
    threshold = ThresholdReconfigurator(bank_spec=full_array)
    switch = BankSwitch(name="bank1")

    if backend == "vec":
        import numpy as np

        from repro.vec import charge_times, fleet_from_banks

        state = fleet_from_banks(
            [small, full_array], harvest_power=harvest_power
        )
        # Device 0 charges to the booster target (C control's small
        # bank); device 1 only needs to reach the Vtop threshold.
        targets = np.asarray(
            [state.charge_target[0], threshold.v_top_min]
        )
        switched_time, threshold_time = (
            float(t) for t in charge_times(state, target=targets)
        )
    else:
        # C-control: cold start charges just the default small bank.
        switched_time = charge_time_for_bank(small, harvest_power)
        # Vtop-control: the full capacitance must reach at least
        # v_top_min before the stored energy is usable at all.
        booster = InputBooster()
        threshold_time = _charge_bank_to(
            full_array, threshold.v_top_min, harvest_power, booster
        )

    result = ExperimentResult(
        experiment="ablation-mechanism",
        columns=["Mechanism", "Cold start", "Area", "Leakage", "Wear bound"],
    )
    result.values["switched_cold_start"] = switched_time
    result.values["threshold_cold_start"] = threshold_time
    result.values["area_ratio"] = threshold.area_ratio_to(switch)
    result.values["leakage_ratio"] = threshold.leakage_ratio_to(switch)
    result.rows.append(
        [
            "switched banks (C control)",
            f"{switched_time:.1f}s",
            f"{switch.area * 1e6:.0f} mm^2",
            f"{switch.leakage_current * 1e9:.0f} nA",
            "unbounded",
        ]
    )
    result.rows.append(
        [
            "Vtop threshold (EEPROM pot)",
            f"{threshold_time:.1f}s",
            f"{threshold.area * 1e6:.0f} mm^2",
            f"{threshold.leakage_current * 1e9:.0f} nA",
            f"{threshold.write_endurance} writes",
        ]
    )
    result.notes.append(
        "the paper chose C control for its cold-start advantage and "
        "half-the-area, two-thirds-the-leakage footprint"
    )
    return result


def _charge_bank_to(
    bank_spec: BankSpec,
    target: float,
    harvest_power: float,
    booster: InputBooster,
    harvester_voltage: float = 3.0,
) -> float:
    bank = CapacitorBank(bank_spec)
    elapsed = 0.0
    voltage = 0.0
    step = target / 200.0
    while voltage < target - 1e-9:
        v_next = min(target, voltage + step)
        power = booster.charge_power(voltage, harvester_voltage, harvest_power)
        if power <= 0.0:
            raise ConfigurationError("harvester cannot charge at all")
        energy = bank_spec.energy_at(v_next) - bank_spec.energy_at(voltage)
        elapsed += energy / power
        voltage = v_next
    return elapsed


# ---------------------------------------------------------------------------
# 3. NO vs NC polarity under adversarial input power
# ---------------------------------------------------------------------------

@dataclass
class PolarityOutcome:
    """Completions of a big task under a blackout-riddled power trace."""

    polarity: str
    completions: int
    power_failures: int
    first_completion_time: float


#: Light window of the adversarial trace, seconds.  Shorter than the
#: big configuration's cold charge time, so progress must accumulate
#: across windows: retained charge carries a normally-closed system
#: (and a robust normally-open one) to completion, while a naive
#: normally-open runtime burns every window re-discovering that its
#: believed configuration is gone.
ADVERSARIAL_LIGHT = 20.0
#: Dark window, seconds; longer than the 180 s latch retention so every
#: blackout reverts the switches.
ADVERSARIAL_DARK = 200.0


def _polarity_run(
    polarity: SwitchPolarity, horizon: float, suspect_on_failure: bool = True
) -> PolarityOutcome:
    """A big config task under repeated >retention blackouts.

    The adversarial trace from Section 5.2: power arrives in windows
    shorter than the big configuration's charge time, then disappears
    past the latch retention, forgetting the configuration.
    """
    small = BankSpec.of_parts("small", [(TANTALUM_POLYMER, 2)])
    big = BankSpec.of_parts("big", [(TANTALUM_POLYMER, 16)])
    breakpoints = []
    t = ADVERSARIAL_LIGHT
    dark = True
    while t < horizon:
        breakpoints.append((t, 0.0 if dark else 24.0))
        t += ADVERSARIAL_DARK if dark else ADVERSARIAL_LIGHT
        dark = not dark
    spec = PlatformSpec(
        banks=[small, big],
        modes={"m-small": ["small"], "m-big": ["small", "big"]},
        fixed_bank=big,
        harvester=SolarPanel(irradiance=PiecewiseTrace(breakpoints, initial=24.0)),
        switch_polarity=polarity,
    )
    assembly = build_capybara_system(spec, SystemKind.CAPY_P)
    assembly.runtime.suspect_on_failure = suspect_on_failure
    board = Board(
        MCU_MSP430FR5969,
        assembly.power_system,
        sensors=[SENSOR_TMP36],
        radio=BLE_CC2650,
    )

    def big_task(ctx):
        # ~3 s of compute (~12 mJ): far beyond the small default bank.
        yield Compute(3_000_000)
        ctx.write("done", ctx.read("done", 0) + 1)
        return None

    graph = TaskGraph(
        [Task("big", big_task, ConfigAnnotation("m-big"))], entry="big"
    )
    executor = IntermittentExecutor(
        board, graph, assembly.runtime, max_power_failures_per_task=100_000
    )
    executor.run(horizon)
    completions = executor.trace.counters.get("task_done:big", 0)
    first = float("inf")
    if completions:
        first = min(
            (
                record.time
                for record in executor.trace.states
                if record.state == "running"
            ),
            default=float("inf"),
        )
    return PolarityOutcome(
        polarity=polarity.value,
        completions=completions,
        power_failures=executor.trace.counters.get("power_failures", 0),
        first_completion_time=first,
    )


def polarity_ablation(horizon: float = 2000.0) -> ExperimentResult:
    """NO vs NC polarity, with naive and robust runtimes.

    Three configurations:

    * **NO + naive runtime** — the Section 5.2 hazard: every blackout
      reverts the reservoir to the small default bank, the runtime keeps
      trusting its believed configuration, and execution attempts fail
      indefinitely;
    * **NO + robust runtime** — our suspect-flag mitigation: a failure
      forces the next plan to re-issue the reconfiguration, wasting one
      attempt per blackout but recovering;
    * **NC + naive runtime** — reversion restores *full* capacity, so
      even the naive runtime completes on its first post-boot attempt.
    """
    result = ExperimentResult(
        experiment="ablation-polarity",
        columns=["Polarity", "Runtime", "Task completions", "Power failures"],
    )
    cases = [
        (SwitchPolarity.NORMALLY_OPEN, False, "naive"),
        (SwitchPolarity.NORMALLY_OPEN, True, "robust"),
        (SwitchPolarity.NORMALLY_CLOSED, False, "naive"),
    ]
    for polarity, suspect, label in cases:
        outcome = _polarity_run(polarity, horizon, suspect_on_failure=suspect)
        key = f"{outcome.polarity}-{label}"
        result.values[f"{key}/completions"] = float(outcome.completions)
        result.values[f"{key}/power_failures"] = float(outcome.power_failures)
        result.rows.append(
            [
                outcome.polarity,
                label,
                str(outcome.completions),
                str(outcome.power_failures),
            ]
        )
    result.notes.append(
        "NO switches forget the big configuration each blackout: a naive "
        "runtime retries indefinitely on the insufficient default bank; "
        "the robust runtime wastes one attempt then re-configures; NC "
        "reverts to full capacity and needs no mitigation"
    )
    return result


def main(backend: str = "scalar") -> None:
    print_result(bypass_ablation(backend=backend))
    print()
    print_result(mechanism_ablation(backend=backend))
    print()
    # The polarity study runs full intermittent-app simulations with a
    # time-varying (piecewise) harvester — scalar-engine territory on
    # every backend (see `repro vec-info`).
    print_result(polarity_ablation())


if __name__ == "__main__":
    main()
