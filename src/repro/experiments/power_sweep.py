"""Input-power sensitivity (extension study).

The paper evaluates at fixed harvesting conditions per rig.  A natural
question it leaves open: how does reconfigurability's advantage move
with input power?  This study sweeps the TempAlarm harvester over a
quarter to four times its nominal level and measures Fixed vs Capy-P
accuracy on the same event schedule.

Expected shape: at generous power the Fixed system's big-bank recharge
shrinks and it closes some of the gap; as power starves, Fixed's duty
cycle collapses (its recharge grows linearly in 1/P) while Capybara's
small mode stays reactive far longer — the advantage *widens* exactly
where energy harvesting actually operates.

Run: ``python -m repro.experiments.power_sweep``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.apps.base import assemble_app, make_binding
from repro.apps.rigs import EventSchedule, ThermalRig
from repro.apps.temp_alarm import (
    ALARM_HIGH,
    ALARM_LOW,
    APP_NAME,
    EVENT_DURATION,
    WARMUP,
    make_banks,
    make_graph,
)
from repro.core.builder import SystemKind
from repro.device.mcu import MCU_MSP430FR5969
from repro.device.radio import BLE_CC2650
from repro.device.sensors import SENSOR_TMP36
from repro.energy.harvester import ScaledHarvester
from repro.experiments import metrics
from repro.experiments.runner import ExperimentResult, percent, print_result
from repro.sim.rand import RandomStreams

KINDS = [SystemKind.CONTINUOUS, SystemKind.FIXED, SystemKind.CAPY_P]
DEFAULT_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass
class PowerSweepData:
    result: ExperimentResult
    #: system value -> accuracy per scale, in sweep order.
    series: Dict[str, List[float]]


def run(
    seed: int = 0,
    event_count: int = 12,
    scales: Sequence[float] = DEFAULT_SCALES,
) -> PowerSweepData:
    streams = RandomStreams(seed)
    schedule = EventSchedule.poisson(
        streams.get("events"),
        mean_interarrival=144.0,
        count=event_count,
        duration=EVENT_DURATION,
        kind="temperature",
        start_offset=WARMUP,
    )
    rig = ThermalRig(
        schedule,
        horizon=schedule.horizon + 240.0,
        alarm_low=ALARM_LOW,
        alarm_high=ALARM_HIGH,
    )
    binding = make_binding({"tmp36": rig.temp_reading})
    horizon = schedule.horizon + 120.0

    result = ExperimentResult(
        experiment="power-sweep",
        columns=["HarvestScale", "System", "Accuracy"],
    )
    result.notes.append(f"seed={seed} events={event_count}")
    series: Dict[str, List[float]] = {kind.value: [] for kind in KINDS}

    for scale in scales:
        instances = {}
        for kind in KINDS:
            spec = make_banks()
            spec.harvester = ScaledHarvester(spec.harvester, power_scale=scale)
            instance = assemble_app(
                name=APP_NAME,
                kind=kind,
                spec=spec,
                mcu=MCU_MSP430FR5969,
                graph=make_graph(),
                binding=binding,
                schedule=schedule,
                sensors=[SENSOR_TMP36],
                radio=BLE_CC2650,
                rng=streams.get(f"radio-{kind.value}-{scale}"),
                extras={"rig": rig},
            )
            instance.run(horizon)
            instances[kind] = instance
        reference = instances[SystemKind.CONTINUOUS]
        for kind in KINDS:
            accuracy = metrics.ta_accuracy(instances[kind], reference)
            if kind is SystemKind.CONTINUOUS:
                accuracy = 1.0 if metrics.reported_ids(reference.trace) else 0.0
            series[kind.value].append(accuracy)
            result.values[f"{scale}/{kind.value}"] = accuracy
            result.rows.append([f"{scale:g}x", kind.value, percent(accuracy)])
    return PowerSweepData(result=result, series=series)


def main(seed: int = 0) -> ExperimentResult:
    data = run(seed=seed)
    print_result(data.result)
    return data.result


if __name__ == "__main__":
    main()
