"""Input-power sensitivity (extension study).

The paper evaluates at fixed harvesting conditions per rig.  A natural
question it leaves open: how does reconfigurability's advantage move
with input power?  This study sweeps the TempAlarm harvester over a
quarter to four times its nominal level and measures Fixed vs Capy-P
accuracy on the same event schedule.

Expected shape: at generous power the Fixed system's big-bank recharge
shrinks and it closes some of the gap; as power starves, Fixed's duty
cycle collapses (its recharge grows linearly in 1/P) while Capybara's
small mode stays reactive far longer — the advantage *widens* exactly
where energy harvesting actually operates.

Every (harvest scale, system) grid point is an independent
deterministic run, so the sweep fans out over the parallel runner;
each worker re-derives the schedule and noise streams from
``(seed, name)``, making parallel results bit-identical to serial ones.

Run: ``python -m repro.experiments.power_sweep``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.base import assemble_app, make_binding
from repro.apps.rigs import EventSchedule, ThermalRig
from repro.apps.temp_alarm import (
    ALARM_HIGH,
    ALARM_LOW,
    APP_NAME,
    EVENT_DURATION,
    WARMUP,
    make_banks,
    make_graph,
)
from repro.core.builder import SystemKind
from repro.device.mcu import MCU_MSP430FR5969
from repro.device.radio import BLE_CC2650
from repro.device.sensors import SENSOR_TMP36
from repro.energy.harvester import ScaledHarvester
from repro.errors import ConfigurationError
from repro.experiments import metrics
from repro.experiments.parallel import ParallelReport, parallel_map
from repro.experiments.runner import ExperimentResult, percent, print_result
from repro.sim.rand import RandomStreams
from repro.sim.trace import Trace

KINDS = [SystemKind.CONTINUOUS, SystemKind.FIXED, SystemKind.CAPY_P]
DEFAULT_SCALES = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass
class PowerSweepData:
    result: ExperimentResult
    #: system value -> accuracy per scale, in sweep order.
    series: Dict[str, List[float]]


def _run_point(
    seed: int, event_count: int, scale: float, kind: SystemKind
) -> Trace:
    """One (harvest scale, system) grid point; pool worker entry.

    Rebuilds the whole rig/schedule/app stack from the seed so grid
    points are fully independent: the event schedule derives from
    ``(seed, "events")`` and is therefore identical at every point.
    """
    streams = RandomStreams(seed)
    schedule = EventSchedule.poisson(
        streams.get("events"),
        mean_interarrival=144.0,
        count=event_count,
        duration=EVENT_DURATION,
        kind="temperature",
        start_offset=WARMUP,
    )
    rig = ThermalRig(
        schedule,
        horizon=schedule.horizon + 240.0,
        alarm_low=ALARM_LOW,
        alarm_high=ALARM_HIGH,
    )
    binding = make_binding({"tmp36": rig.temp_reading})
    horizon = schedule.horizon + 120.0
    spec = make_banks()
    spec.harvester = ScaledHarvester(spec.harvester, power_scale=scale)
    instance = assemble_app(
        name=APP_NAME,
        kind=kind,
        spec=spec,
        mcu=MCU_MSP430FR5969,
        graph=make_graph(),
        binding=binding,
        schedule=schedule,
        sensors=[SENSOR_TMP36],
        radio=BLE_CC2650,
        rng=streams.get(f"radio-{kind.value}-{scale}"),
        extras={"rig": rig},
    )
    instance.run(horizon)
    return instance.trace


def _accuracy_from_traces(dut: Trace, reference: Trace) -> float:
    """TA accuracy computed on traces (same rule as metrics.ta_accuracy)."""
    ref_ids = set(metrics.reported_ids(reference, "alarm"))
    if not ref_ids:
        return 0.0
    dut_ids = set(metrics.reported_ids(dut, "alarm"))
    return len(ref_ids & dut_ids) / len(ref_ids)


# ---------------------------------------------------------------------------
# Vectorized path (backend="vec")
# ---------------------------------------------------------------------------

#: Systems the vec sweep compares.  CONTINUOUS is a tethered reference
#: with no reservoir dynamics, so the fleet model has nothing to say
#: about it; FIXED simulates the soldered-down union bank and CAPY_P
#: its reactive small mode.
VEC_KINDS = (SystemKind.FIXED, SystemKind.CAPY_P)

#: Fixed-timestep resolution and horizon of the vec duty-cycle runs.
VEC_DT = 0.05
VEC_HORIZON = 900.0


def build_vec_fleet(scales: Sequence[float], replicates: int = 1):
    """The (scale x system) grid as one vec fleet, plus its labels.

    Each grid point is the TempAlarm platform under a scaled harvester:
    FIXED devices simulate the hardwired union bank, CAPY_P devices the
    reactive small (sense) mode.  *replicates* repeats the grid — the
    1024-device benchmark fleet is exactly this with more scales and
    replicates.  Returns ``(state, labels)`` with labels in device order.
    """
    from repro.apps.temp_alarm import MODE_SENSE, scenario
    from repro.spec import ScenarioSpec
    from repro.vec import FIXED_BANK_MODE, build_fleet

    base = scenario()
    grid = [
        (scale, kind)
        for _ in range(replicates)
        for scale in scales
        for kind in VEC_KINDS
    ]
    modes = [
        FIXED_BANK_MODE if kind is SystemKind.FIXED else MODE_SENSE
        for _, kind in grid
    ]
    scenarios = []
    for _, kind in grid:
        spec = ScenarioSpec(
            name=base.name,
            system=kind.value,
            platform=base.platform,
            workload=base.workload,
        )
        scenarios.append(spec)
    state = build_fleet(
        scenarios,
        modes=modes,
        power_scales=[scale for scale, _ in grid],
    )
    labels = [f"{scale:g}x/{kind.value}" for scale, kind in grid]
    return state, labels


def run_vec(
    scales: Sequence[float] = DEFAULT_SCALES,
    horizon: float = VEC_HORIZON,
    dt: float = VEC_DT,
) -> PowerSweepData:
    """Duty-cycle availability sweep on the vectorized fleet backend.

    The scalar sweep measures end-to-end alarm accuracy through full
    app simulations; the vec backend abstracts the workload to a
    constant MCU load, so its figure of merit is the *duty-cycle
    availability* — the fraction of the horizon each device spends
    powered and computing.  The expected shape is the same: Fixed's
    availability collapses as power starves while the reactive small
    mode degrades gracefully.
    """
    from repro.vec import FleetKernel

    state, _labels = build_vec_fleet(scales)
    FleetKernel(state).run(horizon, dt=dt)

    result = ExperimentResult(
        experiment="power-sweep",
        columns=["HarvestScale", "System", "OnFraction", "Brownouts"],
    )
    result.notes.append(
        f"backend=vec: duty-cycle availability over {horizon:.0f}s at "
        f"dt={dt}s (constant-load proxy; accuracy needs the scalar engine)"
    )
    series: Dict[str, List[float]] = {kind.value: [] for kind in VEC_KINDS}
    index = 0
    for scale in scales:
        for kind in VEC_KINDS:
            on_fraction = float(state.on_seconds[index]) / horizon
            brownouts = int(state.brownouts[index])
            series[kind.value].append(on_fraction)
            result.values[f"{scale}/{kind.value}/on_fraction"] = on_fraction
            result.values[f"{scale}/{kind.value}/brownouts"] = float(brownouts)
            result.rows.append(
                [f"{scale:g}x", kind.value, percent(on_fraction), str(brownouts)]
            )
            index += 1
    return PowerSweepData(result=result, series=series)


def run(
    seed: int = 0,
    event_count: int = 12,
    scales: Sequence[float] = DEFAULT_SCALES,
    jobs: Optional[int] = None,
    report: Optional[ParallelReport] = None,
    backend: str = "scalar",
) -> PowerSweepData:
    if backend not in ("scalar", "vec"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    if backend == "vec":
        return run_vec(scales=scales)
    grid = [
        (seed, event_count, scale, kind) for scale in scales for kind in KINDS
    ]
    traces = parallel_map(
        _run_point,
        grid,
        jobs=jobs,
        labels=[f"{scale:g}x/{kind.value}" for _, _, scale, kind in grid],
        report=report,
    )
    by_point = {
        (scale, kind): trace
        for (_, _, scale, kind), trace in zip(grid, traces)
    }

    result = ExperimentResult(
        experiment="power-sweep",
        columns=["HarvestScale", "System", "Accuracy"],
    )
    result.notes.append(f"seed={seed} events={event_count}")
    series: Dict[str, List[float]] = {kind.value: [] for kind in KINDS}

    for scale in scales:
        reference = by_point[(scale, SystemKind.CONTINUOUS)]
        for kind in KINDS:
            if kind is SystemKind.CONTINUOUS:
                accuracy = 1.0 if metrics.reported_ids(reference) else 0.0
            else:
                accuracy = _accuracy_from_traces(by_point[(scale, kind)], reference)
            series[kind.value].append(accuracy)
            result.values[f"{scale}/{kind.value}"] = accuracy
            result.rows.append([f"{scale:g}x", kind.value, percent(accuracy)])
    return PowerSweepData(result=result, series=series)


def main(seed: int = 0, backend: str = "scalar") -> ExperimentResult:
    data = run(seed=seed, backend=backend)
    print_result(data.result)
    return data.result


if __name__ == "__main__":
    main()
