"""Figure 10: sensitivity of accuracy to event inter-arrival time.

Repeats the accuracy measurement for Poisson event sequences with
decreasing means: TA over 100-400 s inter-arrivals (Pwr / Fixed /
Capy-R / Capy-P) and GRC-Fast over 10-30 s (Pwr / Fixed / Capy-P — the
paper's legend omits Capy-R, which reports nothing on GRC).

Paper shapes to reproduce: all systems improve as events spread out,
but a lower event frequency does **not** rescue the Fixed system the
way it does Capybara — Fixed still burns a full large-capacitor
recharge per cycle regardless of events.

Run: ``python -m repro.experiments.fig10_sensitivity``
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Sequence

from repro.apps.grc import GRCVariant, build_grc
from repro.apps.temp_alarm import build_temp_alarm
from repro.core.builder import SystemKind
from repro.experiments import metrics
from repro.experiments.parallel import run_campaign_parallel
from repro.experiments.runner import ExperimentResult, percent, print_result

TA_KINDS = [
    SystemKind.CONTINUOUS,
    SystemKind.FIXED,
    SystemKind.CAPY_R,
    SystemKind.CAPY_P,
]
GRC_KINDS = [SystemKind.CONTINUOUS, SystemKind.FIXED, SystemKind.CAPY_P]

DEFAULT_TA_MEANS = (100.0, 200.0, 300.0, 400.0)
DEFAULT_GRC_MEANS = (10.0, 20.0, 30.0)


@dataclass
class SensitivityData:
    result: ExperimentResult
    ta_series: Dict[str, List[float]]
    grc_series: Dict[str, List[float]]


def run(
    seed: int = 0,
    ta_events: int = 15,
    grc_events: int = 25,
    ta_means: Sequence[float] = DEFAULT_TA_MEANS,
    grc_means: Sequence[float] = DEFAULT_GRC_MEANS,
) -> SensitivityData:
    result = ExperimentResult(
        experiment="fig10-sensitivity",
        columns=["App", "MeanInterarrival", "System", "Accuracy"],
    )
    result.notes.append(
        f"seed={seed} ta_events={ta_events} grc_events={grc_events}"
    )
    ta_series: Dict[str, List[float]] = {kind.value: [] for kind in TA_KINDS}
    grc_series: Dict[str, List[float]] = {kind.value: [] for kind in GRC_KINDS}

    for mean in ta_means:
        # partial() keeps the builder picklable for the parallel runner.
        builder = partial(
            build_temp_alarm,
            seed=seed,
            event_count=ta_events,
            mean_interarrival=mean,
        )
        probe = builder(SystemKind.CONTINUOUS)
        campaign = run_campaign_parallel(
            builder, probe.schedule.horizon + 120.0, kinds=list(TA_KINDS)
        )
        for kind in TA_KINDS:
            accuracy = metrics.ta_accuracy(
                campaign.instance(kind), campaign.reference
            )
            ta_series[kind.value].append(accuracy)
            result.values[f"TempAlarm/{mean:.0f}/{kind.value}"] = accuracy
            result.rows.append(
                ["TempAlarm", f"{mean:.0f}s", kind.value, percent(accuracy)]
            )

    for mean in grc_means:
        builder = partial(
            build_grc,
            variant=GRCVariant.FAST,
            seed=seed,
            event_count=grc_events,
            mean_interarrival=mean,
        )
        probe = builder(SystemKind.CONTINUOUS)
        campaign = run_campaign_parallel(
            builder, probe.schedule.horizon + 60.0, kinds=list(GRC_KINDS)
        )
        for kind in GRC_KINDS:
            # The paper plots the fraction of *reported* events here
            # (correct or misclassified both count as reported).
            outcomes = metrics.grc_outcomes(campaign.instance(kind))
            reported = outcomes.fraction(metrics.GRC_CORRECT) + outcomes.fraction(
                metrics.GRC_MISCLASSIFIED
            )
            grc_series[kind.value].append(reported)
            result.values[f"GestureFast/{mean:.0f}/{kind.value}"] = reported
            result.rows.append(
                ["GestureFast", f"{mean:.0f}s", kind.value, percent(reported)]
            )
    return SensitivityData(
        result=result, ta_series=ta_series, grc_series=grc_series
    )


def main(seed: int = 0) -> ExperimentResult:
    data = run(seed=seed)
    print_result(data.result)
    return data.result


if __name__ == "__main__":
    main()
