"""Checkpointing vs task-based intermittent execution (related work).

The paper's related-work section positions Capybara against dynamic
checkpointing systems (Hibernus, QuickRecall, Mementos).  This study
quantifies the trade on our substrate with a long-computation workload
(a compute region needing several times the energy buffer):

* **task-based, small buffer** — livelocks: the atomic task needs more
  energy than the buffer stores, every attempt restarts from scratch
  (this is exactly why Capybara exists: the task needed a bigger mode);
* **checkpointing, small buffer** — completes: snapshots carve the
  region into buffer-sized pieces at *arbitrary* points;
* **checkpointing overhead** — the price paid: snapshot writes/restores
  per completion, and the re-executed operations between the last
  checkpoint and each power failure.

Run: ``python -m repro.experiments.checkpoint_study``
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.builder import PlatformSpec, build_fixed_system
from repro.device.board import Board
from repro.device.mcu import MCU_MSP430FR5969
from repro.energy.bank import BankSpec
from repro.energy.capacitor import CERAMIC_X5R, TANTALUM_POLYMER
from repro.energy.harvester import RegulatedSupply
from repro.errors import ProvisioningError
from repro.experiments.runner import ExperimentResult, print_result
from repro.kernel.annotations import NoAnnotation
from repro.kernel.checkpoint import (
    CheckpointingExecutor,
    CheckpointPolicy,
)
from repro.kernel.executor import IntermittentExecutor
from repro.kernel.tasks import Compute, Task, TaskGraph

#: The long atomic region: 40 compute chunks of 50k ops each (~8 mJ at
#: the rail) against a buffer holding ~1.6 mJ — 5x over-size.
CHUNKS = 40
OPS_PER_CHUNK = 50_000


def _graph() -> TaskGraph:
    def long_region(ctx):
        total = 0
        for _ in range(CHUNKS):
            yield Compute(OPS_PER_CHUNK)
            total += OPS_PER_CHUNK
        ctx.write("completions", ctx.read("completions", 0) + 1)
        ctx.write("last_total", total)
        return None

    return TaskGraph(
        [Task("long-region", long_region, NoAnnotation())], entry="long-region"
    )


def _board() -> Board:
    small = BankSpec.of_parts("small", [(CERAMIC_X5R, 3), (TANTALUM_POLYMER, 1)])
    spec = PlatformSpec(
        banks=[small],
        modes={"only": ["small"]},
        fixed_bank=small,
        harvester=RegulatedSupply(voltage=3.0, max_power=1.5e-3),
    )
    assembly = build_fixed_system(spec)
    return Board(MCU_MSP430FR5969, assembly.power_system)


@dataclass
class SystemOutcome:
    name: str
    completions: int
    power_failures: int
    checkpoints: int
    restores: int
    livelocked: bool


def _run_task_based(horizon: float) -> SystemOutcome:
    board = _board()
    spec = PlatformSpec(
        banks=[board.power_system.reservoir.bank("small").spec],
        modes={"only": ["small"]},
        fixed_bank=board.power_system.reservoir.bank("small").spec,
        harvester=RegulatedSupply(voltage=3.0, max_power=1.5e-3),
    )
    assembly = build_fixed_system(spec)
    board = Board(MCU_MSP430FR5969, assembly.power_system)
    executor = IntermittentExecutor(
        board,
        _graph(),
        assembly.runtime,
        max_power_failures_per_task=500,
    )
    livelocked = False
    try:
        executor.run(horizon)
    except ProvisioningError:
        livelocked = True
    trace = executor.trace
    completions = trace.counters.get("task_done:long-region", 0)
    failures = trace.counters.get("power_failures", 0)
    # Zero completions across many attempts is the livelock even if the
    # horizon arrived before the executor's failure guard tripped.
    livelocked = livelocked or (completions == 0 and failures > 50)
    return SystemOutcome(
        name="task-based",
        completions=completions,
        power_failures=failures,
        checkpoints=0,
        restores=0,
        livelocked=livelocked,
    )


def _run_checkpointing(
    policy: CheckpointPolicy, horizon: float
) -> SystemOutcome:
    executor = CheckpointingExecutor(
        _board(),
        _graph(),
        policy=policy,
        checkpoint_threshold=1.1,
        checkpoint_period_ops=6,
    )
    executor.run(horizon)
    trace = executor.trace
    return SystemOutcome(
        name=f"checkpointing/{policy.value}",
        completions=trace.counters.get("task_done:long-region", 0),
        power_failures=trace.counters.get("power_failures", 0),
        checkpoints=trace.counters.get("checkpoints", 0),
        restores=trace.counters.get("checkpoint_restores", 0),
        livelocked=False,
    )


def run(horizon: float = 600.0) -> ExperimentResult:
    """Run the three systems on the over-sized atomic region."""
    result = ExperimentResult(
        experiment="checkpoint-study",
        columns=[
            "System",
            "Completions",
            "PowerFailures",
            "Checkpoints",
            "Restores",
            "Livelocked",
        ],
    )
    outcomes = [
        _run_task_based(horizon),
        _run_checkpointing(CheckpointPolicy.VOLTAGE_THRESHOLD, horizon),
        _run_checkpointing(CheckpointPolicy.PERIODIC, horizon),
    ]
    for outcome in outcomes:
        result.values[f"{outcome.name}/completions"] = float(outcome.completions)
        result.values[f"{outcome.name}/power_failures"] = float(
            outcome.power_failures
        )
        result.values[f"{outcome.name}/checkpoints"] = float(outcome.checkpoints)
        result.values[f"{outcome.name}/restores"] = float(outcome.restores)
        result.values[f"{outcome.name}/livelocked"] = float(outcome.livelocked)
        result.rows.append(
            [
                outcome.name,
                str(outcome.completions),
                str(outcome.power_failures),
                str(outcome.checkpoints),
                str(outcome.restores),
                "yes" if outcome.livelocked else "no",
            ]
        )
    result.notes.append(
        "the atomic region needs ~5x the buffer's energy: task-based "
        "restart can never finish it (Capybara's answer is a bigger "
        "energy mode); checkpointing finishes by splitting it at "
        "arbitrary points — but offers no boundary at which to "
        "reconfigure a Capybara reservoir"
    )
    return result


def main(horizon: float = 600.0) -> ExperimentResult:
    result = run(horizon)
    print_result(result)
    return result


if __name__ == "__main__":
    main()
