"""Figure 2: execution with a fixed-capacity energy buffer.

The paper's motivating trace: an application tries to collect a time
series of 15 sensor samples covering an interval and then transmit the
batch by radio.

* With a **small** fixed buffer the device samples reactively (short
  recharges between bursts of ~5 samples) but *never* stores enough to
  complete the radio packet — every transmission attempt fails.
* With a **large** fixed buffer the packet completes, but the samples
  bunch into one back-to-back batch separated by long recharges — the
  series no longer covers the interval.

Run: ``python -m repro.experiments.fig02_fixed_capacity``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.apps.base import assemble_app
from repro.apps.rigs import EventSchedule
from repro.core.builder import PlatformSpec, SystemKind
from repro.device.mcu import MCU_MSP430FR5969
from repro.device.radio import BLE_CC2650
from repro.device.sensors import SENSOR_TMP36
from repro.energy.bank import BankSpec
from repro.energy.capacitor import CERAMIC_X5R, EDLC_CPH3225A, TANTALUM_POLYMER
from repro.energy.environment import DimmedLampTrace
from repro.energy.harvester import SolarPanel
from repro.experiments.runner import ExperimentResult, print_result
from repro.kernel.annotations import NoAnnotation
from repro.kernel.executor import SensorReading
from repro.kernel.tasks import Compute, Sample, Task, TaskGraph, Transmit

#: Samples per series before transmitting (the paper's 15).
SERIES_LENGTH = 15


def _graph() -> TaskGraph:
    def sample(ctx):
        reading = yield Sample("tmp36", samples=4)
        yield Compute(40_000)
        collected = ctx.read("collected", 0) + 1
        ctx.write("collected", collected)
        if collected >= SERIES_LENGTH:
            return "transmit"
        return "sample"

    def transmit(ctx):
        delivered = yield Transmit("series", 25)
        ctx.write("collected", 0)
        ctx.write("series_sent", ctx.read("series_sent", 0) + 1)
        return "sample"

    return TaskGraph(
        [
            Task("sample", sample, NoAnnotation()),
            Task("transmit", transmit, NoAnnotation()),
        ],
        entry="sample",
    )


def _build(bank: BankSpec):
    spec = PlatformSpec(
        banks=[bank],
        modes={"only": [bank.name]},
        fixed_bank=bank,
        harvester=SolarPanel(
            cells_in_series=2,
            irradiance=DimmedLampTrace(full_irradiance=30.0, duty=0.42),
        ),
    )
    return assemble_app(
        name=f"fig02-{bank.name}",
        kind=SystemKind.FIXED,
        spec=spec,
        mcu=MCU_MSP430FR5969,
        graph=_graph(),
        binding=lambda sensor, time: SensorReading(value=25.0),
        schedule=EventSchedule([]),
        sensors=[SENSOR_TMP36],
        radio=BLE_CC2650,
    )


@dataclass
class Fig02Data:
    result: ExperimentResult
    #: (time, voltage) series per capacity, for plotting the sawtooth.
    voltage_traces: Dict[str, List[tuple]]


def run(horizon: float = 600.0) -> Fig02Data:
    """Run the small- and large-capacity devices for *horizon* seconds."""
    low = BankSpec.of_parts("low-capacity", [(CERAMIC_X5R, 5)])
    high = BankSpec.of_parts(
        "high-capacity",
        [(CERAMIC_X5R, 5), (TANTALUM_POLYMER, 3), (EDLC_CPH3225A, 1)],
    )
    result = ExperimentResult(
        experiment="fig02-fixed-capacity",
        columns=[
            "Capacity",
            "Samples",
            "CompletePackets",
            "FailedTxAttempts",
            "ChargingFraction",
            "MaxSampleGap",
        ],
    )
    traces: Dict[str, List[tuple]] = {}
    for bank in (low, high):
        instance = _build(bank)
        trace = instance.run(horizon)
        charging = trace.time_in_state("charging")
        gaps = trace.inter_sample_intervals("tmp36")
        key = bank.name
        result.values[f"{key}/samples"] = float(len(trace.samples))
        result.values[f"{key}/packets"] = float(len(trace.packets))
        result.values[f"{key}/tx_failures"] = float(
            trace.counters.get("tx_failures", 0)
        )
        result.values[f"{key}/charging_fraction"] = charging / horizon
        result.values[f"{key}/max_gap"] = max(gaps) if gaps else 0.0
        result.rows.append(
            [
                key,
                str(len(trace.samples)),
                str(len(trace.packets)),
                str(trace.counters.get("tx_failures", 0)),
                f"{charging / horizon:.2f}",
                f"{max(gaps) if gaps else 0.0:.1f}s",
            ]
        )
        traces[key] = [(v.time, v.voltage) for v in trace.voltages]
    result.notes.append(
        "low capacity: reactive sampling but the 25-byte packet never "
        "completes; high capacity: packets complete but samples batch "
        "behind long recharges"
    )
    return Fig02Data(result=result, voltage_traces=traces)


def main(horizon: float = 600.0) -> ExperimentResult:
    from repro.experiments.plots import ascii_timeline

    data = run(horizon)
    print_result(data.result)
    for name, series in data.voltage_traces.items():
        print()
        print(ascii_timeline(series, label=f"{name}: energy buffer voltage"))
    return data.result


if __name__ == "__main__":
    main()
