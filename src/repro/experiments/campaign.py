"""Campaign helpers: run one application across the four systems.

The paper's Sections 6.2-6.4 all reuse the same runs — every
application executed under Pwr / Fixed / Capy-R / Capy-P on an
identical event schedule.  :func:`run_campaign` produces that bundle;
figure modules project different metrics out of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.apps.base import AppInstance
from repro.core.builder import SystemKind

#: Display order of the paper's bar groups.
DEFAULT_KINDS = [
    SystemKind.CONTINUOUS,
    SystemKind.FIXED,
    SystemKind.CAPY_R,
    SystemKind.CAPY_P,
]

AppBuilder = Callable[[SystemKind], AppInstance]


@dataclass
class Campaign:
    """All four system runs of one application on one event schedule."""

    app_name: str
    instances: Dict[SystemKind, AppInstance]
    horizon: float

    def instance(self, kind: SystemKind) -> AppInstance:
        return self.instances[kind]

    @property
    def reference(self) -> AppInstance:
        """The continuously-powered reference board."""
        return self.instances[SystemKind.CONTINUOUS]


def run_campaign(
    builder: AppBuilder,
    horizon: float,
    kinds: Optional[List[SystemKind]] = None,
) -> Campaign:
    """Build and run one app under each system kind.

    *builder* must embed the seed/schedule so every kind replays the
    same ground truth (the app ``build_*`` functions already do).
    """
    kinds = kinds if kinds is not None else list(DEFAULT_KINDS)
    instances: Dict[SystemKind, AppInstance] = {}
    app_name = ""
    for kind in kinds:
        instance = builder(kind)
        instance.run(horizon)
        instances[kind] = instance
        app_name = instance.name
    return Campaign(app_name=app_name, instances=instances, horizon=horizon)
