"""Section 6.5 characterization + the Section 5.2 mechanism comparison.

Board-area accounting for the Capybara prototype (solar 700 mm^2, power
system 640 mm^2, one reconfiguration switch 80 mm^2), the latch
capacitor's ~3 minute retention, and the quantitative comparison
against the Vtop-threshold design alternative (2x area, 1.5x leakage,
bounded EEPROM write endurance).

Run: ``python -m repro.experiments.characterization``
"""

from __future__ import annotations

from repro.apps.capysat import SPLITTER_AREA_FRACTION
from repro.energy.bank import BankSpec
from repro.energy.capacitor import TANTALUM_POLYMER
from repro.energy.switch import BankSwitch, retention_from_latch
from repro.energy.threshold import ThresholdReconfigurator
from repro.experiments.runner import ExperimentResult, print_result

#: Prototype board facts from Section 6.5 (mm^2).
SOLAR_AREA_MM2 = 700.0
POWER_SYSTEM_AREA_MM2 = 640.0
BOARD_AREA_MM2 = 60.0 * 60.0


def run() -> ExperimentResult:
    switch = BankSwitch(name="reference")
    threshold = ThresholdReconfigurator(
        bank_spec=BankSpec.single("threshold-bank", TANTALUM_POLYMER, 8)
    )
    retention = retention_from_latch(
        latch_capacitance=switch.latch_capacitance,
        leak_current=switch.leakage_current,
        v_latch=switch.v_latch,
    )

    result = ExperimentResult(
        experiment="sec6.5-characterization",
        columns=["Quantity", "Value", "Paper"],
    )

    rows = [
        (
            "solar panel area",
            f"{SOLAR_AREA_MM2:.0f} mm^2",
            "700 mm^2",
            "solar_area_mm2",
            SOLAR_AREA_MM2,
        ),
        (
            "power system area",
            f"{POWER_SYSTEM_AREA_MM2:.0f} mm^2",
            "640 mm^2",
            "power_area_mm2",
            POWER_SYSTEM_AREA_MM2,
        ),
        (
            "one switch area",
            f"{switch.area * 1e6:.0f} mm^2",
            "80 mm^2",
            "switch_area_mm2",
            switch.area * 1e6,
        ),
        (
            "latch capacitor",
            f"{switch.latch_capacitance * 1e6:.1f} uF",
            "4.7 uF",
            "latch_uF",
            switch.latch_capacitance * 1e6,
        ),
        (
            "switch retention",
            f"{retention / 60.0:.1f} min",
            "~3 min",
            "retention_min",
            retention / 60.0,
        ),
        (
            "threshold/switch area ratio",
            f"{threshold.area_ratio_to(switch):.1f}x",
            "2x",
            "threshold_area_ratio",
            threshold.area_ratio_to(switch),
        ),
        (
            "threshold/switch leakage ratio",
            f"{threshold.leakage_ratio_to(switch):.1f}x",
            "1.5x",
            "threshold_leakage_ratio",
            threshold.leakage_ratio_to(switch),
        ),
        (
            "threshold EEPROM endurance",
            f"{threshold.write_endurance} writes",
            "limited",
            "threshold_endurance",
            float(threshold.write_endurance),
        ),
        (
            "CapySat splitter / switch area",
            f"{SPLITTER_AREA_FRACTION:.0%}",
            "20%",
            "splitter_fraction",
            SPLITTER_AREA_FRACTION,
        ),
    ]
    for label, value, paper, key, number in rows:
        result.rows.append([label, value, paper])
        result.values[key] = number
    return result


def main() -> ExperimentResult:
    result = run()
    print_result(result)
    return result


if __name__ == "__main__":
    main()
