"""Figure 4: provisioning atomicity by capacitor volume and type.

The paper compares banks built from ceramic X5R parts against banks of
ultra-compact CPH3225A supercapacitors, in the highest-density package,
paralleled one part at a time.  Two observations must reproduce:

1. an equal or larger volume of ceramics provides (much) less
   atomicity than supercapacitors — ceramic density is low;
2. the supercapacitor's atomicity grows with **diminishing increase**
   on the log-log plot: a single part's ~160 ohm ESR strands most of
   its stored energy below the output booster's droop floor, and each
   added parallel part both adds capacity and halves the ESR, so the
   early parts pay off disproportionately and the curve's slope decays
   toward linear.

Run: ``python -m repro.experiments.fig04_volume``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.device.mcu import MCU_MSP430FR5969, MCUModel
from repro.energy.bank import BankSpec, CapacitorBank
from repro.energy.booster import OutputBooster
from repro.energy.capacitor import CERAMIC_X5R, EDLC_CPH3225A, CapacitorSpec
from repro.errors import ConfigurationError, PowerSystemError
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import ExperimentResult, print_result


@dataclass(frozen=True)
class VolumePoint:
    """One (volume, atomicity) point for one technology."""

    technology: str
    parts: int
    volume_mm3: float
    atomicity_mops: float


def atomicity_by_parts(
    part: CapacitorSpec,
    count: int,
    mcu: MCUModel = MCU_MSP430FR5969,
    output_booster: OutputBooster = OutputBooster(),
    charge_voltage: float = 2.4,
) -> float:
    """Mops sustained by *count* parallel parts from a full charge.

    Returns 0 when the bank cannot deliver the MCU's power at all
    (ESR droop floor above the charge voltage — the infeasible region).
    """
    spec = BankSpec.single(f"{part.name}-x{count}", part, count)
    v_start = min(charge_voltage, spec.rated_voltage)
    floor = output_booster.min_bank_voltage(spec.esr, mcu.active_power)
    if floor >= v_start:
        return 0.0
    bank = CapacitorBank(spec, initial_voltage=v_start)
    try:
        seconds = output_booster.time_to_brownout(bank, mcu.active_power)
    except PowerSystemError:
        return 0.0
    return seconds * mcu.op_rate / 1e6


def _volume_point(label: str, part: CapacitorSpec, count: int) -> VolumePoint:
    """One (technology, part count) grid point; pool worker entry."""
    return VolumePoint(
        label, count, part.volume * count * 1e9, atomicity_by_parts(part, count)
    )


def _vec_points(grid) -> List[VolumePoint]:
    """The whole (technology, count) grid as one vectorized fleet."""
    from repro.vec import atomicity_ops, fleet_from_banks

    banks = [
        BankSpec.single(f"{part.name}-x{count}", part, count)
        for _, part, count in grid
    ]
    state = fleet_from_banks(banks, initial_voltage="target")
    ops = atomicity_ops(state, MCU_MSP430FR5969.op_rate)
    return [
        VolumePoint(label, count, part.volume * count * 1e9, float(mops) / 1e6)
        for (label, part, count), mops in zip(grid, ops)
    ]


def run(
    max_parts: int = 8,
    jobs: Optional[int] = None,
    backend: str = "scalar",
) -> ExperimentResult:
    """Sweep part count for both technologies.

    Every (technology, count) point is independent: ``backend="scalar"``
    fans the grid out over the parallel runner, ``backend="vec"``
    evaluates it as one :mod:`repro.vec` fleet.
    """
    if backend not in ("scalar", "vec"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    result = ExperimentResult(
        experiment="fig04-volume",
        columns=["Technology", "Parts", "Volume (mm^3)", "Atomicity (Mops)"],
    )
    grid = [
        (label, part, count)
        for label, part in (("ceramic", CERAMIC_X5R), ("supercap", EDLC_CPH3225A))
        for count in range(1, max_parts + 1)
    ]
    if backend == "vec":
        points = _vec_points(grid)
    else:
        points = parallel_map(
            _volume_point,
            grid,
            jobs=jobs,
            labels=[f"{label}-x{count}" for label, _, count in grid],
        )
    curves: Dict[str, List[VolumePoint]] = {"ceramic": [], "supercap": []}
    for point in points:
        curves[point.technology].append(point)
        result.values[f"{point.technology}/{point.parts}/mops"] = point.atomicity_mops
        result.values[f"{point.technology}/{point.parts}/volume_mm3"] = point.volume_mm3
        result.rows.append(
            [
                point.technology,
                str(point.parts),
                f"{point.volume_mm3:.1f}",
                f"{point.atomicity_mops:.4f}",
            ]
        )
    # Marginal gain of each added supercap (the diminishing-increase
    # observation) recorded as a series.
    supercap = curves["supercap"]
    for earlier, later in zip(supercap, supercap[1:]):
        if earlier.atomicity_mops > 0.0:
            ratio = later.atomicity_mops / earlier.atomicity_mops
            result.values[f"supercap/gain/{later.parts}"] = ratio
    result.notes.append(
        "supercap marginal gain per doubling decays toward 2x (linear) "
        "as paralleling dilutes the ESR penalty"
    )
    return result


def main(backend: str = "scalar") -> ExperimentResult:
    result = run(backend=backend)
    print_result(result)
    return result


if __name__ == "__main__":
    main()
