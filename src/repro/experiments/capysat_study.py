"""Section 6.6: the CapySat case study.

Flies the two-MCU satellite over a few orbits and verifies the case
study's claims:

* both energy modes (IMU sampling, redundant-encoded downlink) are
  served concurrently by the diode-splitter bank arrangement;
* the sampling MCU rides through short outages on its small bank while
  the comms MCU's beacon requires the dense bank;
* both nodes go dark in eclipse and resume at sunrise with state
  intact (non-volatile sample/beacon counters keep counting);
* the splitter costs 20% of a general bank switch's area.

Run: ``python -m repro.experiments.capysat_study``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.capysat import CapySat, build_capysat
from repro.energy.environment import OrbitTrace
from repro.energy.switch import BankSwitch
from repro.experiments.runner import ExperimentResult, print_result


@dataclass
class CapySatData:
    result: ExperimentResult
    satellite: CapySat


def run(seed: int = 0, orbits: float = 2.0) -> CapySatData:
    orbit = OrbitTrace()
    satellite = build_capysat(seed=seed, orbit=orbit)
    horizon = orbits * orbit.period
    traces = satellite.run(horizon)
    sampling = traces["sampling"]
    comms = traces["comms"]

    in_sun = horizon * (1.0 - orbit.eclipse_fraction)
    sample_count = len(sampling.samples)
    beacon_count = len(comms.packets)
    sampling_off = sampling.time_in_state("off")
    comms_charging = comms.time_in_state("charging")
    switch = BankSwitch(name="reference")

    result = ExperimentResult(
        experiment="sec6.6-capysat",
        columns=["Quantity", "Value"],
    )
    rows = [
        ("orbits flown", f"{orbits:.1f}", "orbits", orbits),
        ("IMU sample rounds", str(sample_count), "samples", float(sample_count)),
        ("beacons downlinked", str(beacon_count), "beacons", float(beacon_count)),
        (
            "samples per sunlit hour",
            f"{sample_count / (in_sun / 3600.0):.0f}",
            "samples_per_sun_hour",
            sample_count / (in_sun / 3600.0),
        ),
        (
            "beacons per sunlit hour",
            f"{beacon_count / (in_sun / 3600.0):.0f}",
            "beacons_per_sun_hour",
            beacon_count / (in_sun / 3600.0),
        ),
        (
            "comms time charging",
            f"{comms_charging:.0f}s",
            "comms_charging_s",
            comms_charging,
        ),
        (
            "splitter area / switch area",
            f"{satellite.splitter_area / switch.area:.0%}",
            "splitter_ratio",
            satellite.splitter_area / switch.area,
        ),
    ]
    for label, value, key, number in rows:
        result.rows.append([label, value])
        result.values[key] = number
    result.values["sampling_power_failures"] = float(
        sampling.counters.get("power_failures", 0)
    )
    result.values["comms_power_failures"] = float(
        comms.counters.get("power_failures", 0)
    )
    result.notes.append(
        "both MCUs go dark each eclipse and resume with NV counters intact"
    )
    return CapySatData(result=result, satellite=satellite)


def main(seed: int = 0) -> ExperimentResult:
    data = run(seed=seed)
    print_result(data.result)
    return data.result


if __name__ == "__main__":
    main()
