"""Parallel experiment execution.

Every evaluation artifact re-runs the *same* deterministic simulation
under different power systems or parameter points, so the experiment
layer is embarrassingly parallel: the four :class:`SystemKind` runs of
a campaign, each point of a sweep grid, and each top-level experiment
of ``run_all`` are independent.  This module fans that work out over a
``ProcessPoolExecutor`` while preserving the methodology the paper
depends on:

* **deterministic ordering** — results always come back in submission
  order, regardless of which worker finished first;
* **seed isolation** — workers never share RNG state: each task
  rebuilds its app from the builder (which embeds the seed), so a
  parallel run is bit-identical to a serial one;
* **graceful fallback** — ``REPRO_JOBS=1``, a single-core machine, or
  a non-picklable task quietly degrades to the serial path with the
  same results;
* **timing capture** — each task reports its wall-clock cost so
  ``run_all`` can show where the time went;
* **resilience** — a :class:`RetryPolicy` re-runs failed tasks with
  exponential backoff and deterministic jitter, and ``on_error="capture"``
  degrades a permanently failing task into a :class:`TaskError` row
  instead of aborting the batch.  Paired with
  :class:`~repro.faults.inject.WorkerChaos`, the same machinery becomes
  a chaos harness: injected crashes are deterministic per
  ``(label, attempt)``, and because every task is a pure function of its
  arguments, a crashed-and-retried batch is byte-identical to an
  undisturbed one.

Workers return only the :class:`~repro.sim.trace.Trace` (plain data);
the parent process rebuilds the cheap ``AppInstance`` shell locally and
grafts the worker's trace onto it, so nothing hard-to-pickle (closures,
generators, heaps of callbacks) ever crosses the process boundary.
"""

from __future__ import annotations

import os
import pickle
import threading as _threading
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.apps.base import AppInstance
from repro.core.builder import SystemKind
from repro.errors import ConfigurationError
from repro.experiments.campaign import DEFAULT_KINDS, AppBuilder, Campaign
from repro.faults.inject import WorkerChaos, _unit_draw
from repro.observability.telemetry import Telemetry, resolve_telemetry
from repro.sim.trace import Trace

T = TypeVar("T")

#: Environment variable forcing the worker count (1 disables the pool).
JOBS_ENV = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count: ``REPRO_JOBS`` if set, else the CPU count."""
    override = os.environ.get(JOBS_ENV)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _picklable(*objects: Any) -> bool:
    """Whether every object survives pickling (pool transport check)."""
    try:
        for obj in objects:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


@dataclass
class TaskTiming:
    """Wall-clock cost of one parallel task, for reporting.

    ``seconds`` is the cost of the attempt that produced the result (or
    the last attempt, for tasks that gave up); ``attempts`` is how many
    tries that took.
    """

    label: str
    seconds: float
    attempts: int = 1


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    The delay before attempt ``n+1`` is ``base_delay * 2**(n-1)`` capped
    at *max_delay*, scaled by a jitter factor in ``[0.5, 1.0)`` drawn —
    reproducibly — from SHA-256 of ``(seed, label, attempt)``.  Nothing
    about a retried batch depends on wall-clock or global RNG state, so
    retries never perturb results.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ConfigurationError("retry delays must be non-negative")

    def delay(self, label: str, attempt: int) -> float:
        """Backoff before re-running *label* after failed *attempt*."""
        backoff = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        jitter = _unit_draw(self.seed, f"retry:{label}", attempt)
        return backoff * (0.5 + 0.5 * jitter)


@dataclass(frozen=True)
class TaskError:
    """A task that failed every attempt, captured as data.

    With ``on_error="capture"`` the failing task's result slot holds one
    of these instead of aborting the whole batch — ``run_all`` turns it
    into a structured error row.
    """

    label: str
    error: str
    attempts: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[error] {self.label} failed after {self.attempts} attempt(s): {self.error}"


@dataclass
class ParallelReport:
    """Per-task timings plus how the batch actually executed."""

    mode: str = "serial"  # "serial" or "process-pool"
    jobs: int = 1
    timings: List[TaskTiming] = field(default_factory=list)

    @property
    def total_task_seconds(self) -> float:
        return sum(timing.seconds for timing in self.timings)


def _timed_call(fn: Callable[..., T], args: Tuple[Any, ...]) -> Tuple[T, float]:
    started = _time.perf_counter()
    result = fn(*args)
    return result, _time.perf_counter() - started


def _attempt_call(
    fn: Callable[..., T],
    args: Tuple[Any, ...],
    chaos: Optional[WorkerChaos],
    label: str,
    attempt: int,
) -> Tuple[T, float]:
    """One timed attempt, with the chaos check inside the worker.

    Module-level so the pool can ship it; the chaos policy travels by
    value (it is a frozen dataclass), and its decision is a pure
    function of ``(seed, label, attempt)``, so parent and worker agree
    on which attempts die without any shared state.
    """
    started = _time.perf_counter()
    if chaos is not None:
        chaos.raise_if_injected(label, attempt)
    result = fn(*args)
    return result, _time.perf_counter() - started


def parallel_map(
    fn: Callable[..., T],
    tasks: Sequence[Tuple[Any, ...]],
    jobs: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    report: Optional[ParallelReport] = None,
    retry: Optional[RetryPolicy] = None,
    chaos: Optional[WorkerChaos] = None,
    on_error: str = "raise",
    telemetry: Optional[Telemetry] = None,
) -> List[Any]:
    """Apply *fn* to each argument tuple, fanning out over processes.

    Results are returned in task order.  Falls back to an in-process
    serial loop when *jobs* (default :func:`default_jobs`) is 1, there
    is a single task, or *fn*/*tasks* cannot be pickled.

    Args:
        fn: a module-level (picklable) callable.
        tasks: one argument tuple per invocation.
        jobs: worker processes; ``None`` uses :func:`default_jobs`.
        labels: optional display labels for the timing report (also the
            retry/chaos identity of each task — keep them stable).
        report: optional :class:`ParallelReport` to fill with timings.
        retry: re-run failed tasks under this policy (default: one
            attempt, no retry).
        chaos: deterministic fault injection — each attempt first asks
            the policy whether to crash (:mod:`repro.faults`).
        on_error: ``"raise"`` re-raises once a task exhausts its
            attempts; ``"capture"`` stores a :class:`TaskError` in that
            task's result slot and keeps going.
        telemetry: sink for ``campaign.retries`` / ``campaign.gave_up``
            counters (``None`` resolves the ambient scope).

    Raises:
        ConfigurationError: for an unknown *on_error* mode.
    """
    if on_error not in ("raise", "capture"):
        raise ConfigurationError(
            f'on_error must be "raise" or "capture", got {on_error!r}'
        )
    jobs = default_jobs() if jobs is None else max(1, jobs)
    labels = list(labels) if labels is not None else [str(i) for i in range(len(tasks))]
    telemetry = resolve_telemetry(telemetry)
    max_attempts = retry.max_attempts if retry is not None else 1
    use_pool = (
        jobs > 1
        and len(tasks) > 1
        and _picklable(fn, list(tasks))
        and (chaos is None or _picklable(chaos))
    )

    if report is not None:
        report.mode = "process-pool" if use_pool else "serial"
        report.jobs = jobs if use_pool else 1

    def _backoff(label: str, attempt: int) -> None:
        if retry is None:
            return
        delay = retry.delay(label, attempt)
        if delay > 0.0:
            _time.sleep(delay)

    def _give_up(label: str, attempt: int, error: BaseException) -> TaskError:
        if telemetry.enabled:
            telemetry.inc("campaign.gave_up")
        if on_error == "raise":
            raise error
        return TaskError(label=label, error=repr(error), attempts=attempt)

    outputs: List[Any] = []
    if not use_pool:
        for label, args in zip(labels, tasks):
            for attempt in range(1, max_attempts + 1):
                try:
                    result, seconds = _attempt_call(fn, args, chaos, label, attempt)
                except Exception as error:
                    if attempt >= max_attempts:
                        outputs.append(_give_up(label, attempt, error))
                        if report is not None:
                            report.timings.append(TaskTiming(label, 0.0, attempt))
                        break
                    if telemetry.enabled:
                        telemetry.inc("campaign.retries")
                    _backoff(label, attempt)
                else:
                    outputs.append(result)
                    if report is not None:
                        report.timings.append(TaskTiming(label, seconds, attempt))
                    break
        return outputs

    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_attempt_call, fn, args, chaos, label, 1)
            for label, args in zip(labels, tasks)
        ]
        # Collect in submission order.  A failed future retries by
        # resubmitting the same task (next attempt number) after the
        # backoff; later tasks keep running in other workers meanwhile.
        for index, (label, future) in enumerate(zip(labels, futures)):
            attempt = 1
            while True:
                try:
                    result, seconds = future.result()
                except Exception as error:
                    if attempt >= max_attempts:
                        outputs.append(_give_up(label, attempt, error))
                        if report is not None:
                            report.timings.append(TaskTiming(label, 0.0, attempt))
                        break
                    if telemetry.enabled:
                        telemetry.inc("campaign.retries")
                    _backoff(label, attempt)
                    attempt += 1
                    future = pool.submit(
                        _attempt_call, fn, tasks[index], chaos, label, attempt
                    )
                else:
                    outputs.append(result)
                    if report is not None:
                        report.timings.append(TaskTiming(label, seconds, attempt))
                    break
    return outputs


# ---------------------------------------------------------------------------
# Persistent worker pool (long-lived callers: the job service)
# ---------------------------------------------------------------------------

class WorkerPool:
    """A process pool that survives across jobs instead of per call.

    :func:`parallel_map` tears its ``ProcessPoolExecutor`` down after
    every batch — the right shape for a one-shot CLI run, the wrong one
    for a long-lived service where pool spin-up would dominate small
    jobs.  This class keeps one executor alive across any number of
    :meth:`run_task` calls and makes teardown **idempotent**: a pool
    shared between a request handler and a process-exit hook may see
    ``shutdown`` twice (or concurrently), and the second call must be a
    no-op rather than double-joining workers.

    ``jobs=1`` runs tasks inline in the calling thread — same retry and
    chaos semantics, no subprocess — which is also the graceful-fallback
    path when a task cannot be pickled.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._lock = _threading.Lock()
        #: Tasks handed to :meth:`run_task` over the pool's lifetime
        #: (cache hits served without touching the pool leave this
        #: untouched — the service tests assert exactly that).
        self.tasks_run = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def mode(self) -> str:
        return "serial" if self.jobs == 1 else "process-pool"

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise ConfigurationError("WorkerPool is shut down")
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            return self._executor

    def shutdown(self) -> None:
        """Release the workers.  Safe to call any number of times.

        The executor reference is swapped out under the lock before the
        (blocking) join, so a second caller — another thread, an atexit
        hook, a ``with`` block unwinding after an explicit shutdown —
        observes ``None`` and returns immediately instead of joining
        half-dead worker processes a second time.
        """
        with self._lock:
            if self._closed and self._executor is None:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    #: Alias so the pool can sit wherever an Executor-shaped object is
    #: expected for cleanup.
    close = shutdown

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- execution ------------------------------------------------------

    def run_task(
        self,
        fn: Callable[..., T],
        args: Tuple[Any, ...],
        label: str = "task",
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[WorkerChaos] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> Tuple[T, TaskTiming]:
        """Run one task to completion under the retry/chaos contract.

        Blocking; callers that must not block (the asyncio service) wrap
        this in a thread.  Semantics match :func:`parallel_map` with
        ``on_error="raise"``: *chaos* may kill attempts deterministically
        per ``(label, attempt)``, *retry* re-runs them with backoff, and
        the task's last error propagates once attempts are exhausted.
        """
        if self._closed:
            raise ConfigurationError("WorkerPool is shut down")
        telemetry = resolve_telemetry(telemetry)
        max_attempts = retry.max_attempts if retry is not None else 1
        use_pool = (
            self.jobs > 1
            and _picklable(fn, list(args))
            and (chaos is None or _picklable(chaos))
        )
        self.tasks_run += 1
        last_error: Optional[BaseException] = None
        for attempt in range(1, max_attempts + 1):
            try:
                if use_pool:
                    future = self._ensure_executor().submit(
                        _attempt_call, fn, args, chaos, label, attempt
                    )
                    result, seconds = future.result()
                else:
                    result, seconds = _attempt_call(fn, args, chaos, label, attempt)
            except Exception as error:
                last_error = error
                if attempt >= max_attempts:
                    if telemetry.enabled:
                        telemetry.inc("campaign.gave_up")
                    raise
                if telemetry.enabled:
                    telemetry.inc("campaign.retries")
                if retry is not None:
                    delay = retry.delay(label, attempt)
                    if delay > 0.0:
                        _time.sleep(delay)
            else:
                return result, TaskTiming(label, seconds, attempt)
        raise last_error  # pragma: no cover - unreachable (loop raises)

    def submit_attempt(
        self,
        fn: Callable[..., T],
        args: Tuple[Any, ...],
        chaos: Optional[WorkerChaos],
        label: str,
        attempt: int,
    ):
        """Submit ONE attempt and return its future (no retry loop).

        The building block the DAG dispatcher (:mod:`repro.experiments.dag`)
        schedules with: it owns the retry/backoff policy itself because a
        failed attempt must not block unrelated ready tasks the way the
        blocking :meth:`run_task` loop would.  Semantics per attempt are
        identical — the same :func:`_attempt_call` body runs worker-side,
        so chaos decisions stay a pure function of ``(label, attempt)``.
        """
        if self._closed:
            raise ConfigurationError("WorkerPool is shut down")
        return self._ensure_executor().submit(
            _attempt_call, fn, args, chaos, label, attempt
        )

    def map_tasks(
        self,
        fn: Callable[..., T],
        tasks: Sequence[Tuple[Any, ...]],
        labels: Optional[Sequence[str]] = None,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[WorkerChaos] = None,
        on_error: str = "raise",
        telemetry: Optional[Telemetry] = None,
        report: Optional[ParallelReport] = None,
    ) -> List[Any]:
        """:func:`parallel_map` semantics on the persistent executor.

        Results come back in task order; retry/chaos/``on_error``
        contracts match :func:`parallel_map` exactly, so a campaign can
        move from the per-call pool to a long-lived one without
        changing results.  Each task counts toward :attr:`tasks_run`
        (the batch is N tasks, however they are scheduled).
        """
        if on_error not in ("raise", "capture"):
            raise ConfigurationError(
                f'on_error must be "raise" or "capture", got {on_error!r}'
            )
        if self._closed:
            raise ConfigurationError("WorkerPool is shut down")
        labels = (
            list(labels)
            if labels is not None
            else [str(i) for i in range(len(tasks))]
        )
        telemetry = resolve_telemetry(telemetry)
        max_attempts = retry.max_attempts if retry is not None else 1
        use_pool = (
            self.jobs > 1
            and len(tasks) > 1
            and _picklable(fn, list(tasks))
            and (chaos is None or _picklable(chaos))
        )
        self.tasks_run += len(tasks)
        if report is not None:
            report.mode = "process-pool" if use_pool else "serial"
            report.jobs = self.jobs if use_pool else 1

        def _give_up(label: str, attempt: int, error: BaseException) -> TaskError:
            if telemetry.enabled:
                telemetry.inc("campaign.gave_up")
            if on_error == "raise":
                raise error
            return TaskError(label=label, error=repr(error), attempts=attempt)

        def _backoff(label: str, attempt: int) -> None:
            if retry is None:
                return
            delay = retry.delay(label, attempt)
            if delay > 0.0:
                _time.sleep(delay)

        outputs: List[Any] = []
        if not use_pool:
            for label, args in zip(labels, tasks):
                for attempt in range(1, max_attempts + 1):
                    try:
                        result, seconds = _attempt_call(
                            fn, args, chaos, label, attempt
                        )
                    except Exception as error:
                        if attempt >= max_attempts:
                            outputs.append(_give_up(label, attempt, error))
                            if report is not None:
                                report.timings.append(
                                    TaskTiming(label, 0.0, attempt)
                                )
                            break
                        if telemetry.enabled:
                            telemetry.inc("campaign.retries")
                        _backoff(label, attempt)
                    else:
                        outputs.append(result)
                        if report is not None:
                            report.timings.append(
                                TaskTiming(label, seconds, attempt)
                            )
                        break
            return outputs

        executor = self._ensure_executor()
        futures = [
            executor.submit(_attempt_call, fn, args, chaos, label, 1)
            for label, args in zip(labels, tasks)
        ]
        for index, (label, future) in enumerate(zip(labels, futures)):
            attempt = 1
            while True:
                try:
                    result, seconds = future.result()
                except Exception as error:
                    if attempt >= max_attempts:
                        outputs.append(_give_up(label, attempt, error))
                        if report is not None:
                            report.timings.append(TaskTiming(label, 0.0, attempt))
                        break
                    if telemetry.enabled:
                        telemetry.inc("campaign.retries")
                    _backoff(label, attempt)
                    attempt += 1
                    future = executor.submit(
                        _attempt_call, fn, tasks[index], chaos, label, attempt
                    )
                else:
                    outputs.append(result)
                    if report is not None:
                        report.timings.append(TaskTiming(label, seconds, attempt))
                    break
        return outputs


# ---------------------------------------------------------------------------
# Campaign fan-out
# ---------------------------------------------------------------------------

def _run_builder_kind(builder: AppBuilder, kind: SystemKind, horizon: float) -> Trace:
    """Worker body: build one system variant, run it, return the trace."""
    instance = builder(kind)
    instance.run(horizon)
    return instance.trace


def _run_spec_kind(scenario_json: str, kind_value: str, horizon: float) -> Trace:
    """Worker body for the spec path: only plain strings cross the
    process boundary; the scenario rebuilds app + system worker-side."""
    from repro.spec import build_scenario_app

    instance = build_scenario_app(scenario_json, kind=kind_value)
    instance.run(horizon)
    return instance.trace


def run_campaign_parallel(
    builder: AppBuilder,
    horizon: float,
    kinds: Optional[List[SystemKind]] = None,
    jobs: Optional[int] = None,
    report: Optional[ParallelReport] = None,
) -> Campaign:
    """:func:`~repro.experiments.campaign.run_campaign`, fanned out.

    Each :class:`SystemKind` runs in its own worker process; the parent
    rebuilds the (cheap, un-run) instances locally and attaches the
    workers' traces, so the returned :class:`Campaign` is drop-in
    compatible with every metric helper.  *builder* must embed the
    seed/schedule, exactly as the serial contract requires — that is
    also what makes worker runs bit-identical to serial ones.

    Builders that cannot be pickled (closures over rigs, lambdas) run
    serially in-process with identical results.  Spec-backed builders
    (anything exposing ``scenario_json``, e.g.
    :class:`repro.spec.ScenarioBuilder`) take a stronger path: workers
    receive only the canonical scenario JSON string — always picklable —
    and rebuild the app themselves.
    """
    kinds = kinds if kinds is not None else list(DEFAULT_KINDS)
    scenario_json = getattr(builder, "scenario_json", None)
    if scenario_json is not None:
        traces = parallel_map(
            _run_spec_kind,
            [(scenario_json, kind.value, horizon) for kind in kinds],
            jobs=jobs,
            labels=[kind.value for kind in kinds],
            report=report,
        )
    else:
        traces = parallel_map(
            _run_builder_kind,
            [(builder, kind, horizon) for kind in kinds],
            jobs=jobs,
            labels=[kind.value for kind in kinds],
            report=report,
        )
    instances: Dict[SystemKind, AppInstance] = {}
    app_name = ""
    for kind, trace in zip(kinds, traces):
        instance = builder(kind)
        _graft_trace(instance, trace)
        instances[kind] = instance
        app_name = instance.name
    return Campaign(app_name=app_name, instances=instances, horizon=horizon)


def _graft_trace(instance: AppInstance, trace: Trace) -> None:
    """Attach a worker-produced trace to a locally-built instance."""
    if trace is instance.trace:
        return  # serial fallback may already share the object
    instance.trace = trace
    executor = instance.executor
    if hasattr(executor, "trace"):
        executor.trace = trace
