"""Experiment harnesses — one module per evaluation figure.

Each ``fig*`` module exposes a ``run(...)`` function returning a
structured result plus a ``main()`` that prints the same rows/series
the paper reports.  ``python -m repro.experiments.<module>`` regenerates
any single figure; the benchmark suite under ``benchmarks/`` wraps the
same entry points.
"""

from repro.experiments import metrics
from repro.experiments.dag import (
    CampaignDag,
    CampaignState,
    CheckpointStore,
    CompletedTask,
    DagReport,
    build_report,
    report_from_state,
    run_dag,
)
from repro.experiments.registry import (
    REGISTRY,
    Experiment,
    experiment,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.runner import ExperimentResult, format_table

__all__ = [
    "metrics",
    "ExperimentResult",
    "format_table",
    "REGISTRY",
    "Experiment",
    "experiment",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "CampaignDag",
    "CampaignState",
    "CheckpointStore",
    "CompletedTask",
    "DagReport",
    "build_report",
    "report_from_state",
    "run_dag",
]
