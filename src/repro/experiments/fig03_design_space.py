"""Figure 3: the atomicity-vs-capacitance design space.

Reproduces the paper's measurement: connect the MCU to capacitors of
different sizes and record the longest span of ALU operations that
completes before a power failure.  The resulting curve is the set of
*optimal* design points; to its left a task's atomicity requirement is
infeasible, to its right the system is over-provisioned and spends
unnecessary time recharging (not reactive).

The paper's curve spans roughly 0-4 Mops over 100 uF - 10 mF; we also
report the recharge time at each point — the reactivity cost that
motivates reconfigurability.

Run: ``python -m repro.experiments.fig03_design_space``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.device.mcu import MCU_MSP430FR5969, MCUModel
from repro.energy.bank import BankSpec, CapacitorBank
from repro.energy.booster import InputBooster, OutputBooster
from repro.energy.capacitor import CapacitorSpec, TANTALUM_POLYMER
from repro.errors import ConfigurationError
from repro.experiments.parallel import parallel_map
from repro.experiments.runner import ExperimentResult, print_result


@dataclass(frozen=True)
class DesignPoint:
    """One point of the Figure 3 curve."""

    capacitance: float
    atomicity_ops: float
    charge_time: float

    @property
    def atomicity_mops(self) -> float:
        return self.atomicity_ops / 1e6


def atomicity_for_bank(
    bank_spec: BankSpec,
    mcu: MCUModel = MCU_MSP430FR5969,
    output_booster: OutputBooster = OutputBooster(),
    charge_voltage: float = 2.4,
) -> float:
    """Longest ALU-op span a fully-charged bank sustains, in operations."""
    bank = CapacitorBank(
        bank_spec, initial_voltage=min(charge_voltage, bank_spec.rated_voltage)
    )
    seconds = output_booster.time_to_brownout(bank, mcu.active_power)
    return seconds * mcu.op_rate


def charge_time_for_bank(
    bank_spec: BankSpec,
    harvest_power: float = 1.0e-3,
    input_booster: InputBooster = InputBooster(),
    harvester_voltage: float = 3.0,
) -> float:
    """Seconds to charge the bank from empty at *harvest_power*.

    Integrates the charging paths (bypass, cold start, efficiency ramp)
    in small voltage steps.
    """
    bank = CapacitorBank(bank_spec)
    target = min(input_booster.v_charge_target, bank_spec.rated_voltage)
    elapsed = 0.0
    voltage = 0.0
    step = target / 200.0
    while voltage < target - 1e-9:
        v_next = min(target, voltage + step)
        power = input_booster.charge_power(voltage, harvester_voltage, harvest_power)
        if power <= 0.0:
            return float("inf")
        energy = bank_spec.energy_at(v_next) - bank_spec.energy_at(voltage)
        elapsed += energy / power
        voltage = v_next
    return elapsed


def _scaled_bank(part: CapacitorSpec, capacitance: float) -> BankSpec:
    """A bank of *part*-like material totalling *capacitance* farads.

    Fractional scaling models the paper's continuum of capacitor sizes
    (they tested many discrete values; we interpolate the family).
    """
    scale = capacitance / part.effective_capacitance
    scaled = CapacitorSpec(
        name=f"{part.name}-x{scale:.2f}",
        technology=part.technology,
        capacitance=part.capacitance * scale,
        esr=part.esr / max(scale, 1e-9),
        leak_resistance=part.leak_resistance / max(scale, 1e-9),
        rated_voltage=part.rated_voltage,
        volume=part.volume * scale,
        cycle_endurance=part.cycle_endurance,
        derating=part.derating,
    )
    return BankSpec.single(f"sweep-{capacitance * 1e6:.0f}uF", scaled)


def _design_point(capacitance: float, harvest_power: float) -> DesignPoint:
    """One grid point of the capacitance sweep; pool worker entry."""
    bank = _scaled_bank(TANTALUM_POLYMER, capacitance)
    return DesignPoint(
        capacitance=capacitance,
        atomicity_ops=atomicity_for_bank(bank),
        charge_time=charge_time_for_bank(bank, harvest_power=harvest_power),
    )


def _vec_curve(
    capacitances: List[float], harvest_power: float
) -> List[DesignPoint]:
    """The whole grid as one fleet: both axes in two vectorized sweeps."""
    from repro.vec import atomicity_ops, charge_times, fleet_from_banks

    banks = [_scaled_bank(TANTALUM_POLYMER, c) for c in capacitances]
    charged = fleet_from_banks(
        banks, harvest_power=harvest_power, initial_voltage="target"
    )
    ops = atomicity_ops(charged, MCU_MSP430FR5969.op_rate)
    times = charge_times(fleet_from_banks(banks, harvest_power=harvest_power))
    return [
        DesignPoint(capacitance=c, atomicity_ops=float(o), charge_time=float(t))
        for c, o, t in zip(capacitances, ops, times)
    ]


def run(
    points: int = 13,
    c_min: float = 100e-6,
    c_max: float = 10e-3,
    harvest_power: float = 1.0e-3,
    jobs: Optional[int] = None,
    backend: str = "scalar",
) -> Tuple[ExperimentResult, List[DesignPoint]]:
    """Sweep capacitance logarithmically and measure both axes.

    Grid points are independent: ``backend="scalar"`` fans them out over
    the parallel runner, ``backend="vec"`` evaluates the whole grid as
    one :mod:`repro.vec` fleet (same integrators, array arithmetic).
    """
    if backend not in ("scalar", "vec"):
        raise ConfigurationError(f"unknown backend {backend!r}")
    capacitances = [
        float(c) for c in np.logspace(np.log10(c_min), np.log10(c_max), points)
    ]
    result = ExperimentResult(
        experiment="fig03-design-space",
        columns=["Capacitance (uF)", "Atomicity (Mops)", "Charge time (s)"],
    )
    if backend == "vec":
        curve = _vec_curve(capacitances, harvest_power)
    else:
        curve = parallel_map(
            _design_point,
            [(capacitance, harvest_power) for capacitance in capacitances],
            jobs=jobs,
            labels=[f"{capacitance * 1e6:.0f}uF" for capacitance in capacitances],
        )
    for capacitance, point in zip(capacitances, curve):
        charge = point.charge_time
        key = f"{capacitance * 1e6:.0f}uF"
        result.values[f"{key}/mops"] = point.atomicity_mops
        result.values[f"{key}/charge_time"] = charge
        result.rows.append(
            [
                f"{capacitance * 1e6:.0f}",
                f"{point.atomicity_mops:.3f}",
                f"{charge:.1f}",
            ]
        )
    result.notes.append(
        "points left of a task's atomicity requirement are infeasible; "
        "points right of it charge longer than necessary (not reactive)"
    )
    return result, curve


def main(backend: str = "scalar") -> ExperimentResult:
    result, _ = run(backend=backend)
    print_result(result)
    return result


if __name__ == "__main__":
    main()
