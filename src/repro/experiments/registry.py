"""Decorator-based experiment registry.

Experiments self-register with the :func:`experiment` decorator instead
of being hand-listed in ``run_all``::

    @experiment("fig10", "Figure 10: sensitivity", uses_seed=True)
    def fig10(seed: int, scale: float) -> str:
        return _capture(fig10_sensitivity.main, seed=seed)

The registry is the single source of truth for the CLI's ``list`` and
``experiment`` commands and for ``run_all``'s suite; adding a new
experiment is one decorated function in
:mod:`repro.experiments.suite` — no other file changes.

Registered runners share one uniform signature ``(seed, scale) -> str``
(the experiment's printed output); which arguments an experiment
actually depends on is declared via ``uses_seed``/``uses_scale`` so the
result cache keys on exactly the inputs that matter.

The built-in catalogue lives in :mod:`repro.experiments.suite` and is
imported lazily on first registry query, keeping ``import
repro.experiments`` fast and cycle-free.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.observability.telemetry import Telemetry, telemetry_scope

#: Runner signature: (seed, scale) -> captured printed output.
ExperimentRunner = Callable[[int, float], str]

#: Scenario declaration: (seed, scale) -> the declarative
#: :class:`~repro.spec.ScenarioSpec` objects the experiment simulates.
ScenarioFactory = Callable[[int, float], List["object"]]


@dataclass(frozen=True)
class Experiment:
    """One registered, independently runnable, cacheable experiment."""

    job_id: str
    title: str
    runner: ExperimentRunner
    uses_seed: bool = False
    uses_scale: bool = False
    #: Whether the runner accepts a ``backend=`` keyword ("scalar" or
    #: "vec"); experiments without it reject any non-default backend.
    uses_backend: bool = False
    #: Whether ``run_all`` includes this experiment (CLI-only entries
    #: like the standalone fig08/fig09 halves of the campaign job set
    #: this False).
    in_suite: bool = True
    #: Optional declarative scenario declaration.  When set, the
    #: canonical hash of the declared specs joins the cache key, so
    #: editing one experiment's scenario parameters invalidates only
    #: that experiment's cached results.
    scenarios: Optional[ScenarioFactory] = None
    #: Declared predecessors: job ids that must complete before this
    #: experiment may dispatch (``@experiment(..., after=("power-sweep",))``).
    #: Scheduling metadata only — it never joins the cache key, because
    #: every experiment stays a pure function of its own inputs.
    after: Tuple[str, ...] = ()

    def params(
        self, seed: int, scale: float, backend: str = "scalar"
    ) -> Dict[str, object]:
        """The cache-key parameters this experiment actually depends on.

        The backend joins the key only when it deviates from the scalar
        default, so pre-existing cached results stay addressable.
        """
        params: Dict[str, object] = {}
        if self.uses_seed:
            params["seed"] = seed
        if self.uses_scale:
            params["scale"] = scale
        if self.uses_backend and backend != "scalar":
            params["backend"] = backend
        return params

    def spec_hash(self, seed: int, scale: float) -> Optional[str]:
        """Canonical hash over the declared scenarios, or ``None``."""
        if self.scenarios is None:
            return None
        from repro.spec import combined_spec_hash

        return combined_spec_hash(list(self.scenarios(seed, scale)))


class ExperimentRegistry:
    """Ordered mapping of job id -> :class:`Experiment`."""

    def __init__(self) -> None:
        self._experiments: Dict[str, Experiment] = {}
        self._catalogue_loaded = False

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, exp: Experiment) -> Experiment:
        if exp.job_id in self._experiments:
            raise ConfigurationError(
                f"experiment {exp.job_id!r} is already registered"
            )
        self._experiments[exp.job_id] = exp
        return exp

    def experiment(
        self,
        job_id: str,
        title: str,
        *,
        uses_seed: bool = False,
        uses_scale: bool = False,
        uses_backend: bool = False,
        in_suite: bool = True,
        scenarios: Optional[ScenarioFactory] = None,
        after: Tuple[str, ...] = (),
    ) -> Callable[[ExperimentRunner], ExperimentRunner]:
        """Decorator: register the function as experiment *job_id*."""

        def decorate(runner: ExperimentRunner) -> ExperimentRunner:
            self.register(
                Experiment(
                    job_id=job_id,
                    title=title,
                    runner=runner,
                    uses_seed=uses_seed,
                    uses_scale=uses_scale,
                    uses_backend=uses_backend,
                    in_suite=in_suite,
                    scenarios=scenarios,
                    after=tuple(after),
                )
            )
            return runner

        return decorate

    # ------------------------------------------------------------------
    # Queries (catalogue loads lazily on first use)
    # ------------------------------------------------------------------

    def _ensure_catalogue(self) -> None:
        if not self._catalogue_loaded:
            self._catalogue_loaded = True
            importlib.import_module("repro.experiments.suite")

    def get(self, job_id: str) -> Experiment:
        self._ensure_catalogue()
        if job_id not in self._experiments:
            raise KeyError(
                f"unknown experiment {job_id!r}; registered: {self.ids()}"
            )
        return self._experiments[job_id]

    def ids(self) -> List[str]:
        """All registered ids, in registration (= display) order."""
        self._ensure_catalogue()
        return list(self._experiments)

    def all(self) -> List[Experiment]:
        self._ensure_catalogue()
        return list(self._experiments.values())

    def suite(self) -> List[Experiment]:
        """The experiments ``run_all`` executes, in display order."""
        self._ensure_catalogue()
        return [exp for exp in self._experiments.values() if exp.in_suite]

    def __contains__(self, job_id: str) -> bool:
        self._ensure_catalogue()
        return job_id in self._experiments

    def __len__(self) -> int:
        self._ensure_catalogue()
        return len(self._experiments)


#: The process-wide registry the decorator writes into.
REGISTRY = ExperimentRegistry()

#: Module-level decorator: ``@experiment("fig03", "Figure 3: ...")``.
experiment = REGISTRY.experiment


def get_experiment(job_id: str) -> Experiment:
    """Look up one registered experiment (loads the catalogue)."""
    return REGISTRY.get(job_id)


def list_experiments(suite_only: bool = False) -> List[Experiment]:
    """All registered experiments, in display order."""
    return REGISTRY.suite() if suite_only else REGISTRY.all()


def run_experiment(
    name: str,
    seed: int = 0,
    scale: float = 1.0,
    telemetry: Optional[Telemetry] = None,
    backend: str = "scalar",
) -> str:
    """Run one registered experiment and return its printed output.

    The public facade entry point (``from repro import run_experiment``).
    When *telemetry* is given, the run executes inside a
    :func:`~repro.observability.telemetry_scope` so every instrumented
    component reports into it.  *backend* selects the simulation engine
    for experiments that declare ``uses_backend`` (grid-shaped sweeps);
    asking any other experiment for a non-scalar backend is an error,
    never a silent fallback.

    Raises:
        KeyError: for unknown experiment names.
        ConfigurationError: for a backend the experiment doesn't route.
    """
    exp = get_experiment(name)
    if backend != "scalar" and not exp.uses_backend:
        raise ConfigurationError(
            f"experiment {name!r} has no {backend!r} backend; "
            f"backend-routable experiments: "
            f"{[e.job_id for e in REGISTRY.all() if e.uses_backend]}"
        )
    kwargs = {"backend": backend} if exp.uses_backend else {}
    if telemetry is None:
        return exp.runner(seed, scale, **kwargs)
    with telemetry_scope(telemetry):
        text = exp.runner(seed, scale, **kwargs)
    # Baseline metrics so even purely analytic experiments (fig03, fig04)
    # produce a non-empty metrics export.  Both values are deterministic.
    if telemetry.enabled:
        telemetry.inc("experiment.runs")
        telemetry.set_gauge("experiment.output_chars", float(len(text)))
    return text
