"""Figure 11: distribution of times between samples (TA reactivity).

In time-series sensing the *spacing* of samples matters as much as the
count.  This experiment replays one TempAlarm event sequence (the
paper's uses 20 temperature events) against Fixed, Capy-R and Capy-P,
and breaks the inter-sample intervals into the paper's three classes:

* **back-to-back** (sub-second; limited utility — grey),
* **spaced, no events missed** (green),
* **spaced, >= 1 event missed inside the gap** (red).

Paper shapes to reproduce: Fixed forces long 110-250 s gaps (its big
bank recharging), which carry most of the missed events; Capybara's
spaced gaps sit at the small-bank charge time (~1.5-4 s), and the large
capacity recharges only when events actually occur.  Capy-R's mean
charge time is shorter than Capy-P's (the pre-charge voltage penalty
makes Capy-P charge in a less efficient region), which is how Capy-R
buys its slight accuracy edge in Figure 10 at the cost of latency.

Run: ``python -m repro.experiments.fig11_intersample``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps.temp_alarm import build_temp_alarm
from repro.core.builder import SystemKind
from repro.experiments import metrics
from repro.experiments.runner import ExperimentResult, print_result

KINDS = [SystemKind.FIXED, SystemKind.CAPY_R, SystemKind.CAPY_P]

#: The paper's Figure 11 input: 20 temperature alarm events.
DEFAULT_EVENT_COUNT = 20


@dataclass
class Fig11Data:
    result: ExperimentResult
    breakdowns: Dict[str, metrics.IntervalBreakdown]


def run(
    seed: int = 0,
    event_count: int = DEFAULT_EVENT_COUNT,
    mean_interarrival: float = 144.0,
) -> Fig11Data:
    result = ExperimentResult(
        experiment="fig11-intersample",
        columns=[
            "System",
            "BackToBack",
            "SpacedNoMiss",
            "SpacedMissed",
            "MedianSpacedGap",
            "MeanChargeTime",
        ],
    )
    breakdowns: Dict[str, metrics.IntervalBreakdown] = {}
    for kind in KINDS:
        instance = build_temp_alarm(
            kind,
            seed=seed,
            event_count=event_count,
            mean_interarrival=mean_interarrival,
        )
        horizon = instance.schedule.horizon + 120.0
        instance.run(horizon)
        breakdown = metrics.ta_interval_breakdown(instance)
        breakdowns[kind.value] = breakdown
        spaced = sorted(breakdown.quiet + breakdown.missed_events)
        median_gap = spaced[len(spaced) // 2] if spaced else 0.0
        # The paper's 84 s vs 220 s comparison is about the *large
        # capacity* charge time; pick the charge durations whose reason
        # names the radio mode (Fixed charges only one bank, so for it
        # the overall mean applies).
        big_charges = [
            value
            for name, series in instance.trace.durations.items()
            if name.startswith("charge:") and "ta-radio" in name
            for value in series
        ]
        if big_charges:
            mean_charge = sum(big_charges) / len(big_charges)
        else:
            mean_charge = instance.trace.mean_duration("charge")
        key = kind.value
        result.values[f"{key}/back_to_back"] = float(len(breakdown.back_to_back))
        result.values[f"{key}/quiet"] = float(len(breakdown.quiet))
        result.values[f"{key}/missed"] = float(len(breakdown.missed_events))
        result.values[f"{key}/median_spaced_gap"] = median_gap
        result.values[f"{key}/mean_charge_time"] = mean_charge
        result.rows.append(
            [
                key,
                str(len(breakdown.back_to_back)),
                str(len(breakdown.quiet)),
                str(len(breakdown.missed_events)),
                f"{median_gap:.1f}s",
                f"{mean_charge:.1f}s",
            ]
        )
    result.notes.append(
        "spaced gaps: Fixed sits at its big-bank recharge time; "
        "Capybara variants at the small-bank charge time"
    )
    return Fig11Data(result=result, breakdowns=breakdowns)


def main(seed: int = 0) -> ExperimentResult:
    from repro.experiments.plots import ascii_histogram

    data = run(seed=seed)
    print_result(data.result)
    for system, breakdown in data.breakdowns.items():
        spaced = breakdown.quiet + breakdown.missed_events
        print()
        print(
            ascii_histogram(
                spaced,
                bins=8,
                label=f"{system}: spaced inter-sample gaps "
                f"({len(breakdown.back_to_back)} back-to-back omitted)",
            )
        )
    return data.result


if __name__ == "__main__":
    main()
