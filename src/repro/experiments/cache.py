"""Content-keyed on-disk cache for experiment results.

Every evaluation artifact in this reproduction is a deterministic
function of (experiment id, parameters, the simulator's source code).
The cache exploits that: :func:`result_key` hashes exactly those three
inputs, and :class:`ResultCache` maps the key to a pickled payload on
disk.  A second ``run_all`` invocation with unchanged inputs replays
every table from the cache in milliseconds; editing *any* file under
``src/repro`` changes the code fingerprint and invalidates everything
it could have influenced.

Keying rules:

* **experiment id** — the registry name ("fig08", "power-sweep", ...);
* **parameters** — a flat JSON-serialisable dict (seed, scale, ...),
  hashed order-independently;
* **code fingerprint** — SHA-256 over the contents of every ``*.py``
  file in the installed ``repro`` package (cached per process).

The cache directory defaults to ``.repro-cache`` under the current
working directory and can be pointed elsewhere with the
``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Optional

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"
#: Bump to invalidate every existing cache entry on format changes.
#: v2: payloads became (stdout, telemetry snapshot | None) tuples.
#: v3: on-disk entries gained a magic + SHA-256 checksum header so any
#: byte-level corruption is a detected (quarantined) miss, never a
#: wrong hit.
CACHE_FORMAT_VERSION = 3

#: On-disk entry layout: MAGIC, then the SHA-256 digest of the body,
#: then the pickled body.  ``get`` recomputes the digest before
#: unpickling — a flipped bit anywhere in the body fails closed instead
#: of deserialising garbage (pickle happily "succeeds" on many
#: corruptions).
CACHE_MAGIC = b"RPC3"
_DIGEST_SIZE = hashlib.sha256().digest_size


def default_cache_dir() -> Path:
    """The configured cache directory (not created until first write)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path(DEFAULT_CACHE_DIR)


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 fingerprint of the installed ``repro`` package sources.

    Hashes (relative path, content) for every ``*.py`` file, sorted by
    path, so the fingerprint is stable across filesystems and invariant
    to mtime churn but changes whenever any simulator code changes.
    """
    import repro

    package_root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def result_key(
    experiment_id: str,
    params: Dict[str, Any],
    fingerprint: Optional[str] = None,
    spec_hash: Optional[str] = None,
    fault_hash: Optional[str] = None,
    trace_hash: Optional[str] = None,
) -> str:
    """Stable hash of (experiment id, parameters, spec hash, code fingerprint).

    *fingerprint* defaults to :func:`code_fingerprint`; tests inject
    synthetic values to exercise invalidation without editing sources.
    *spec_hash* is the canonical hash of the experiment's declared
    scenario specs (:func:`repro.spec.spec_hash`): editing one
    experiment's scenario parameters changes only that experiment's
    keys.  *fault_hash* is the canonical hash of an injected fault
    schedule (:func:`repro.faults.fault_schedule_hash`): a faulted run
    produces different results, so it must never share a key with the
    clean run.  *trace_hash* is the content digest of any recorded
    environment traces the scenario replays
    (:func:`repro.spec.scenario_trace_hash`): a spec that pins a trace
    *file* hashes the same whatever path it lives at, replays of
    identical content hit, and re-recording the file's bytes misses.
    All three are omitted from the payload when ``None`` so unaffected
    experiments keep their existing keys byte for byte.
    """
    body: Dict[str, Any] = {
        "version": CACHE_FORMAT_VERSION,
        "experiment": experiment_id,
        "params": params,
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    if spec_hash is not None:
        body["spec"] = spec_hash
    if fault_hash is not None:
        body["faults"] = fault_hash
    if trace_hash is not None:
        body["trace"] = trace_hash
    payload = json.dumps(body, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries whose on-disk payload failed to unpickle (each also
    #: counts as a miss).
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }


@dataclass
class ResultCache:
    """Pickle-on-disk key/value store for experiment payloads.

    Payloads must be picklable; the experiment layer stores
    (captured stdout, headline values) tuples.  Writes are atomic
    (temp file + rename) so a crashed run never leaves a truncated
    entry behind.
    """

    root: Path = field(default_factory=default_cache_dir)
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    #: Optional telemetry sink; corrupt payloads bump the
    #: ``cache.corrupt_entries`` counter on it.
    telemetry: Optional[Any] = None

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """The stored payload, or ``None`` on miss/corruption.

        A present-but-unreadable entry is treated as a miss: the entry
        is counted, reported via the ``cache.corrupt_entries`` telemetry
        counter, and removed so the re-computed result can replace it.
        "Unreadable" is decided by the checksum header, not by whether
        pickle happens to raise: a truncated write, a flipped bit, a
        wrong-magic or pre-v3 entry all fail the digest check before any
        byte is deserialised, so corruption can never surface as a
        wrong hit.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        header_len = len(CACHE_MAGIC) + _DIGEST_SIZE
        body = raw[header_len:]
        intact = (
            raw.startswith(CACHE_MAGIC)
            and len(raw) >= header_len
            and hashlib.sha256(body).digest()
            == raw[len(CACHE_MAGIC) : header_len]
        )
        if intact:
            try:
                payload = pickle.loads(body)
            except Exception:
                # Checksum passed but the pickle no longer decodes
                # (e.g. classes renamed since the entry was written).
                intact = False
        if not intact:
            self.stats.misses += 1
            self.stats.corrupt += 1
            self._report_corrupt()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def _report_corrupt(self) -> None:
        from repro.observability.telemetry import resolve_telemetry

        telemetry = resolve_telemetry(self.telemetry)
        if telemetry.enabled:
            telemetry.inc("cache.corrupt_entries")

    def put(self, key: str, payload: Any) -> None:
        """Store *payload* under *key* (no-op when disabled).

        The write is atomic *per writer*: each call stages into its own
        unique temp file before the rename.  A shared temp name (the old
        ``<key>.tmp``) let two concurrent writers of the same key race —
        one could rename the file the other was still filling, publishing
        a truncated entry.  With a unique temp per writer the rename
        always publishes a fully written file (last writer wins, both
        payloads being identical by construction), and a worker killed
        mid-write leaves only an orphan temp, never a partial entry.
        """
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        handle, tmp_name = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(handle, "wb") as tmp:
                tmp.write(CACHE_MAGIC)
                tmp.write(hashlib.sha256(body).digest())
                tmp.write(body)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deletes
                pass
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.pkl"))
