"""Exception hierarchy for the Capybara reproduction.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler
while still distinguishing configuration mistakes from simulation-time
faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A component was constructed or wired with invalid parameters."""


class SpecError(ConfigurationError):
    """A declarative scenario spec (:mod:`repro.spec`) failed validation:
    unknown fields, a bad schema version, an unserialisable component, or
    a reference to an unknown part, app, or system kind."""


class FaultSpecError(SpecError):
    """A declarative fault schedule (:mod:`repro.faults`) failed
    validation: an unknown fault kind, a malformed window, or a bad
    schema version."""


class TraceFormatError(SpecError):
    """A recorded environment trace (:mod:`repro.traces`) failed
    validation: bad magic or schema version, a chunk whose sha256 does
    not match its samples, a truncated or missing file, non-monotonic
    sample times, or a pinned ``trace_hash`` that does not match the
    file content.  Corruption is always surfaced as this typed error —
    the reader never yields garbage samples."""


class DagError(SpecError):
    """A campaign dependency graph (:mod:`repro.experiments.dag`) is
    malformed: an experiment names an unknown predecessor, the declared
    edges form a cycle, or a node id is duplicated.  Raised when the
    graph is *built* — before any task is dispatched — so a bad
    declaration can never strand a half-run campaign."""


class CheckpointError(SpecError):
    """A campaign checkpoint file (:mod:`repro.experiments.dag`) failed
    validation: bad magic, a schema version from the future, or a body
    whose SHA-256 does not match its header.  Loaders quarantine the
    file and fall back to a fresh campaign — corruption can skip no
    task it shouldn't."""


class VecCapabilityError(SpecError):
    """A scenario uses features the vectorized backend (:mod:`repro.vec`)
    does not support — e.g. a time-varying harvester trace or a fault
    schedule.  Raised instead of silently falling back to the scalar
    engine; the message lists every unsupported feature."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class InjectedFault(ReproError):
    """Base class for deliberately injected failures (:mod:`repro.faults`).

    Raised *on purpose* by the fault-injection layer to exercise the
    resilience machinery; reaching a user unhandled means a retry or
    degradation path is missing, not that the simulation is wrong.
    """


class InjectedWorkerCrash(InjectedFault):
    """A campaign worker was deliberately crashed mid-job."""


class InjectedWorkerTimeout(InjectedFault):
    """A campaign worker was deliberately timed out mid-job."""


class ScheduleError(SimulationError):
    """An event was scheduled in the past or after the simulation horizon."""


class PowerSystemError(ReproError):
    """The power system was driven outside its electrical envelope."""


class BankConfigurationError(PowerSystemError):
    """A reservoir reconfiguration request referenced unknown or
    incompatible banks."""


class BrownoutError(PowerSystemError):
    """Energy was requested from a reservoir that cannot deliver it.

    Raised only by *strict* APIs; the intermittent executor treats
    brownout as a normal power-failure event rather than an error.
    """


class EnergyModeError(ReproError):
    """An energy mode was referenced before being registered, or its
    bank mapping is inconsistent with the reservoir."""


class TaskGraphError(ReproError):
    """An intermittent task graph is malformed (unknown transition,
    duplicate task name, missing entry task, ...)."""


class NonVolatileAccessError(ReproError):
    """Volatile state was accessed across a power failure boundary."""


class ProvisioningError(ReproError):
    """Task energy provisioning failed (task cannot complete even at the
    maximum allowed capacity, or the capacitor inventory is infeasible)."""


class WearLimitExceeded(PowerSystemError):
    """A component with limited write/cycle endurance exceeded its budget.

    Applies to the EEPROM digital potentiometer of the Vtop-threshold
    design alternative and to EDLC supercapacitor cycle budgets.
    """
