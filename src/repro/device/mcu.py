"""Microcontroller electrical models.

Constants are datasheet-order values for the two MCUs the paper uses
(MSP430FR5969 on the sensing platform, CC2650 wireless MCU on the GRC
board), calibrated so the Figure 3 design-space curve spans the paper's
0-4 Mops over 100 uF - 10 mF (see DESIGN.md Section 3: what matters is
the ~6 nJ consumed from storage per ALU op once booster losses are
included).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MCUModel:
    """Electrical envelope of a microcontroller.

    Attributes:
        name: part name.
        active_power: draw while computing at full clock, watts (at the
            regulated rail; booster losses are applied by the power
            system).
        sense_power: draw while awaiting/driving a peripheral, watts
            (CPU mostly idle, clocks on).
        sleep_power: draw in the deepest memory-retaining sleep, watts.
        op_rate: ALU operations per second at full clock.
        boot_time: cold-boot time (hardware init + runtime restore), s.
        min_voltage: minimum rail voltage for operation, volts.
    """

    name: str
    active_power: float
    sense_power: float
    sleep_power: float
    op_rate: float
    boot_time: float
    min_voltage: float

    def __post_init__(self) -> None:
        if self.active_power <= 0.0:
            raise ConfigurationError("active_power must be positive")
        if not 0.0 < self.sense_power <= self.active_power:
            raise ConfigurationError("sense_power must be in (0, active_power]")
        if not 0.0 < self.sleep_power <= self.sense_power:
            raise ConfigurationError("sleep_power must be in (0, sense_power]")
        if self.op_rate <= 0.0:
            raise ConfigurationError("op_rate must be positive")
        if self.boot_time < 0.0:
            raise ConfigurationError("boot_time must be non-negative")
        if self.min_voltage <= 0.0:
            raise ConfigurationError("min_voltage must be positive")

    @property
    def op_energy(self) -> float:
        """Rail energy per ALU operation, joules."""
        return self.active_power / self.op_rate

    def compute_time(self, ops: float) -> float:
        """Seconds to execute *ops* ALU operations."""
        if ops < 0.0:
            raise ConfigurationError("ops must be non-negative")
        return ops / self.op_rate

    def boot_energy(self) -> float:
        """Rail energy consumed by a cold boot, joules."""
        return self.active_power * self.boot_time


#: MSP430FR5969: the paper's Figure 3/4 measurement MCU.  1 MIPS-class
#: low-power operation; ~4 mW active at the 2.5 V rail yields ~4 nJ/op
#: at the rail, landing near 6 nJ/op from storage after booster losses.
MCU_MSP430FR5969 = MCUModel(
    name="MSP430FR5969",
    active_power=4.0e-3,
    sense_power=1.2e-3,
    sleep_power=6.0e-6,
    op_rate=1.0e6,
    boot_time=5.0e-3,
    min_voltage=1.8,
)

#: CC2650 wireless MCU (GRC board): similar compute envelope, slightly
#: hungrier active draw because the BLE stack keeps more clocks running.
MCU_CC2650 = MCUModel(
    name="CC2650",
    active_power=6.0e-3,
    sense_power=1.8e-3,
    sleep_power=3.0e-6,
    op_rate=2.0e6,
    boot_time=8.0e-3,
    min_voltage=1.8,
)
