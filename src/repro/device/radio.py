"""Radio electrical models.

The paper's terrestrial applications transmit BLE advertisements from a
CC2650 ("transmitting a 25 byte Bluetooth packet requires operating
atomically with a much higher power level for 35 milliseconds").
CapySat instead keys a long-range radio for 250 ms at 30 mA, because a
1-byte payload carries a 1064x redundant encoding to reach Earth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RadioModel:
    """Electrical envelope of a packet radio.

    Attributes:
        name: part name.
        startup_time: radio/stack bring-up before the first byte, s.
        startup_power: draw during bring-up, watts.
        per_byte_time: airtime (plus stack overhead) per payload byte, s.
        tx_power: draw while transmitting, watts.
        min_voltage: minimum rail voltage (2.0 V for the paper's BLE).
        loss_rate: probability a transmitted packet fails to reach the
            sniffer for radio reasons (interference), even on continuous
            power — the paper's "inevitable non-ideal behaviour".
    """

    name: str
    startup_time: float
    startup_power: float
    per_byte_time: float
    tx_power: float
    min_voltage: float = 2.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.startup_time < 0.0:
            raise ConfigurationError("startup_time must be non-negative")
        if self.startup_power < 0.0:
            raise ConfigurationError("startup_power must be non-negative")
        if self.per_byte_time <= 0.0:
            raise ConfigurationError("per_byte_time must be positive")
        if self.tx_power <= 0.0:
            raise ConfigurationError("tx_power must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError("loss_rate must be in [0, 1)")

    def airtime(self, size_bytes: int) -> float:
        """Time on air for a *size_bytes* payload, seconds (no startup)."""
        if size_bytes < 1:
            raise ConfigurationError("size_bytes must be >= 1")
        return size_bytes * self.per_byte_time

    def transmit_time(self, size_bytes: int) -> float:
        """Startup plus airtime, seconds."""
        return self.startup_time + self.airtime(size_bytes)

    def transmit_energy(self, size_bytes: int) -> float:
        """Rail energy for a full transmission, joules."""
        return (
            self.startup_power * self.startup_time
            + self.tx_power * self.airtime(size_bytes)
        )


#: CC2650 BLE advertisement path.  Startup dominates (stack bring-up
#: from a cold intermittent boot); a 25-byte packet lands near the
#: paper's 35 ms airtime figure.
BLE_CC2650 = RadioModel(
    name="ble-cc2650",
    startup_time=120.0e-3,
    startup_power=15.0e-3,
    per_byte_time=1.4e-3,
    tx_power=24.0e-3,
    min_voltage=2.0,
    loss_rate=0.02,
)

#: CapySat downlink: 250 ms keyed at 30 mA on a ~2.5 V rail for a
#: 1-byte payload (1064x redundant encoding).
CAPYSAT_RADIO = RadioModel(
    name="capysat-downlink",
    startup_time=50.0e-3,
    startup_power=10.0e-3,
    per_byte_time=250.0e-3,
    tx_power=75.0e-3,
    min_voltage=2.0,
    loss_rate=0.05,
)
