"""Board-level hardware models.

The paper's prototypes pair an MSP430FR5969 / CC2650 microcontroller
with five sensors and a BLE radio.  This package models each component's
electrical envelope — active power, warm-up time, minimum operating
voltage, per-operation energy — which is what determines task atomicity
and energy-mode sizing.
"""

from repro.device.mcu import MCU_CC2650, MCU_MSP430FR5969, MCUModel
from repro.device.radio import BLE_CC2650, CAPYSAT_RADIO, RadioModel
from repro.device.sensors import (
    SENSOR_APDS9960_GESTURE,
    SENSOR_APDS9960_PROXIMITY,
    SENSOR_LED,
    SENSOR_LSM303_MAGNETOMETER,
    SENSOR_PHOTOTRANSISTOR,
    SENSOR_TMP36,
    SensorModel,
)
from repro.device.board import Board

__all__ = [
    "MCUModel",
    "MCU_MSP430FR5969",
    "MCU_CC2650",
    "RadioModel",
    "BLE_CC2650",
    "CAPYSAT_RADIO",
    "SensorModel",
    "SENSOR_PHOTOTRANSISTOR",
    "SENSOR_APDS9960_GESTURE",
    "SENSOR_APDS9960_PROXIMITY",
    "SENSOR_TMP36",
    "SENSOR_LSM303_MAGNETOMETER",
    "SENSOR_LED",
    "Board",
]
