"""Sensor and actuator electrical models.

Each sensor is characterised by its warm-up time (power-on until valid
data), per-sample acquisition time, active draw, and minimum operating
voltage.  The paper's examples pin several of these: "collecting a
sample from a sensor may require operating atomically at a low power
level for only 8 milliseconds"; the APDS-9960 gesture engine must stay
on "for the minimum duration of a gesture motion (250 ms)" and needs a
2.5 V rail.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SensorModel:
    """Electrical envelope of a sensor (or simple actuator).

    Attributes:
        name: part name.
        active_power: draw while acquiring, watts.
        warmup_time: power-on to first valid sample, seconds.
        sample_time: acquisition time per sample, seconds.
        min_voltage: minimum rail voltage, volts.
    """

    name: str
    active_power: float
    warmup_time: float
    sample_time: float
    min_voltage: float = 1.8

    def __post_init__(self) -> None:
        if self.active_power <= 0.0:
            raise ConfigurationError(f"{self.name}: active_power must be positive")
        if self.warmup_time < 0.0:
            raise ConfigurationError(f"{self.name}: warmup_time must be non-negative")
        if self.sample_time <= 0.0:
            raise ConfigurationError(f"{self.name}: sample_time must be positive")
        if self.min_voltage <= 0.0:
            raise ConfigurationError(f"{self.name}: min_voltage must be positive")

    def acquisition_time(self, samples: int = 1) -> float:
        """Warm-up plus *samples* acquisitions, seconds."""
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        return self.warmup_time + samples * self.sample_time

    def acquisition_energy(self, samples: int = 1) -> float:
        """Rail energy for warm-up plus *samples* acquisitions, joules
        (sensor draw only; add the MCU's sense power separately)."""
        return self.active_power * self.acquisition_time(samples)


#: Bare phototransistor + ADC read: the GRC proximity pre-check.
SENSOR_PHOTOTRANSISTOR = SensorModel(
    name="phototransistor",
    active_power=0.2e-3,
    warmup_time=0.5e-3,
    sample_time=1.0e-3,
    min_voltage=1.8,
)

#: APDS-9960 gesture engine: must run for a full gesture motion (250 ms
#: minimum per the paper) and wants a 2.5 V rail.
SENSOR_APDS9960_GESTURE = SensorModel(
    name="apds9960-gesture",
    active_power=8.0e-3,
    warmup_time=30.0e-3,
    sample_time=250.0e-3,
    min_voltage=2.5,
)

#: APDS-9960 proximity engine: short ranging burst (CSR's distance
#: sampler; 32 samples per event in the paper).
SENSOR_APDS9960_PROXIMITY = SensorModel(
    name="apds9960-proximity",
    active_power=3.0e-3,
    warmup_time=5.0e-3,
    sample_time=3.0e-3,
    min_voltage=2.5,
)

#: TMP36 analog temperature sensor: the paper's 8 ms low-power sample.
SENSOR_TMP36 = SensorModel(
    name="tmp36",
    active_power=0.15e-3,
    warmup_time=1.0e-3,
    sample_time=8.0e-3,
    min_voltage=1.8,
)

#: Magnetometer (LSM303-class), CSR's field monitor.
SENSOR_LSM303_MAGNETOMETER = SensorModel(
    name="magnetometer",
    active_power=1.0e-3,
    warmup_time=4.0e-3,
    sample_time=10.0e-3,
    min_voltage=1.8,
)

#: Indicator LED held on for 250 ms (CSR task 3).
SENSOR_LED = SensorModel(
    name="led",
    active_power=6.0e-3,
    warmup_time=0.0,
    sample_time=250.0e-3,
    min_voltage=1.8,
)

#: CapySat inertial/magnetic sampling suite (magnetometer +
#: accelerometer + gyroscope read back-to-back).
SENSOR_CAPYSAT_IMU = SensorModel(
    name="capysat-imu",
    active_power=4.0e-3,
    warmup_time=20.0e-3,
    sample_time=15.0e-3,
    min_voltage=1.8,
)
