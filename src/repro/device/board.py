"""The Board: an MCU, peripherals, a radio, and a power system.

A :class:`Board` is the hardware half of a Capybara platform (Figure 1):
it validates that the output rail can serve every component's minimum
voltage, and converts logical operations ("sample the magnetometer",
"transmit 25 bytes") into *(duration, rail power)* load points the
intermittent executor drains from the reservoir.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError
from repro.core.powersystem import CapybaraPowerSystem
from repro.device.mcu import MCUModel
from repro.device.radio import RadioModel
from repro.device.sensors import SensorModel


@dataclass(frozen=True)
class LoadPoint:
    """A constant-power load segment: *duration* seconds at *power* watts."""

    duration: float
    power: float

    def energy(self) -> float:
        """Rail energy of the segment, joules."""
        return self.duration * self.power


class Board:
    """A complete platform: MCU + sensors + radio + power system.

    Args:
        mcu: the microcontroller model.
        power_system: the assembled power system.
        sensors: sensors and simple actuators by name.
        radio: the packet radio, if the board has one.

    Raises:
        ConfigurationError: if any component's minimum voltage exceeds
            the output booster's regulated rail (Section 5.1: output
            boosting exists exactly so 2.5 V sensors and 2.0 V radios
            can run from a drooping capacitor).
    """

    def __init__(
        self,
        mcu: MCUModel,
        power_system: CapybaraPowerSystem,
        sensors: Optional[Sequence[SensorModel]] = None,
        radio: Optional[RadioModel] = None,
    ) -> None:
        self.mcu = mcu
        self.power_system = power_system
        self.sensors: Dict[str, SensorModel] = {
            sensor.name: sensor for sensor in (sensors or [])
        }
        if sensors and len(self.sensors) != len(sensors):
            raise ConfigurationError("duplicate sensor names on board")
        self.radio = radio
        rail = power_system.output_booster.v_out
        for name, sensor in self.sensors.items():
            if sensor.min_voltage > rail:
                raise ConfigurationError(
                    f"sensor {name!r} needs {sensor.min_voltage} V but the "
                    f"rail is {rail} V"
                )
        if radio is not None and radio.min_voltage > rail:
            raise ConfigurationError(
                f"radio {radio.name!r} needs {radio.min_voltage} V but the "
                f"rail is {rail} V"
            )
        if mcu.min_voltage > rail:
            raise ConfigurationError(
                f"MCU {mcu.name!r} needs {mcu.min_voltage} V but the rail "
                f"is {rail} V"
            )

    # ------------------------------------------------------------------
    # Load-point calculators
    # ------------------------------------------------------------------

    def sensor(self, name: str) -> SensorModel:
        if name not in self.sensors:
            raise ConfigurationError(f"board has no sensor {name!r}")
        return self.sensors[name]

    def boot_load(self) -> LoadPoint:
        """Cold-boot cost (hardware init plus runtime state restore)."""
        return LoadPoint(self.mcu.boot_time, self.mcu.active_power)

    def compute_load(self, ops: float) -> LoadPoint:
        """ALU work of *ops* operations."""
        return LoadPoint(self.mcu.compute_time(ops), self.mcu.active_power)

    def sense_load(self, sensor_name: str, samples: int = 1) -> LoadPoint:
        """Acquire *samples* from a sensor (warm-up amortised per call).

        Power is the sensor draw plus the MCU's sense-mode draw — the
        MCU waits on the peripheral rather than computing.
        """
        sensor = self.sensor(sensor_name)
        duration = sensor.acquisition_time(samples)
        return LoadPoint(duration, sensor.active_power + self.mcu.sense_power)

    def transmit_load(self, size_bytes: int) -> LoadPoint:
        """Transmit a packet of *size_bytes* (startup + airtime).

        The two radio phases are folded into one constant-power segment
        with the same total energy, which is what brownout accounting
        cares about.
        """
        if self.radio is None:
            raise ConfigurationError("board has no radio")
        duration = self.radio.transmit_time(size_bytes)
        energy = self.radio.transmit_energy(size_bytes) + (
            self.mcu.sense_power * duration
        )
        return LoadPoint(duration, energy / duration)

    def sleep_load(self, duration: float) -> LoadPoint:
        """Memory-retaining sleep for *duration* seconds."""
        if duration < 0.0:
            raise ConfigurationError("duration must be non-negative")
        return LoadPoint(duration, self.mcu.sleep_power)

    # ------------------------------------------------------------------
    # Task energy accounting (provisioning input, Section 3)
    # ------------------------------------------------------------------

    def load_energy(self, loads: Sequence[LoadPoint]) -> float:
        """Total rail energy of a load sequence, joules."""
        return sum(load.energy() for load in loads)

    def storage_energy_estimate(self, loads: Sequence[LoadPoint]) -> float:
        """Approximate energy drawn *from storage* for a load sequence.

        Divides rail energy by the output booster efficiency and adds
        the quiescent overhead — the quantity provisioning compares
        against bank capacity.
        """
        booster = self.power_system.output_booster
        total = 0.0
        for load in loads:
            rail = load.energy()
            overhead = (
                self.power_system.quiescent_power + booster.quiescent_power
            ) * load.duration
            total += rail / booster.efficiency + overhead
        return total
