"""SI unit helpers.

All quantities inside :mod:`repro` are stored in base SI units: seconds,
volts, amperes, ohms, farads, joules, watts, and cubic metres.  Hardware
datasheets and the Capybara paper, however, quote values in engineering
units (uF, mF, mA, mm^3, ...).  This module provides small, explicit
conversion helpers so that configuration code reads like the datasheet it
came from::

    bank = BankSpec(capacitance=milli_farads(7.5), esr=ohms(4.5))

Each helper is a trivial multiplication; they exist to make unit intent
visible at the call site and to remove magic scale factors from the rest
of the codebase.
"""

from __future__ import annotations

import math
import re
from typing import Union

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

def seconds(value: float) -> float:
    """Return *value* seconds, in seconds (identity, for symmetry)."""
    return float(value)


def milliseconds(value: float) -> float:
    """Convert milliseconds to seconds."""
    return float(value) * 1e-3


def microseconds(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return float(value) * 60.0


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return float(value) * 3600.0


#: Duration suffixes accepted by :func:`parse_duration`, mapped to their
#: scale in seconds.  Longest-match wins ("ms" before "m"... there is no
#: bare "m": minutes are spelled "min" to avoid the metres ambiguity).
DURATION_SUFFIXES = {
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "min": 60.0,
    "h": 3600.0,
    "d": 86400.0,
}

#: Rate suffixes accepted by :func:`parse_rate`, mapped to hertz.
RATE_SUFFIXES = {
    "hz": 1.0,
    "khz": 1e3,
    "mhz": 1e6,
}

_DURATION_RE = re.compile(r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Z]+)\s*$")


def _parse_suffixed(value: Union[str, float, int], table: dict, what: str) -> float:
    if isinstance(value, bool):
        raise ValueError(f"{what} must be a number or suffixed string, got {value!r}")
    if isinstance(value, (int, float)):
        number = float(value)
        if not math.isfinite(number):
            raise ValueError(f"{what} must be finite, got {value!r}")
        return number
    if not isinstance(value, str):
        raise ValueError(f"{what} must be a number or suffixed string, got {value!r}")
    match = _DURATION_RE.match(value)
    if match is None:
        # A bare numeric string ("0", "2.5") means base units, exactly
        # like a bare number — "10x" or "" stays an error.
        try:
            number = float(value)
        except ValueError:
            number = None
        if number is not None and math.isfinite(number):
            return number
        raise ValueError(
            f"malformed {what} {value!r}: expected '<number><suffix>' with a "
            f"suffix in {sorted(table)}"
        )
    magnitude, suffix = match.groups()
    scale = table.get(suffix.lower())
    if scale is None:
        raise ValueError(
            f"unknown {what} suffix {suffix!r} in {value!r}: expected one of "
            f"{sorted(table)}"
        )
    number = float(magnitude) * scale
    if not math.isfinite(number):
        raise ValueError(f"{what} {value!r} is not finite")
    return number


def parse_duration(value: Union[str, float, int]) -> float:
    """Parse a duration into seconds.

    Accepts a bare number (already seconds) or a suffixed string such as
    ``"10ms"``, ``"0.5s"``, ``"15min"``, ``"1h"``, or ``"2d"``
    (:data:`DURATION_SUFFIXES`).  Raises :class:`ValueError` on malformed
    input — callers in the spec layer translate that into a
    :class:`~repro.errors.SpecError`.
    """
    return _parse_suffixed(value, DURATION_SUFFIXES, "duration")


def parse_rate(value: Union[str, float, int]) -> float:
    """Parse a sampling rate into hertz (``"20Hz"``, ``"1kHz"``, ...).

    Accepts a bare number (already Hz) or a suffixed string
    (:data:`RATE_SUFFIXES`).  Raises :class:`ValueError` on malformed
    input.
    """
    rate = _parse_suffixed(value, RATE_SUFFIXES, "rate")
    if rate <= 0.0:
        raise ValueError(f"rate must be positive, got {value!r}")
    return rate


# ---------------------------------------------------------------------------
# Capacitance
# ---------------------------------------------------------------------------

def farads(value: float) -> float:
    """Return *value* farads, in farads (identity, for symmetry)."""
    return float(value)


def milli_farads(value: float) -> float:
    """Convert millifarads to farads."""
    return float(value) * 1e-3


def micro_farads(value: float) -> float:
    """Convert microfarads to farads."""
    return float(value) * 1e-6


def as_micro_farads(capacitance_f: float) -> float:
    """Express a capacitance given in farads as microfarads."""
    return capacitance_f * 1e6


# ---------------------------------------------------------------------------
# Voltage / current / resistance
# ---------------------------------------------------------------------------

def volts(value: float) -> float:
    """Return *value* volts, in volts (identity, for symmetry)."""
    return float(value)


def milli_volts(value: float) -> float:
    """Convert millivolts to volts."""
    return float(value) * 1e-3


def amps(value: float) -> float:
    """Return *value* amperes, in amperes (identity, for symmetry)."""
    return float(value)


def milli_amps(value: float) -> float:
    """Convert milliamperes to amperes."""
    return float(value) * 1e-3


def micro_amps(value: float) -> float:
    """Convert microamperes to amperes."""
    return float(value) * 1e-6


def nano_amps(value: float) -> float:
    """Convert nanoamperes to amperes."""
    return float(value) * 1e-9


def ohms(value: float) -> float:
    """Return *value* ohms, in ohms (identity, for symmetry)."""
    return float(value)


def milli_ohms(value: float) -> float:
    """Convert milliohms to ohms."""
    return float(value) * 1e-3


# ---------------------------------------------------------------------------
# Energy / power
# ---------------------------------------------------------------------------

def joules(value: float) -> float:
    """Return *value* joules, in joules (identity, for symmetry)."""
    return float(value)


def milli_joules(value: float) -> float:
    """Convert millijoules to joules."""
    return float(value) * 1e-3


def micro_joules(value: float) -> float:
    """Convert microjoules to joules."""
    return float(value) * 1e-6


def nano_joules(value: float) -> float:
    """Convert nanojoules to joules."""
    return float(value) * 1e-9


def watts(value: float) -> float:
    """Return *value* watts, in watts (identity, for symmetry)."""
    return float(value)


def milli_watts(value: float) -> float:
    """Convert milliwatts to watts."""
    return float(value) * 1e-3


def micro_watts(value: float) -> float:
    """Convert microwatts to watts."""
    return float(value) * 1e-6


def as_milli_joules(energy_j: float) -> float:
    """Express an energy given in joules as millijoules."""
    return energy_j * 1e3


# ---------------------------------------------------------------------------
# Volume / area
# ---------------------------------------------------------------------------

def cubic_millimetres(value: float) -> float:
    """Convert mm^3 to m^3."""
    return float(value) * 1e-9


def as_cubic_millimetres(volume_m3: float) -> float:
    """Express a volume given in m^3 as mm^3."""
    return volume_m3 * 1e9


def square_millimetres(value: float) -> float:
    """Convert mm^2 to m^2."""
    return float(value) * 1e-6


def as_square_millimetres(area_m2: float) -> float:
    """Express an area given in m^2 as mm^2."""
    return area_m2 * 1e6


# ---------------------------------------------------------------------------
# Derived electrical relations
# ---------------------------------------------------------------------------

def capacitor_energy(capacitance: float, v_top: float, v_bottom: float = 0.0) -> float:
    """Energy stored in a capacitor between two voltage levels.

    Implements the paper's Section 5.2 relation
    ``E = 1/2 * C * (V_top^2 - V_bottom^2)``.

    Args:
        capacitance: capacitance in farads.
        v_top: upper voltage bound, volts.
        v_bottom: lower voltage bound, volts (defaults to fully drained).

    Returns:
        Stored energy in joules.  Negative if ``v_top < v_bottom``, which
        callers may use to express energy *removed* from the capacitor.
    """
    return 0.5 * capacitance * (v_top * v_top - v_bottom * v_bottom)


def voltage_for_energy(capacitance: float, energy: float) -> float:
    """Voltage at which a capacitor of *capacitance* stores *energy* joules.

    Inverse of :func:`capacitor_energy` with ``v_bottom = 0``.

    Raises:
        ValueError: if *energy* is negative or *capacitance* is not positive.
    """
    if capacitance <= 0.0:
        raise ValueError(f"capacitance must be positive, got {capacitance!r}")
    if energy < 0.0:
        raise ValueError(f"energy must be non-negative, got {energy!r}")
    return (2.0 * energy / capacitance) ** 0.5
