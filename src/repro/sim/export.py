"""Trace export for external plotting and analysis.

Experiments leave their evidence in :class:`~repro.sim.trace.Trace`
objects; this module serialises them to plain dictionaries, JSON files,
and CSV text so the figures can be plotted with any external tool
(the repository itself stays plotting-library-free).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.sim.trace import Trace


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """A plain-data rendering of every record in *trace*."""
    return {
        "voltages": [
            {"time": record.time, "voltage": record.voltage, "source": record.source}
            for record in trace.voltages
        ],
        "states": [
            {"time": record.time, "state": record.state, "detail": record.detail}
            for record in trace.states
        ],
        "packets": [
            {
                "time": record.time,
                "payload": record.payload,
                "size_bytes": record.size_bytes,
                "event_id": record.event_id,
            }
            for record in trace.packets
        ],
        "samples": [
            {
                "time": record.time,
                "sensor": record.sensor,
                "value": record.value,
                "event_id": record.event_id,
            }
            for record in trace.samples
        ],
        "events": [
            {"time": record.time, "kind": record.kind, "event_id": record.event_id}
            for record in trace.events
        ],
        "counters": dict(trace.counters),
        "durations": {name: list(series) for name, series in trace.durations.items()},
    }


def save_trace_json(trace: Trace, path: Union[str, Path]) -> Path:
    """Write *trace* to *path* as JSON; returns the path."""
    path = Path(path)
    with path.open("w") as handle:
        json.dump(trace_to_dict(trace), handle, indent=1)
    return path


def voltage_csv(trace: Trace) -> str:
    """The voltage record as CSV text (``time,voltage,source``).

    This is the raw material of the paper's Figure 2 sawtooth plot.
    """
    lines: List[str] = ["time,voltage,source"]
    for record in trace.voltages:
        lines.append(f"{record.time:.6f},{record.voltage:.6f},{record.source}")
    return "\n".join(lines) + "\n"


def samples_csv(trace: Trace, sensor: str = "") -> str:
    """Sample records as CSV text, optionally filtered by sensor."""
    lines: List[str] = ["time,sensor,value,event_id"]
    for record in trace.samples:
        if sensor and record.sensor != sensor:
            continue
        event = "" if record.event_id is None else str(record.event_id)
        lines.append(
            f"{record.time:.6f},{record.sensor},{record.value:.6f},{event}"
        )
    return "\n".join(lines) + "\n"
