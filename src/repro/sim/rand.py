"""Reproducible random streams for experiments.

Every experiment in the paper replays *the same* environmental event
sequence against four power-system variants (continuous, fixed,
Capy-R, Capy-P).  To make that comparison fair in simulation, each
source of randomness gets its own named, seeded stream: the event
schedule stream is shared across variants, while e.g. BLE packet-loss
draws are per-variant.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import ConfigurationError


class RandomStreams:
    """A registry of independent, named :class:`numpy.random.Generator` s.

    Streams are derived from a root seed and the stream name, so the same
    ``(seed, name)`` pair always yields the same sequence regardless of
    creation order::

        streams = RandomStreams(seed=42)
        events = streams.get("events")
        noise = streams.get("sensor-noise")
    """

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ConfigurationError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry derives all streams from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for *name*."""
        if name not in self._streams:
            # Derive a child seed from the root seed and the stream name so
            # stream identity does not depend on creation order.
            child = np.random.SeedSequence(
                [self._seed] + [ord(ch) for ch in name]
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fork(self, salt: int) -> "RandomStreams":
        """Return a new registry seeded from this one plus *salt*.

        Used to give each experiment repetition an independent but
        reproducible universe.
        """
        return RandomStreams(seed=self._seed * 1_000_003 + salt + 1)


def poisson_arrival_times(
    rng: np.random.Generator,
    mean_interarrival: float,
    count: int = 0,
    horizon: float = 0.0,
    start: float = 0.0,
) -> List[float]:
    """Draw event arrival times from a Poisson process.

    The paper's Section 6.2 accuracy experiments use "an event sequence
    drawn from a Poisson distribution" — e.g. 50 events over 120 minutes
    for TempAlarm.  Exactly one of *count* and *horizon* must be positive:

    * with *count*, return exactly that many arrivals;
    * with *horizon*, return every arrival before ``start + horizon``.

    Args:
        rng: source of randomness.
        mean_interarrival: mean gap between events, seconds.
        count: number of events to draw (exclusive with *horizon*).
        horizon: time window to fill with events (exclusive with *count*).
        start: time of the window start; first arrival is after it.

    Returns:
        Strictly increasing arrival times in seconds.
    """
    if mean_interarrival <= 0.0:
        raise ConfigurationError(
            f"mean_interarrival must be positive, got {mean_interarrival}"
        )
    if (count > 0) == (horizon > 0.0):
        raise ConfigurationError(
            "exactly one of count and horizon must be positive "
            f"(got count={count}, horizon={horizon})"
        )

    times: List[float] = []
    t = start
    if count > 0:
        for _ in range(count):
            t += rng.exponential(mean_interarrival)
            times.append(t)
    else:
        end = start + horizon
        while True:
            t += rng.exponential(mean_interarrival)
            if t >= end:
                break
            times.append(t)
    return times
