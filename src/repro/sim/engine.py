"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue: events are ``(time, priority,
sequence)`` ordered callbacks popped from a binary heap.  Determinism
matters because every experiment in the paper is re-run across four
power-system variants on *the same* event sequence; ties are broken by
priority, then by insertion order, never by hash order.

The engine knows nothing about energy or devices.  Components (the
intermittent executor, environment rigs, the thermal plant) schedule
callbacks on a shared :class:`Simulator` and re-schedule themselves as
their internal state machines advance.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time as _wall
from typing import Callable, List, Optional

from repro.errors import ScheduleError, SimulationError
from repro.observability.telemetry import Telemetry, resolve_telemetry

Callback = Callable[[], None]

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping events that must observe the state *after*
#: all normal events at the same timestamp (e.g. trace sampling).
PRIORITY_LATE = 10
#: Priority for events that must run before normal events at the same
#: timestamp (e.g. power arrival before a task tries to start).
PRIORITY_EARLY = -10

#: Lazily-cancelled events are compacted out of the heap once they
#: outnumber both this floor and the live events (see
#: :meth:`Simulator._compact`).
COMPACTION_MIN_CANCELLED = 64


class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so that the heap pops them
    in deterministic order.  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion), which keeps cancellation O(1);
    the owning :class:`Simulator` compacts them away once they dominate
    the heap.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callback,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim = sim

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (self.time, self.priority, self.seq) == (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, prio={self.priority}, seq={self.seq}{state})"

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled(self)


class Simulator:
    """A deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run_until(10.0)
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        # Cancelled events still sitting in the heap.  ``pending`` is
        # O(1) from this, and compaction triggers off it.
        self._cancelled_in_heap = 0
        # Resolved once here; the run loops only pay an aggregate
        # bookkeeping call after draining, never per event.
        self.telemetry = resolve_telemetry(telemetry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed since construction."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return len(self._heap) - self._cancelled_in_heap

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callback, priority: int = PRIORITY_NORMAL
    ) -> Event:
        """Schedule *callback* to run *delay* seconds from now.

        Returns the :class:`Event`, which the caller may later
        :meth:`Event.cancel`.

        Raises:
            ScheduleError: if *delay* is negative or not finite.
        """
        try:
            finite = math.isfinite(delay)
        except TypeError:
            finite = False
        if not finite:
            raise ScheduleError(f"delay must be finite, got {delay!r}")
        if delay < 0.0:
            raise ScheduleError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self, time: float, callback: Callback, priority: int = PRIORITY_NORMAL
    ) -> Event:
        """Schedule *callback* at absolute simulation *time*.

        Raises:
            ScheduleError: if *time* precedes the current time or is not
                finite.
        """
        try:
            finite = math.isfinite(time)
        except TypeError:
            finite = False
        if not finite:
            raise ScheduleError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise ScheduleError(
                f"cannot schedule at t={time!r} before current t={self._now!r}"
            )
        event = Event(
            time=time,
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            sim=self,
        )
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def install_fault_events(self, injector, telemetry: Optional[Telemetry] = None) -> int:
        """Schedule one trace event per simulation fault in *injector*.

        *injector* is duck-typed (``sim_event_records() -> [(time, name,
        fields)]``, see :class:`repro.faults.inject.FaultInjector`) so
        the engine stays free of fault-layer imports.  Each fault fires
        exactly one ``fault`` trace event at its window start, at
        :data:`PRIORITY_EARLY` so the record lands before any normal
        event observes the faulted state.  Fault events are pure
        bookkeeping: they never mutate component state (the injector's
        query methods are what change behaviour), so installing them
        cannot perturb determinism.

        Returns the number of events scheduled (faults whose start
        precedes the current time are skipped — scheduling into the past
        is an error, and a mid-run install only cares about the future).
        """
        telemetry = telemetry if telemetry is not None else self.telemetry

        def _emit(time: float, name: str, fields: dict) -> Callable[[], None]:
            def callback() -> None:
                if telemetry.enabled:
                    telemetry.event(time, "fault", name, **fields)
                    telemetry.inc("faults.injected")
                    telemetry.inc(f"faults.injected.{name}")

            return callback

        scheduled = 0
        for time, name, fields in injector.sim_event_records():
            if time < self._now:
                continue
            self.schedule_at(time, _emit(time, name, fields), PRIORITY_EARLY)
            scheduled += 1
        return scheduled

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next live event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        # Detach so a late ``cancel()`` on an already-executed event
        # cannot skew the live-event accounting.
        event._sim = None
        if event.time < self._now:
            raise SimulationError(
                f"event queue corrupted: popped t={event.time} < now={self._now}"
            )
        self._now = event.time
        self._processed += 1
        event.callback()
        return True

    def run_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= horizon`` and advance the clock to it.

        Args:
            horizon: absolute simulation time to run to (inclusive).
            max_events: optional safety valve; raise if more events than
                this would execute before the horizon is reached (guards
                against zero-delay self-rescheduling loops in component
                code).  The check fires *before* the offending event
                runs: at most ``max_events`` callbacks execute.

        Returns:
            The number of events executed by this call.

        Raises:
            ScheduleError: if *horizon* is before the current time.
            SimulationError: if *max_events* is exhausted.
        """
        if horizon < self._now:
            raise ScheduleError(
                f"horizon t={horizon!r} precedes current t={self._now!r}"
            )
        telemetry = self.telemetry
        started = _wall.perf_counter() if telemetry.enabled else 0.0
        executed = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap or self._heap[0].time > horizon:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before t={horizon}; "
                    "suspect a zero-delay event loop"
                )
            self.step()
            executed += 1
        self._now = horizon
        if telemetry.enabled:
            self._note_run(telemetry, executed, started)
        return executed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.

        Like :meth:`run_until`, raises *before* executing an event that
        would exceed *max_events*.

        Returns the number of events executed.
        """
        telemetry = self.telemetry
        started = _wall.perf_counter() if telemetry.enabled else 0.0
        executed = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap:
                if telemetry.enabled:
                    self._note_run(telemetry, executed, started)
                return executed
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; suspect an event loop"
                )
            self.step()
            executed += 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _note_run(
        self, telemetry: Telemetry, executed: int, started: float
    ) -> None:
        """Aggregate run bookkeeping (only reached when enabled)."""
        telemetry.inc("sim.events_dispatched", executed)
        telemetry.inc("sim.runs")
        telemetry.set_gauge("sim.queue_depth", self.pending)
        telemetry.observe(
            "sim.run_wall_seconds", _wall.perf_counter() - started
        )

    def _note_cancelled(self, event: Event) -> None:
        """Called by :meth:`Event.cancel`; keeps the live count O(1) and
        compacts the heap when cancelled entries dominate it."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= COMPACTION_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled events.

        Lazy deletion alone lets cancelled events accumulate unboundedly
        in long runs (every re-schedule of a watchdog leaves a corpse);
        an occasional O(n) rebuild keeps the heap proportional to the
        number of *live* events.
        """
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled_in_heap -= 1
