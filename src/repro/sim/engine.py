"""Deterministic discrete-event simulation engine.

The engine is a classic calendar queue: events are ``(time, priority,
sequence)`` ordered callbacks popped from a binary heap.  Determinism
matters because every experiment in the paper is re-run across four
power-system variants on *the same* event sequence; ties are broken by
priority, then by insertion order, never by hash order.

The engine knows nothing about energy or devices.  Components (the
intermittent executor, environment rigs, the thermal plant) schedule
callbacks on a shared :class:`Simulator` and re-schedule themselves as
their internal state machines advance.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ScheduleError, SimulationError

Callback = Callable[[], None]

#: Default priority for ordinary events.
PRIORITY_NORMAL = 0
#: Priority for bookkeeping events that must observe the state *after*
#: all normal events at the same timestamp (e.g. trace sampling).
PRIORITY_LATE = 10
#: Priority for events that must run before normal events at the same
#: timestamp (e.g. power arrival before a task tries to start).
PRIORITY_EARLY = -10


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so that the heap pops them
    in deterministic order.  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    priority: int
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Example::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second"))
        sim.run_until(10.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed since construction."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].time

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callback, priority: int = PRIORITY_NORMAL
    ) -> Event:
        """Schedule *callback* to run *delay* seconds from now.

        Returns the :class:`Event`, which the caller may later
        :meth:`Event.cancel`.

        Raises:
            ScheduleError: if *delay* is negative or not finite.
        """
        if not (delay == delay) or delay in (float("inf"), float("-inf")):
            raise ScheduleError(f"delay must be finite, got {delay!r}")
        if delay < 0.0:
            raise ScheduleError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self, time: float, callback: Callback, priority: int = PRIORITY_NORMAL
    ) -> Event:
        """Schedule *callback* at absolute simulation *time*.

        Raises:
            ScheduleError: if *time* precedes the current time or is not
                finite.
        """
        if not (time == time) or time in (float("inf"), float("-inf")):
            raise ScheduleError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise ScheduleError(
                f"cannot schedule at t={time!r} before current t={self._now!r}"
            )
        event = Event(time=time, priority=priority, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next live event.

        Returns:
            ``True`` if an event ran, ``False`` if the queue was empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        if event.time < self._now:
            raise SimulationError(
                f"event queue corrupted: popped t={event.time} < now={self._now}"
            )
        self._now = event.time
        self._processed += 1
        event.callback()
        return True

    def run_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= horizon`` and advance the clock to it.

        Args:
            horizon: absolute simulation time to run to (inclusive).
            max_events: optional safety valve; raise if more events than
                this execute before the horizon is reached (guards against
                zero-delay self-rescheduling loops in component code).

        Returns:
            The number of events executed by this call.

        Raises:
            ScheduleError: if *horizon* is before the current time.
            SimulationError: if *max_events* is exhausted.
        """
        if horizon < self._now:
            raise ScheduleError(
                f"horizon t={horizon!r} precedes current t={self._now!r}"
            )
        executed = 0
        while True:
            self._drop_cancelled_head()
            if not self._heap or self._heap[0].time > horizon:
                break
            self.step()
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before t={horizon}; "
                    "suspect a zero-delay event loop"
                )
        self._now = horizon
        return executed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains.

        Returns the number of events executed.
        """
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; suspect an event loop"
                )
        return executed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
