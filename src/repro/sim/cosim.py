"""Co-simulation of multiple devices on one timeline.

Several experiments involve more than one board sharing wall-clock
time: TempAlarm's continuously-powered reference board runs beside the
device under test, and CapySat flies two MCUs off one solar array.
Because rigs are pure functions of time, devices never interact through
the environment — but interleaving their execution on the
:class:`~repro.sim.engine.Simulator` keeps one authoritative clock,
yields a merged chronological event log, and gives experiments a place
to attach shared observers (e.g. a sniffer watching every radio at
once).

Any object with ``run(horizon) -> Trace`` and a ``now`` attribute can
participate (both executors and :class:`~repro.apps.base.AppInstance`
qualify).

A caveat worth choosing the quantum around: a slice boundary that lands
mid-task pauses the device with task-restart semantics (the in-flight
transaction aborts and the task re-executes next slice), so a quantum
much shorter than task durations inflates re-executed work.  Pick
quanta well above the longest atomic task when per-device numbers
matter, or run devices sequentially when they do not interact at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.trace import Trace


@dataclass
class CoSimResult:
    """Outcome of :func:`run_concurrently`.

    Attributes:
        traces: per-participant traces, keyed by the given names.
        merged_packets: every packet from every device, chronologically,
            as ``(device name, packet)`` pairs — the shared sniffer view.
        quanta: number of time slices executed.
    """

    traces: Dict[str, Trace]
    merged_packets: List[Tuple[str, object]]
    quanta: int


def run_concurrently(
    devices: Dict[str, object],
    horizon: float,
    quantum: float = 1.0,
) -> CoSimResult:
    """Advance every device through *horizon* seconds in lockstep.

    Each simulation quantum is an engine event that runs every device up
    to the slice boundary, so no device's clock ever leads another's by
    more than *quantum* — the fidelity/performance knob.

    Args:
        devices: name -> runnable (``run(t)``/``now``/``trace``).
        horizon: end of co-simulated time, seconds.
        quantum: slice length, seconds.

    Raises:
        ConfigurationError: on empty input, a non-positive quantum, or
            devices whose clocks are not aligned at the start.
    """
    if not devices:
        raise ConfigurationError("no devices to co-simulate")
    if quantum <= 0.0:
        raise ConfigurationError("quantum must be positive")

    def clock(device) -> float:
        if hasattr(device, "now"):
            return device.now
        if hasattr(device, "executor"):  # AppInstance
            return device.executor.now
        raise ConfigurationError(f"{device!r} exposes no clock")

    starts = {name: clock(device) for name, device in devices.items()}
    if len(set(starts.values())) != 1:
        raise ConfigurationError(
            f"device clocks must start aligned, got {starts}"
        )
    start = next(iter(starts.values()))
    if horizon < start:
        raise ConfigurationError(
            f"horizon {horizon} precedes the devices' time {start}"
        )

    simulator = Simulator()
    simulator.run_until(start)
    quanta = 0

    def make_slice(boundary: float):
        def advance() -> None:
            nonlocal quanta
            quanta += 1
            for device in devices.values():
                device.run(boundary)

        return advance

    boundary = start
    while boundary < horizon:
        boundary = min(boundary + quantum, horizon)
        simulator.schedule_at(boundary, make_slice(boundary))
    simulator.run()

    traces = {name: device.trace for name, device in devices.items()}
    merged: List[Tuple[str, object]] = []
    for name, trace in traces.items():
        for packet in trace.packets:
            merged.append((name, packet))
    merged.sort(key=lambda item: item[1].time)
    return CoSimResult(traces=traces, merged_packets=merged, quanta=quanta)
