"""Discrete-event simulation substrate.

The Capybara paper evaluates its power system on real hardware over wall
clock time.  This package provides the time base for the simulated
reproduction: a deterministic discrete-event engine
(:mod:`repro.sim.engine`), typed trace recording
(:mod:`repro.sim.trace`), and reproducible random streams
(:mod:`repro.sim.rand`).
"""

from repro.sim.cosim import CoSimResult, run_concurrently
from repro.sim.engine import Event, Simulator
from repro.sim.rand import RandomStreams, poisson_arrival_times
from repro.sim.trace import (
    PacketRecord,
    SampleRecord,
    StateRecord,
    Trace,
    VoltageRecord,
)

__all__ = [
    "Event",
    "Simulator",
    "run_concurrently",
    "CoSimResult",
    "RandomStreams",
    "poisson_arrival_times",
    "Trace",
    "VoltageRecord",
    "StateRecord",
    "PacketRecord",
    "SampleRecord",
]
