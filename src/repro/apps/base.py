"""Shared application harness.

:func:`assemble_app` wires a platform spec, a board recipe, a task
graph, and a sensor binding into the right executor for each of the
paper's four systems; :class:`AppInstance` is the runnable result that
experiments score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.core.builder import (
    PlatformSpec,
    SystemKind,
    build_capybara_system,
    build_fixed_system,
)
from repro.device.board import Board
from repro.device.mcu import MCUModel
from repro.device.radio import RadioModel
from repro.device.sensors import SensorModel
from repro.errors import ConfigurationError
from repro.kernel.baselines import ContinuousExecutor
from repro.kernel.executor import IntermittentExecutor, SensorBinding
from repro.kernel.tasks import TaskGraph
from repro.apps.rigs import EventSchedule
from repro.sim.trace import Trace


@dataclass
class AppInstance:
    """A runnable application on one power system.

    Attributes:
        name: application name ("TempAlarm", "GestureFast", ...).
        kind: which of the four systems this instance runs.
        executor: the driver (intermittent or continuous).
        schedule: ground-truth events, recorded into the trace at run.
        trace: the shared trace the executor writes into.
        extras: app-specific objects (rig, reference instance, ...).
    """

    name: str
    kind: SystemKind
    executor: Union[IntermittentExecutor, ContinuousExecutor]
    schedule: EventSchedule
    trace: Trace
    extras: Dict[str, object] = field(default_factory=dict)

    def run(self, horizon: float) -> Trace:
        """Run the device to *horizon*, pre-marking ground-truth events."""
        if not self.trace.events:
            for event in self.schedule.events:
                self.trace.record_event(event.start, event.kind, event.event_id)
        return self.executor.run(horizon)


def assemble_app(
    name: str,
    kind: SystemKind,
    spec: PlatformSpec,
    mcu: MCUModel,
    graph: TaskGraph,
    binding: SensorBinding,
    schedule: EventSchedule,
    sensors: Sequence[SensorModel],
    radio: Optional[RadioModel],
    rng: Optional[np.random.Generator] = None,
    extras: Optional[Dict[str, object]] = None,
) -> AppInstance:
    """Build the board + executor stack for one system variant."""
    if kind is SystemKind.FIXED:
        assembly = build_fixed_system(spec)
    elif kind in (SystemKind.CAPY_P, SystemKind.CAPY_R):
        assembly = build_capybara_system(spec, kind)
    elif kind is SystemKind.CONTINUOUS:
        # The continuous baseline still needs a board for op timings; a
        # Capy-P assembly provides the (unused) power system.
        assembly = build_capybara_system(spec, SystemKind.CAPY_P)
    else:  # pragma: no cover - enum is closed
        raise ConfigurationError(f"unknown system kind {kind!r}")

    board = Board(
        mcu=mcu,
        power_system=assembly.power_system,
        sensors=sensors,
        radio=radio,
    )
    trace = Trace()
    executor: Union[IntermittentExecutor, ContinuousExecutor]
    if kind is SystemKind.CONTINUOUS:
        executor = ContinuousExecutor(
            board, graph, trace=trace, sensor_binding=binding, rng=rng
        )
    else:
        executor = IntermittentExecutor(
            board,
            graph,
            assembly.runtime,
            trace=trace,
            sensor_binding=binding,
            rng=rng,
        )
    return AppInstance(
        name=name,
        kind=kind,
        executor=executor,
        schedule=schedule,
        trace=trace,
        extras=extras or {},
    )


def make_binding(table: Dict[str, Callable[[float], object]]) -> SensorBinding:
    """Build a sensor binding from a {sensor name: time -> reading} map."""

    def binding(sensor: str, time: float):
        if sensor not in table:
            raise ConfigurationError(f"no rig binding for sensor {sensor!r}")
        return table[sensor](time)

    return binding
