"""The paper's evaluation applications (Section 6.1) and their rigs.

Each application module exposes a ``build_*`` function that assembles
the full stack — banks, modes, harvester, board, task graph, rig — for
any of the four evaluated systems (Pwr / Fixed / Capy-R / Capy-P), and
returns an :class:`~repro.apps.base.AppInstance` ready to ``run``.
"""

from repro.apps.base import AppInstance, assemble_app
from repro.apps.csr import build_csr
from repro.apps.grc import GRCVariant, build_grc
from repro.apps.rigs import (
    EventSchedule,
    PendulumRig,
    ScheduledEvent,
    ThermalRig,
)
from repro.apps.temp_alarm import build_temp_alarm
from repro.apps.capysat import build_capysat

__all__ = [
    "AppInstance",
    "assemble_app",
    "EventSchedule",
    "ScheduledEvent",
    "PendulumRig",
    "ThermalRig",
    "build_grc",
    "GRCVariant",
    "build_temp_alarm",
    "build_csr",
    "build_capysat",
]
