"""Temperature Monitor with Alarm (TA, Section 6.1.2).

Senses an external analog temperature sensor, keeps a short time
series, and — when the temperature leaves the alarm range — transmits a
25-byte BLE packet carrying the alarm and the recent series.

Atomicity requirements: (1) acquire one temperature sample, (2)
transmit a 25-byte BLE packet.  Temporal requirements: sample with
minimal charging gaps (don't miss excursions), and send the alarm
immediately upon detection.

Bank recipes follow the paper: the Capybara small mode uses a few
hundred uF of ceramic, the radio mode adds ~1 mF tantalum + an EDLC
part; the Fixed baseline solders the union down as one bank.  The board
harvests from two series solar panels under a 20 W halogen lamp dimmed
to 42% (Section 6.1.2).
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import AppInstance, assemble_app, make_binding
from repro.apps.rigs import EventSchedule, ThermalRig
from repro.core.builder import PlatformSpec, SystemKind
from repro.device.mcu import MCU_MSP430FR5969
from repro.device.radio import BLE_CC2650
from repro.device.sensors import SENSOR_TMP36
from repro.energy.bank import BankSpec
from repro.energy.capacitor import CERAMIC_X5R, EDLC_CPH3225A, TANTALUM_POLYMER
from repro.energy.environment import DimmedLampTrace
from repro.energy.harvester import SolarPanel
from repro.kernel.annotations import (
    BurstAnnotation,
    ConfigAnnotation,
    PreburstAnnotation,
)
from repro.kernel.tasks import Compute, Sample, Task, TaskGraph, Transmit
from repro.sim.rand import RandomStreams

APP_NAME = "TempAlarm"

#: Energy mode names (Figure 5 style).
MODE_SENSE = "ta-sense"
MODE_RADIO = "ta-radio"

#: Default experiment shape: 50 events over 120 minutes (Section 6.2).
DEFAULT_EVENT_COUNT = 50
DEFAULT_MEAN_INTERARRIVAL = 144.0
DEFAULT_HORIZON = 7500.0
#: Quiet warm-up before the first event.
WARMUP = 300.0
#: How long the controller holds the out-of-range setpoint.
EVENT_DURATION = 20.0

#: ALU work per processing pass (threshold check + series bookkeeping).
PROC_OPS = 50_000
#: Oversampling per acquisition (ADC averaging).
OVERSAMPLE = 4


def make_banks() -> PlatformSpec:
    """Bank recipes and modes for the TA platform (paper Section 6.1.2)."""
    small = BankSpec.of_parts("small", [(CERAMIC_X5R, 5)])
    radio = BankSpec.of_parts(
        "radio", [(TANTALUM_POLYMER, 3), (EDLC_CPH3225A, 1)]
    )
    fixed = BankSpec.of_parts(
        "fixed",
        [(CERAMIC_X5R, 4), (TANTALUM_POLYMER, 3), (EDLC_CPH3225A, 1)],
    )
    harvester = SolarPanel(
        cells_in_series=2,
        irradiance=DimmedLampTrace(full_irradiance=30.0, duty=0.42),
    )
    return PlatformSpec(
        banks=[small, radio],
        modes={MODE_SENSE: ["small"], MODE_RADIO: ["small", "radio"]},
        fixed_bank=fixed,
        harvester=harvester,
    )


def make_graph() -> TaskGraph:
    """The TA task graph: sense -> proc -> (alarm) -> sense."""

    def sense(ctx):
        reading = yield Sample("tmp36", samples=OVERSAMPLE)
        ctx.write("latest_value", reading.value)
        ctx.write("latest_event", reading.event_id)
        history = list(ctx.read("history", []))
        history.append(reading.value)
        ctx.write("history", history[-8:])
        return "proc"

    def proc(ctx):
        yield Compute(PROC_OPS)
        value = ctx.read("latest_value", 0.0)
        event_id = ctx.read("latest_event")
        out_of_range = value > ALARM_HIGH or value < ALARM_LOW
        already_reported = (
            event_id is not None and event_id == ctx.read("last_reported")
        )
        if out_of_range and event_id is not None and not already_reported:
            return "alarm"
        return "sense"

    def alarm(ctx):
        event_id = ctx.read("latest_event")
        delivered = yield Transmit("alarm", 25, event_id=event_id)
        if delivered:
            ctx.write("last_reported", event_id)
        return "sense"

    return TaskGraph(
        [
            Task("sense", sense, ConfigAnnotation(MODE_SENSE)),
            Task("proc", proc, PreburstAnnotation(MODE_RADIO, MODE_SENSE)),
            Task("alarm", alarm, BurstAnnotation(MODE_RADIO)),
        ],
        entry="sense",
    )


#: Alarm thresholds shared between the app logic and the rig.
ALARM_LOW = 30.0
ALARM_HIGH = 45.0


def build_temp_alarm(
    kind: SystemKind,
    seed: int = 0,
    event_count: int = DEFAULT_EVENT_COUNT,
    mean_interarrival: float = DEFAULT_MEAN_INTERARRIVAL,
    horizon: float = DEFAULT_HORIZON,
    schedule: Optional[EventSchedule] = None,
    platform: Optional[PlatformSpec] = None,
) -> AppInstance:
    """Assemble TA on one of the four systems.

    The event schedule derives from ``(seed, "events")`` so all variants
    replay identical ground truth; sensor/radio noise streams are
    per-variant.  *platform* overrides the stock :func:`make_banks`
    recipe (used by the declarative spec path).
    """
    streams = RandomStreams(seed)
    if schedule is None:
        schedule = EventSchedule.poisson(
            streams.get("events"),
            mean_interarrival=mean_interarrival,
            count=event_count,
            duration=EVENT_DURATION,
            kind="temperature",
            start_offset=WARMUP,
        )
    rig = ThermalRig(
        schedule,
        horizon=max(horizon, schedule.horizon + 120.0),
        alarm_low=ALARM_LOW,
        alarm_high=ALARM_HIGH,
    )
    binding = make_binding({"tmp36": rig.temp_reading})
    instance = assemble_app(
        name=APP_NAME,
        kind=kind,
        spec=platform if platform is not None else make_banks(),
        mcu=MCU_MSP430FR5969,
        graph=make_graph(),
        binding=binding,
        schedule=schedule,
        sensors=[SENSOR_TMP36],
        radio=BLE_CC2650,
        rng=streams.get(f"radio-{kind.value}"),
        extras={"rig": rig},
    )
    return instance


def scenario(
    seed: int = 0,
    event_count: int = DEFAULT_EVENT_COUNT,
    mean_interarrival: float = DEFAULT_MEAN_INTERARRIVAL,
    horizon: float = DEFAULT_HORIZON,
    system: str = "CB-P",
):
    """Declarative :class:`~repro.spec.ScenarioSpec` for this experiment
    shape — the spec-layer twin of :func:`build_temp_alarm`."""
    from repro.spec import PlatformSpecV1, ScenarioSpec

    return ScenarioSpec(
        name=f"temp-alarm-seed{seed}",
        system=system,
        platform=PlatformSpecV1.from_dict(make_banks().spec_dict()),
        workload={
            "app": "temp-alarm",
            "seed": seed,
            "event_count": event_count,
            "mean_interarrival": mean_interarrival,
            "horizon": horizon,
        },
    )
