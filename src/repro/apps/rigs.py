"""Experimental rigs: the simulated environment drivers.

The paper drives its applications with physical rigs: a servo-actuated
pendulum swinging over the gesture sensor (Figure 7, reused with a
magnet for CSR), and a heatsink with a 60 W heater and a Peltier cooler
cycled by a control board (TempAlarm).  Events are "drawn from a
Poisson distribution" (Section 6.2).

The rigs here expose the same observables to the device under test:
sensor readings as functions of time, plus the ground-truth event
schedule the experiment scores against.  Crucially, rig behaviour does
not depend on the device — the environment is precomputed, so the same
schedule can be replayed against all four power systems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.kernel.executor import SensorReading
from repro.sim.rand import poisson_arrival_times


# ---------------------------------------------------------------------------
# Event schedules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduledEvent:
    """One ground-truth environmental event.

    Attributes:
        event_id: unique index.
        start: event onset, seconds.
        duration: how long the stimulus lasts, seconds.
        kind: "gesture", "magnet", "temperature", ...
        direction: stimulus polarity (gesture swipe direction, or
            over/under temperature), +1 or -1.
    """

    event_id: int
    start: float
    duration: float
    kind: str
    direction: int = 1

    @property
    def end(self) -> float:
        return self.start + self.duration


class EventSchedule:
    """An ordered, non-overlapping sequence of scheduled events."""

    def __init__(self, events: Sequence[ScheduledEvent]) -> None:
        ordered = sorted(events, key=lambda event: event.start)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end:
                raise ConfigurationError(
                    f"events {earlier.event_id} and {later.event_id} overlap"
                )
        self.events: List[ScheduledEvent] = list(ordered)

    @staticmethod
    def poisson(
        rng: np.random.Generator,
        mean_interarrival: float,
        count: int,
        duration: float,
        kind: str,
        start_offset: float = 0.0,
        alternate_direction: bool = True,
    ) -> "EventSchedule":
        """Draw *count* events with exponential gaps (Section 6.2).

        Gaps shorter than *duration* are stretched so stimuli never
        overlap (the physical pendulum cannot swing twice at once).
        """
        arrivals = poisson_arrival_times(
            rng, mean_interarrival, count=count, start=start_offset
        )
        events: List[ScheduledEvent] = []
        last_end = start_offset
        for index, arrival in enumerate(arrivals):
            start = max(arrival, last_end + 0.1)
            direction = 1 if (index % 2 == 0 or not alternate_direction) else -1
            events.append(
                ScheduledEvent(
                    event_id=index,
                    start=start,
                    duration=duration,
                    kind=kind,
                    direction=direction,
                )
            )
            last_end = start + duration
        return EventSchedule(events)

    def __len__(self) -> int:
        return len(self.events)

    def event_at(self, time: float) -> Optional[ScheduledEvent]:
        """The event whose stimulus window contains *time*, if any."""
        for event in self.events:
            if event.start <= time < event.end:
                return event
            if event.start > time:
                break
        return None

    def event_covering(self, begin: float, end: float) -> Optional[ScheduledEvent]:
        """The first event overlapping the interval [begin, end)."""
        for event in self.events:
            if event.start < end and begin < event.end:
                return event
            if event.start >= end:
                break
        return None

    @property
    def horizon(self) -> float:
        """Time by which all events have finished, seconds."""
        return self.events[-1].end if self.events else 0.0

    def next_event_start(self, time: float) -> Optional[float]:
        """Start of the first event at or after *time*, or ``None``.

        Event starts are the *edges* an interrupt comparator fires on;
        callers that need latched-edge semantics (wake even when armed
        after the edge) track consumption themselves — see
        :meth:`repro.kernel.executor.IntermittentExecutor._perform_wait`.
        """
        for event in self.events:
            if event.start >= time:
                return event.start
        return None


# ---------------------------------------------------------------------------
# Pendulum rig (GRC and CSR)
# ---------------------------------------------------------------------------

class PendulumRig:
    """Servo-swung pendulum over the gesture sensor (Figure 7).

    A tap-and-swipe motion holds the object over the sensor for the
    event's duration.  Classification physics (Section 6.2):

    * the gesture engine decodes the swipe **direction** only if its
      250 ms window *starts* early enough in the swing
      (``correct_phase``);
    * a later start sees enough motion to report *a* gesture but not
      its direction (misclassified, up to ``wrong_phase``);
    * later still, the motion is over: the sensor reports nothing
      (proximity-only failure).

    Intrinsic sensor error (present even on continuous power — the
    paper's imperfect "Pwr" accuracy) corrupts a small fraction of
    would-be-correct decodes.
    """

    #: Reading codes returned in :class:`SensorReading.value` by the
    #: gesture sensor.
    GESTURE_NONE = 0.0
    GESTURE_WRONG = 1.0
    GESTURE_CORRECT = 2.0

    def __init__(
        self,
        schedule: EventSchedule,
        noise_rng: np.random.Generator,
        gesture_window: float = 0.25,
        correct_phase: float = 0.48,
        wrong_phase: float = 0.72,
        sensor_error_rate: float = 0.10,
        sensor_dropout_rate: float = 0.04,
    ) -> None:
        if not 0.0 < correct_phase < wrong_phase <= 1.0:
            raise ConfigurationError("phases must satisfy 0 < correct < wrong <= 1")
        self.schedule = schedule
        self.rng = noise_rng
        self.gesture_window = gesture_window
        self.correct_phase = correct_phase
        self.wrong_phase = wrong_phase
        self.sensor_error_rate = sensor_error_rate
        self.sensor_dropout_rate = sensor_dropout_rate

    # -- GRC sensors ---------------------------------------------------

    def photo_reading(self, time: float) -> SensorReading:
        """Phototransistor: object present above the board?"""
        event = self.schedule.event_at(time)
        if event is None:
            return SensorReading(value=0.0, event_id=None)
        return SensorReading(value=1.0, event_id=event.event_id)

    def gesture_reading(self, time_done: float) -> SensorReading:
        """APDS gesture engine result; *time_done* is when the 250 ms
        engine window ended (the binding is called at op completion)."""
        started = time_done - self.gesture_window
        event = self.schedule.event_covering(started, time_done)
        if event is None:
            return SensorReading(value=self.GESTURE_NONE, event_id=None)
        phase = (started - event.start) / event.duration
        if phase < 0.0:
            # Engine started before the swing; it still captures the
            # motion onset — treat as an early (correct-capable) start.
            phase = 0.0
        if phase <= self.correct_phase:
            roll = self.rng.random()
            if roll < self.sensor_dropout_rate:
                return SensorReading(self.GESTURE_NONE, event.event_id)
            if roll < self.sensor_dropout_rate + self.sensor_error_rate:
                return SensorReading(self.GESTURE_WRONG, event.event_id)
            return SensorReading(self.GESTURE_CORRECT, event.event_id)
        if phase <= self.wrong_phase:
            return SensorReading(self.GESTURE_WRONG, event.event_id)
        return SensorReading(self.GESTURE_NONE, event.event_id)

    # -- CSR sensors ----------------------------------------------------

    def magnetometer_reading(self, time: float) -> SensorReading:
        """Magnetic flux magnitude; high while the magnet swings by."""
        event = self.schedule.event_at(time)
        if event is None:
            noise = 2.0 + self.rng.random()
            return SensorReading(value=noise, event_id=None)
        phase = (time - event.start) / event.duration
        field = 20.0 + 40.0 * math.sin(math.pi * min(1.0, max(0.0, phase)))
        return SensorReading(value=field, event_id=event.event_id)

    def interrupt_source(self, line: str, time: float) -> Optional[float]:
        """Wake-up comparator wiring: any armed line asserts at the next
        pendulum pass (proximity and magnetic-threshold interrupts alike)."""
        return self.schedule.next_event_start(time)

    def distance_reading(self, time: float) -> SensorReading:
        """Proximity distance to the magnet, mm-order units."""
        event = self.schedule.event_at(time)
        if event is None:
            return SensorReading(value=100.0, event_id=None)
        phase = (time - event.start) / event.duration
        distance = 10.0 + 40.0 * abs(phase - 0.5)
        return SensorReading(value=distance, event_id=event.event_id)


# ---------------------------------------------------------------------------
# Thermal rig (TempAlarm)
# ---------------------------------------------------------------------------

class ThermalRig:
    """Heatsink + heater + Peltier cooler under bang-bang control.

    A first-order thermal plant is driven by a hysteresis controller
    whose setpoint normally keeps the heatsink inside the alarm range;
    at each scheduled event the controller pushes the temperature out of
    range (alternating over- and under-temperature), then recovers —
    exactly the paper's Section 6.1.2 apparatus.

    The trajectory is precomputed over a horizon, so readings are pure
    functions of time and identical across power-system variants.
    """

    def __init__(
        self,
        schedule: EventSchedule,
        horizon: float,
        alarm_low: float = 30.0,
        alarm_high: float = 45.0,
        setpoint_normal: float = 37.0,
        setpoint_over: float = 54.0,
        setpoint_under: float = 21.0,
        ambient: float = 25.0,
        thermal_capacity: float = 12.0,
        loss_coefficient: float = 0.8,
        heater_power: float = 25.0,
        cooler_power: float = 25.0,
        time_step: float = 0.25,
    ) -> None:
        if alarm_low >= alarm_high:
            raise ConfigurationError("alarm_low must be below alarm_high")
        if horizon <= 0.0:
            raise ConfigurationError("horizon must be positive")
        self.schedule = schedule
        self.alarm_low = alarm_low
        self.alarm_high = alarm_high
        self._dt = time_step
        self._times, self._temps = self._integrate(
            schedule,
            horizon,
            setpoint_normal,
            setpoint_over,
            setpoint_under,
            ambient,
            thermal_capacity,
            loss_coefficient,
            heater_power,
            cooler_power,
            time_step,
        )
        self._excursions = self._find_excursions()

    # -- plant integration ----------------------------------------------

    @staticmethod
    def _integrate(
        schedule: EventSchedule,
        horizon: float,
        sp_normal: float,
        sp_over: float,
        sp_under: float,
        ambient: float,
        c_th: float,
        k_loss: float,
        p_heat: float,
        p_cool: float,
        dt: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        steps = int(math.ceil(horizon / dt)) + 1
        times = np.arange(steps) * dt
        temps = np.empty(steps)
        temperature = sp_normal
        heater_on = False
        cooler_on = False
        event_index = 0
        events = schedule.events
        for i in range(steps):
            t = times[i]
            temps[i] = temperature
            # Controller: pick the setpoint for this instant.
            while event_index < len(events) and t >= events[event_index].end:
                event_index += 1
            active = (
                events[event_index]
                if event_index < len(events)
                and events[event_index].start <= t < events[event_index].end
                else None
            )
            if active is None:
                setpoint = sp_normal
            else:
                setpoint = sp_over if active.direction > 0 else sp_under
            # Hysteresis of +/- 0.5 C.
            if temperature < setpoint - 0.5:
                heater_on, cooler_on = True, False
            elif temperature > setpoint + 0.5:
                heater_on, cooler_on = False, True
            else:
                heater_on = heater_on and temperature < setpoint
                cooler_on = cooler_on and temperature > setpoint
            power = (p_heat if heater_on else 0.0) - (p_cool if cooler_on else 0.0)
            d_temp = (power - k_loss * (temperature - ambient)) / c_th
            temperature += d_temp * dt
        return times, temps

    def _find_excursions(self) -> List[Tuple[int, float, float]]:
        """Per event: (event_id, begin, end) of the out-of-range span."""
        out = (self._temps > self.alarm_high) | (self._temps < self.alarm_low)
        excursions: List[Tuple[int, float, float]] = []
        for event in self.schedule.events:
            # Search from event onset until the plant recovers.
            start_index = int(event.start / self._dt)
            begin: Optional[float] = None
            end: Optional[float] = None
            for i in range(start_index, len(self._times)):
                if out[i] and begin is None:
                    begin = self._times[i]
                elif begin is not None and not out[i]:
                    end = self._times[i]
                    break
                # Give up if the next event starts before an excursion.
                if begin is None and self._times[i] > event.end + 30.0:
                    break
            if begin is not None:
                excursions.append(
                    (event.event_id, begin, end if end is not None else begin)
                )
        return excursions

    # -- observables ------------------------------------------------------

    def temperature(self, time: float) -> float:
        """Heatsink temperature at *time*, Celsius."""
        return float(np.interp(time, self._times, self._temps))

    def excursion_for(self, event_id: int) -> Optional[Tuple[float, float]]:
        """Out-of-range interval caused by *event_id*, if the plant
        actually left the alarm range."""
        for eid, begin, end in self._excursions:
            if eid == event_id:
                return begin, end
        return None

    def temp_reading(self, time: float) -> SensorReading:
        """TMP36 reading with ground-truth event attribution."""
        value = self.temperature(time)
        event_id = None
        if value > self.alarm_high or value < self.alarm_low:
            for eid, begin, end in self._excursions:
                if begin <= time <= end:
                    event_id = eid
                    break
        return SensorReading(value=value, event_id=event_id)

    def out_of_range(self, value: float) -> bool:
        """Whether a temperature violates the alarm range."""
        return value > self.alarm_high or value < self.alarm_low

    def interrupt_source(self, line: str, time: float) -> Optional[float]:
        """Threshold-interrupt wiring: the line's edges are the starts
        of out-of-range excursions."""
        candidates = [
            begin for _eid, begin, _end in self._excursions if begin >= time
        ]
        return min(candidates) if candidates else None
