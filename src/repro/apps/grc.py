"""Wireless Gesture-activated Remote Control (GRC, Section 6.1.1).

Every wake-up the application samples a phototransistor; if an object
is above the board it activates the APDS-9960 gesture engine (which
must stay on for the 250 ms minimum gesture duration), and on a
successful decode broadcasts the direction over BLE.

Two variants:

* **GRC-Fast** — gesture recognition and transmission are *joined*
  into one task with a higher atomicity requirement, eliminating the
  recharge window between them;
* **GRC-Compact** — gesture and transmission are separate tasks so the
  peak requirement (and bank size) is smaller, at the cost of a
  possible recharge between decode and transmit (the paper measured
  the extra-latency fraction at 54% of reported events vs 7% for Fast).

The temporal requirements: gesture recognition must start immediately
after proximity is detected (before the motion finishes), and the
proximity poll must minimise inter-sample gaps.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.apps.base import AppInstance, assemble_app, make_binding
from repro.apps.rigs import EventSchedule, PendulumRig
from repro.core.builder import PlatformSpec, SystemKind
from repro.device.mcu import MCU_CC2650
from repro.device.radio import BLE_CC2650
from repro.device.sensors import (
    SENSOR_APDS9960_GESTURE,
    SENSOR_PHOTOTRANSISTOR,
)
from repro.energy.bank import BankSpec
from repro.energy.capacitor import CERAMIC_X5R, EDLC_CPH3225A, TANTALUM_POLYMER
from repro.energy.harvester import RegulatedSupply
from repro.kernel.annotations import BurstAnnotation, PreburstAnnotation
from repro.kernel.tasks import Compute, Sample, Task, TaskGraph, Transmit
from repro.sim.rand import RandomStreams


class GRCVariant(enum.Enum):
    """The two provisioning variants of Section 6.1.1."""

    FAST = "GestureFast"
    COMPACT = "GestureCompact"


MODE_SMALL = "grc-small"
MODE_BURST = "grc-burst"

#: Default experiment shape: 80 events over 42 minutes (Section 6.2).
DEFAULT_EVENT_COUNT = 80
DEFAULT_MEAN_INTERARRIVAL = 31.5
DEFAULT_HORIZON = 2820.0
#: Quiet warm-up before the first event (lets every system finish its
#: initial charge/pre-charge so scoring starts from steady state).
WARMUP = 300.0
#: Duration of one tap-and-swipe pendulum pass over the sensor.
EVENT_DURATION = 2.5

#: Poll-loop processing (BLE-stack-resident CC2650 busywork per poll).
POLL_OPS = 4_000
#: Decode/encode work after the gesture engine reports.
DECODE_OPS = 10_000


def make_banks(variant: GRCVariant) -> PlatformSpec:
    """Bank recipes per variant (paper: 45 mF for Fast's joined task,
    67.5 mF for Compact's task pair; Fixed gets the union)."""
    small = BankSpec.of_parts(
        "small", [(CERAMIC_X5R, 5), (TANTALUM_POLYMER, 1)]
    )
    edlc_count = 4 if variant is GRCVariant.FAST else 6
    burst = BankSpec.of_parts("burst", [(EDLC_CPH3225A, edlc_count)])
    # The Fixed baseline must provision its EDLC count for the radio
    # burst *through the supercap ESR alone* (the designer cannot count
    # on the ceramics being charged at burst time): the droop floor
    # 2*sqrt(ESR/N * P_in) <= rail minimum needs N >= ~6, padded by the
    # standard derating margin — the paper's 67.5 mF for the same reason.
    fixed = BankSpec.of_parts(
        "fixed",
        [(CERAMIC_X5R, 5), (TANTALUM_POLYMER, 1), (EDLC_CPH3225A, 9)],
    )
    harvester = RegulatedSupply(voltage=3.0, max_power=2.5e-3)
    return PlatformSpec(
        banks=[small, burst],
        modes={MODE_SMALL: ["small"], MODE_BURST: ["small", "burst"]},
        fixed_bank=fixed,
        harvester=harvester,
    )


def _payload_for(code: float, rig: PendulumRig) -> Optional[str]:
    """Map a gesture-engine reading code to a packet payload label."""
    if code == rig.GESTURE_CORRECT:
        return "gesture:ok"
    if code == rig.GESTURE_WRONG:
        return "gesture:bad"
    return None


def make_graph(variant: GRCVariant, rig: PendulumRig) -> TaskGraph:
    """GRC task graph; the photo poll doubles as the pre-charge task."""

    def photo(ctx):
        yield Compute(POLL_OPS)
        reading = yield Sample("phototransistor")
        if reading.value > 0.5:
            return "gesture"
        return "photo"

    def gesture_fast(ctx):
        # Joined gesture + transmit (GRC-Fast).
        reading = yield Sample("apds9960-gesture")
        payload = _payload_for(reading.value, rig)
        if payload is None:
            ctx.write("proximity_only", ctx.read("proximity_only", 0) + 1)
            return "photo"
        yield Compute(DECODE_OPS)
        yield Transmit(payload, 8, event_id=reading.event_id)
        return "photo"

    def gesture_compact(ctx):
        reading = yield Sample("apds9960-gesture")
        payload = _payload_for(reading.value, rig)
        if payload is None:
            ctx.write("proximity_only", ctx.read("proximity_only", 0) + 1)
            return "photo"
        yield Compute(DECODE_OPS)
        ctx.write("pending_payload", payload)
        ctx.write("pending_event", reading.event_id)
        return "radio_tx"

    def radio_tx(ctx):
        payload = ctx.read("pending_payload")
        event_id = ctx.read("pending_event")
        if payload is None:
            return "photo"
        yield Transmit(payload, 8, event_id=event_id)
        ctx.write("pending_payload", None)
        return "photo"

    photo_task = Task("photo", photo, PreburstAnnotation(MODE_BURST, MODE_SMALL))
    if variant is GRCVariant.FAST:
        return TaskGraph(
            [
                photo_task,
                Task("gesture", gesture_fast, BurstAnnotation(MODE_BURST)),
            ],
            entry="photo",
        )
    return TaskGraph(
        [
            photo_task,
            Task("gesture", gesture_compact, BurstAnnotation(MODE_BURST)),
            Task("radio_tx", radio_tx, BurstAnnotation(MODE_BURST)),
        ],
        entry="photo",
    )


def build_grc(
    kind: SystemKind,
    variant: GRCVariant = GRCVariant.FAST,
    seed: int = 0,
    event_count: int = DEFAULT_EVENT_COUNT,
    mean_interarrival: float = DEFAULT_MEAN_INTERARRIVAL,
    schedule: Optional[EventSchedule] = None,
    platform: Optional[PlatformSpec] = None,
) -> AppInstance:
    """Assemble a GRC variant on one of the four systems.

    *platform* overrides the stock :func:`make_banks` recipe (used by
    the declarative spec path).
    """
    streams = RandomStreams(seed)
    if schedule is None:
        schedule = EventSchedule.poisson(
            streams.get("events"),
            mean_interarrival=mean_interarrival,
            count=event_count,
            duration=EVENT_DURATION,
            kind="gesture",
            start_offset=WARMUP,
        )
    rig = PendulumRig(
        schedule, noise_rng=streams.get(f"sensor-{kind.value}-{variant.value}")
    )
    binding = make_binding(
        {
            "phototransistor": rig.photo_reading,
            "apds9960-gesture": rig.gesture_reading,
        }
    )
    return assemble_app(
        name=variant.value,
        kind=kind,
        spec=platform if platform is not None else make_banks(variant),
        mcu=MCU_CC2650,
        graph=make_graph(variant, rig),
        binding=binding,
        schedule=schedule,
        sensors=[SENSOR_PHOTOTRANSISTOR, SENSOR_APDS9960_GESTURE],
        radio=BLE_CC2650,
        rng=streams.get(f"radio-{kind.value}-{variant.value}"),
        extras={"rig": rig, "variant": variant},
    )


def scenario(
    variant: GRCVariant = GRCVariant.FAST,
    seed: int = 0,
    event_count: int = DEFAULT_EVENT_COUNT,
    mean_interarrival: float = DEFAULT_MEAN_INTERARRIVAL,
    system: str = "CB-P",
):
    """Declarative :class:`~repro.spec.ScenarioSpec` for this experiment
    shape — the spec-layer twin of :func:`build_grc`."""
    from repro.spec import PlatformSpecV1, ScenarioSpec

    app = "grc-fast" if variant is GRCVariant.FAST else "grc-compact"
    return ScenarioSpec(
        name=f"{app}-seed{seed}",
        system=system,
        platform=PlatformSpecV1.from_dict(make_banks(variant).spec_dict()),
        workload={
            "app": app,
            "seed": seed,
            "event_count": event_count,
            "mean_interarrival": mean_interarrival,
        },
    )
