"""Correlated Sensing and Report (CSR, Section 6.1.3).

Samples a magnetometer continuously; when a magnetic-field event is
detected it must *immediately and atomically* (2) collect 32 distance
samples from the proximity sensor, (3) light an LED for 250 ms, and
(4) send an 8-byte BLE packet — together a single high-energy reactive
burst.  The experiment reuses the pendulum rig with a magnet attached.

Banks per the paper: the magnetometer mode uses the 400 uF ceramic +
330 uF tantalum small bank; the report burst uses the large bank from
GRC-Fast; the Fixed baseline solders the union down.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import AppInstance, assemble_app, make_binding
from repro.apps.rigs import EventSchedule, PendulumRig
from repro.core.builder import PlatformSpec, SystemKind
from repro.device.mcu import MCU_CC2650
from repro.device.radio import BLE_CC2650
from repro.device.sensors import (
    SENSOR_APDS9960_PROXIMITY,
    SENSOR_LED,
    SENSOR_LSM303_MAGNETOMETER,
)
from repro.energy.bank import BankSpec
from repro.energy.capacitor import CERAMIC_X5R, EDLC_CPH3225A, TANTALUM_POLYMER
from repro.energy.harvester import RegulatedSupply
from repro.kernel.annotations import BurstAnnotation, PreburstAnnotation
from repro.kernel.tasks import Compute, Sample, Sleep, Task, TaskGraph, Transmit
from repro.sim.rand import RandomStreams

APP_NAME = "CorrSense"

MODE_SMALL = "csr-small"
MODE_BURST = "csr-burst"

#: Experiment shape matches GRC: 80 events over 42 minutes.
DEFAULT_EVENT_COUNT = 80
DEFAULT_MEAN_INTERARRIVAL = 31.5
WARMUP = 300.0
EVENT_DURATION = 2.5

#: Field magnitude above which a magnet pass is declared.
FIELD_THRESHOLD = 15.0
#: Distance samples collected per event (paper: 32).
DISTANCE_SAMPLES = 32
#: Poll-loop processing per magnetometer sample.
POLL_OPS = 3_000
#: Pacing between magnetometer samples: the paper requires the
#: magnetometer to "maintain a consistent sampling frequency to capture
#: field changes over time" (Section 6.1.3), so the loop is metronomic
#: rather than free-running.
POLL_PERIOD = 0.012


def make_banks() -> PlatformSpec:
    """CSR platform: small sense bank + the GRC-Fast burst bank."""
    small = BankSpec.of_parts(
        "small", [(CERAMIC_X5R, 5), (TANTALUM_POLYMER, 1)]
    )
    burst = BankSpec.of_parts("burst", [(EDLC_CPH3225A, 4)])
    fixed = BankSpec.of_parts(
        "fixed",
        [(CERAMIC_X5R, 5), (TANTALUM_POLYMER, 1), (EDLC_CPH3225A, 3)],
    )
    harvester = RegulatedSupply(voltage=3.0, max_power=2.5e-3)
    return PlatformSpec(
        banks=[small, burst],
        modes={MODE_SMALL: ["small"], MODE_BURST: ["small", "burst"]},
        fixed_bank=fixed,
        harvester=harvester,
    )


def make_graph() -> TaskGraph:
    """CSR task graph: mag poll -> correlated collect/report burst."""

    def mag(ctx):
        yield Compute(POLL_OPS)
        reading = yield Sample("magnetometer")
        if reading.value > FIELD_THRESHOLD:
            ctx.write("trigger_event", reading.event_id)
            ctx.write("trigger_field", reading.value)
            return "collect"
        yield Sleep(POLL_PERIOD)
        return "mag"

    def collect(ctx):
        event_id = ctx.read("trigger_event")
        distance = yield Sample("apds9960-proximity", DISTANCE_SAMPLES)
        yield Sample("led")  # indicator held for 250 ms
        yield Compute(POLL_OPS)
        yield Transmit("csr-report", 8, event_id=event_id)
        ctx.write("last_reported", event_id)
        ctx.write("last_distance", distance.value)
        return "mag"

    return TaskGraph(
        [
            Task("mag", mag, PreburstAnnotation(MODE_BURST, MODE_SMALL)),
            Task("collect", collect, BurstAnnotation(MODE_BURST)),
        ],
        entry="mag",
    )


def build_csr(
    kind: SystemKind,
    seed: int = 0,
    event_count: int = DEFAULT_EVENT_COUNT,
    mean_interarrival: float = DEFAULT_MEAN_INTERARRIVAL,
    schedule: Optional[EventSchedule] = None,
    platform: Optional[PlatformSpec] = None,
) -> AppInstance:
    """Assemble CSR on one of the four systems.

    *platform* overrides the stock :func:`make_banks` recipe (used by
    the declarative spec path).
    """
    streams = RandomStreams(seed)
    if schedule is None:
        schedule = EventSchedule.poisson(
            streams.get("events"),
            mean_interarrival=mean_interarrival,
            count=event_count,
            duration=EVENT_DURATION,
            kind="magnet",
            start_offset=WARMUP,
        )
    rig = PendulumRig(schedule, noise_rng=streams.get(f"sensor-{kind.value}"))
    binding = make_binding(
        {
            "magnetometer": rig.magnetometer_reading,
            "apds9960-proximity": rig.distance_reading,
            "led": lambda time: rig.distance_reading(time),
        }
    )
    return assemble_app(
        name=APP_NAME,
        kind=kind,
        spec=platform if platform is not None else make_banks(),
        mcu=MCU_CC2650,
        graph=make_graph(),
        binding=binding,
        schedule=schedule,
        sensors=[
            SENSOR_LSM303_MAGNETOMETER,
            SENSOR_APDS9960_PROXIMITY,
            SENSOR_LED,
        ],
        radio=BLE_CC2650,
        rng=streams.get(f"radio-{kind.value}"),
        extras={"rig": rig},
    )


def scenario(
    seed: int = 0,
    event_count: int = DEFAULT_EVENT_COUNT,
    mean_interarrival: float = DEFAULT_MEAN_INTERARRIVAL,
    system: str = "CB-P",
):
    """Declarative :class:`~repro.spec.ScenarioSpec` for this experiment
    shape — the spec-layer twin of :func:`build_csr`."""
    from repro.spec import PlatformSpecV1, ScenarioSpec

    return ScenarioSpec(
        name=f"csr-seed{seed}",
        system=system,
        platform=PlatformSpecV1.from_dict(make_banks().spec_dict()),
        workload={
            "app": "csr",
            "seed": seed,
            "event_count": event_count,
            "mean_interarrival": mean_interarrival,
        },
    )
