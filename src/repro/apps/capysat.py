"""CapySat: a board-scale low-Earth-orbit satellite (Section 6.6).

The paper specialises Capybara for a KickSat-carried satellite with
severe volume (1.7 x 1.7 x 0.15 in) and temperature (-40 C) constraints
that disqualify batteries.  The application samples an on-board IMU
(magnetometer + accelerometer + gyroscope) and periodically downlinks a
1-byte packet whose redundant encoding keeps the radio keyed for 250 ms
at 30 mA.

Architecture differences from the terrestrial boards, reproduced here:

* **two MCUs**, each permanently exercising one energy mode (sampling
  vs communication);
* the general bank switch is simplified to a **diode splitter** that
  always connects both banks to the harvester but each bank to only one
  MCU — matching the energy storage to demand at ~20% of the switch
  area;
* the solar input follows a ~93-minute orbit with an eclipse each
  revolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.apps.base import AppInstance, assemble_app, make_binding
from repro.apps.rigs import EventSchedule
from repro.core.builder import PlatformSpec, SystemKind
from repro.device.mcu import MCU_MSP430FR5969
from repro.device.radio import CAPYSAT_RADIO
from repro.device.sensors import SENSOR_CAPYSAT_IMU
from repro.energy.bank import BankSpec
from repro.energy.capacitor import CERAMIC_X5R, EDLC_CPH3225A, TANTALUM_POLYMER
from repro.energy.environment import OrbitTrace
from repro.energy.harvester import ScaledHarvester, SolarPanel
from repro.energy.switch import BankSwitch
from repro.errors import ConfigurationError
from repro.kernel.annotations import ConfigAnnotation
from repro.kernel.executor import SensorReading
from repro.kernel.tasks import Compute, Sample, Sleep, Task, TaskGraph, Transmit
from repro.sim.rand import RandomStreams

MODE_SAMPLING = "sat-sampling"
MODE_COMMS = "sat-comms"

#: Pause between downlink beacons (ground-station cadence).
BEACON_PAUSE = 2.0
#: Pause between IMU sampling rounds.
SAMPLE_PAUSE = 0.5

#: Fraction of one bank-switch module's area the diode splitter needs
#: (Section 6.6: "at 20% of the area").
SPLITTER_AREA_FRACTION = 0.20


@dataclass
class CapySat:
    """The two-MCU satellite: a sampling node and a comms node.

    Each node is a complete :class:`AppInstance` on its own bank; the
    diode splitter is modelled by halving the harvester power available
    to each (both banks charge concurrently from the shared panels).
    """

    sampling: AppInstance
    comms: AppInstance
    splitter_area: float

    def run(self, horizon: float) -> Dict[str, object]:
        """Run both MCUs over the same orbital timeline.

        The nodes share nothing but the sun (pure time-function rigs),
        so they are executed sequentially for exact per-node semantics;
        use :func:`repro.sim.cosim.run_concurrently` instead when a
        merged chronological view is worth its slice-boundary task
        restarts.
        """
        return {
            "sampling": self.sampling.run(horizon),
            "comms": self.comms.run(horizon),
        }


def _sampling_graph() -> TaskGraph:
    def sample_imu(ctx):
        reading = yield Sample("capysat-imu", samples=3)
        count = ctx.read("samples_taken", 0) + 1
        ctx.write("samples_taken", count)
        ctx.write("last_field", reading.value)
        yield Compute(20_000)
        yield Sleep(SAMPLE_PAUSE)
        return "sample_imu"

    return TaskGraph(
        [Task("sample_imu", sample_imu, ConfigAnnotation(MODE_SAMPLING))],
        entry="sample_imu",
    )


def _comms_graph() -> TaskGraph:
    def downlink(ctx):
        yield Compute(100_000)  # frame encoding (1064x redundancy)
        beacon = ctx.read("beacons_sent", 0)
        delivered = yield Transmit("beacon", 1, event_id=beacon)
        if delivered:
            ctx.write("beacons_sent", beacon + 1)
        yield Sleep(BEACON_PAUSE)
        return "downlink"

    return TaskGraph(
        [Task("downlink", downlink, ConfigAnnotation(MODE_COMMS))],
        entry="downlink",
    )


def _imu_binding(sensor: str, time: float) -> SensorReading:
    # Earth's field rotates through the body frame once per orbit.
    return SensorReading(value=25.0 + 20.0 * ((time / 5580.0) % 1.0))


def build_capysat(
    seed: int = 0,
    orbit: OrbitTrace = OrbitTrace(),
    kind: SystemKind = SystemKind.CAPY_P,
) -> CapySat:
    """Assemble the satellite (only Capybara kinds are meaningful).

    Raises:
        ConfigurationError: for the Fixed/Continuous kinds, which do not
            exist for this platform (no battery can fly).
    """
    if kind not in (SystemKind.CAPY_P, SystemKind.CAPY_R):
        raise ConfigurationError(
            "CapySat flies only Capybara power systems (no batteries)"
        )
    streams = RandomStreams(seed)
    # Shared panels; the diode splitter gives each bank roughly half the
    # input (the lower-voltage bank wins ties, averaged out here).
    panel = SolarPanel(
        area=4.0e-4,
        efficiency=0.20,
        cells_in_series=2,
        irradiance=orbit,
    )

    sampling_bank = BankSpec.of_parts("sampling", [(CERAMIC_X5R, 6)])
    comms_bank = BankSpec.of_parts(
        "comms", [(TANTALUM_POLYMER, 4), (EDLC_CPH3225A, 1)]
    )

    sampling_spec = PlatformSpec(
        banks=[sampling_bank],
        modes={MODE_SAMPLING: ["sampling"]},
        fixed_bank=sampling_bank,
        harvester=ScaledHarvester(panel, power_scale=0.5),
    )
    comms_spec = PlatformSpec(
        banks=[comms_bank],
        modes={MODE_COMMS: ["comms"]},
        fixed_bank=comms_bank,
        harvester=ScaledHarvester(panel, power_scale=0.5),
    )

    empty_schedule = EventSchedule([])
    sampling = assemble_app(
        name="CapySat-sampling",
        kind=kind,
        spec=sampling_spec,
        mcu=MCU_MSP430FR5969,
        graph=_sampling_graph(),
        binding=make_binding({"capysat-imu": lambda t: _imu_binding("imu", t)}),
        schedule=empty_schedule,
        sensors=[SENSOR_CAPYSAT_IMU],
        radio=None,
        rng=streams.get("sampling"),
        extras={"orbit": orbit},
    )
    comms = assemble_app(
        name="CapySat-comms",
        kind=kind,
        spec=comms_spec,
        mcu=MCU_MSP430FR5969,
        graph=_comms_graph(),
        binding=make_binding({}),
        schedule=empty_schedule,
        sensors=[],
        radio=CAPYSAT_RADIO,
        rng=streams.get("comms"),
        extras={"orbit": orbit},
    )
    splitter_area = BankSwitch(name="reference").area * SPLITTER_AREA_FRACTION
    return CapySat(sampling=sampling, comms=comms, splitter_area=splitter_area)
