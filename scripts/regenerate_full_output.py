#!/usr/bin/env python
"""Regenerate the archived full-suite transcript.

Runs the complete evaluation suite (``repro.experiments.run_all``) at
paper scale and archives its console output to
``docs/experiments_full_output.txt`` — the transcript that
``EXPERIMENTS.md`` references.  The file is regenerable, so it is not
tracked at the repo root any more; re-run this script after changing
any experiment and commit the refreshed archive if the output shifted.

Usage::

    PYTHONPATH=src python scripts/regenerate_full_output.py
    PYTHONPATH=src python scripts/regenerate_full_output.py --scale 0.1 --jobs 4
"""

from __future__ import annotations

import argparse
import contextlib
import io
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUT = REPO_ROOT / "docs" / "experiments_full_output.txt"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="fraction of the paper's event counts (1.0 = paper scale)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output path (default: {DEFAULT_OUT.relative_to(REPO_ROOT)})",
    )
    args = parser.parse_args(argv)

    from repro.experiments import run_all

    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        # No cache: the archive must reflect a from-scratch run.
        run_all.main(
            seed=args.seed, scale=args.scale, jobs=args.jobs, use_cache=False
        )
    text = buffer.getvalue()
    # Timing lines vary run to run; keep the archive reproducible by
    # dropping the execution summary block (everything is above it).
    lines = text.splitlines(keepends=True)
    for index, line in enumerate(lines):
        if line.startswith("Execution summary ("):
            text = "".join(lines[:index]).rstrip("\n") + "\n"
            break

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(text)
    sys.stderr.write(f"wrote {args.out} ({len(text.splitlines())} lines)\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
