#!/usr/bin/env python
"""Drive N concurrent clients against a repro job service.

Thin CLI over :mod:`repro.service.loadgen`: every client submits jobs
cycling through a handful of distinct scenario specs (so repeats
exercise the result cache), polls each to completion, and the run
aggregates throughput, p50/p90/p99 latency, and the cache-hit ratio.

Point it at a running ``repro serve`` with ``--url``, or let it boot a
throwaway in-process service with ``--self-host`` (the mode the
``service-smoke`` CI job uses — no subprocess choreography needed).

Usage::

    python scripts/load_gen.py --self-host --clients 4 --requests 8
    python scripts/load_gen.py --url http://127.0.0.1:8787 --json out.json
    python scripts/load_gen.py --self-host --min-hit-ratio 0.5   # CI gate
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None,
        help="base URL of a running service (e.g. http://127.0.0.1:8787)",
    )
    parser.add_argument(
        "--self-host", action="store_true",
        help="boot an in-process service for the duration of the run",
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument(
        "--requests", type=int, default=8, help="jobs per client"
    )
    parser.add_argument(
        "--distinct", type=int, default=2,
        help="distinct scenario specs cycled across submissions",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for --self-host (default: 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, help="per-job seconds"
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="also write the machine-readable snapshot to FILE",
    )
    parser.add_argument(
        "--min-hit-ratio", type=float, default=None,
        help="exit non-zero if the cache-hit ratio falls below this",
    )
    parser.add_argument(
        "--max-p99", type=float, default=None,
        help="exit non-zero if p99 latency (seconds) exceeds this",
    )
    args = parser.parse_args(argv)

    if bool(args.url) == bool(args.self_host):
        parser.error("exactly one of --url or --self-host is required")

    from repro.service.loadgen import run_load

    with contextlib.ExitStack() as stack:
        if args.self_host:
            import tempfile

            from repro.service.app import ServiceConfig
            from repro.service.http import BackgroundServer

            cache_dir = Path(stack.enter_context(tempfile.TemporaryDirectory()))
            server = stack.enter_context(
                BackgroundServer(
                    ServiceConfig(jobs=args.jobs, cache_dir=cache_dir)
                )
            )
            base_url = server.url("")
            print(f"[load-gen] self-hosted service at {base_url}")
        else:
            base_url = args.url

        report = run_load(
            base_url,
            clients=args.clients,
            requests_per_client=args.requests,
            distinct=args.distinct,
            seed=args.seed,
            timeout=args.timeout,
        )

    print(report.format(), end="")
    snapshot = report.snapshot()
    if args.json is not None:
        args.json.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
        print(f"[load-gen] snapshot written to {args.json}")

    failures = []
    if report.errors:
        failures.append(f"{report.errors} requests errored")
    if args.min_hit_ratio is not None and report.hit_ratio < args.min_hit_ratio:
        failures.append(
            f"cache-hit ratio {report.hit_ratio:.3f} < floor {args.min_hit_ratio}"
        )
    if args.max_p99 is not None:
        p99 = snapshot["latency_seconds"]["p99"]
        if p99 > args.max_p99:
            failures.append(f"p99 {p99}s > ceiling {args.max_p99}s")
    for failure in failures:
        print(f"[load-gen] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
